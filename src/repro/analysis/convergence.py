"""Convergence detection for the FL loop.

Algorithm 1's exit condition checks "whether this newly created global
ML model converges in this iteration" (Section IV). The paper does not
specify the test; this module provides the standard plateau detector —
training has converged when the best loss seen stops improving by at
least ``min_delta`` for ``patience`` consecutive evaluations — exposed
both as a reusable class and through
:class:`repro.fl.trainer.TrainerConfig` (``convergence_patience`` /
``convergence_min_delta``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["PlateauDetector"]


class PlateauDetector:
    """Detect a loss plateau: no ``min_delta`` improvement for
    ``patience`` consecutive observations.

    Feed it one loss value per evaluation; :meth:`update` returns True
    once converged (and keeps returning True thereafter).

    Args:
        patience: consecutive non-improving observations required.
        min_delta: improvement below this counts as "no improvement".
        mode: ``"min"`` for losses (smaller is better), ``"max"`` for
            accuracies.
    """

    def __init__(
        self, patience: int = 10, min_delta: float = 1e-4, mode: str = "min"
    ) -> None:
        if patience <= 0:
            raise ConfigurationError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(
                f"min_delta must be non-negative, got {min_delta}"
            )
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: Optional[float] = None
        self.stale_count = 0
        self.converged = False

    def reset(self) -> None:
        """Forget all observations."""
        self.best = None
        self.stale_count = 0
        self.converged = False

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def update(self, value: float) -> bool:
        """Record one observation; returns True when converged."""
        if self.converged:
            return True
        if self._improved(value):
            self.best = value
            self.stale_count = 0
        else:
            self.stale_count += 1
            if self.stale_count >= self.patience:
                self.converged = True
        return self.converged

    def __repr__(self) -> str:
        return (
            f"PlateauDetector(patience={self.patience}, "
            f"min_delta={self.min_delta}, mode={self.mode!r}, "
            f"converged={self.converged})"
        )
