"""Accuracy-curve crossover detection.

The paper's Table I discussion hinges on a crossover: FedCS leads at
low accuracy targets but HELCFL overtakes it and keeps climbing. This
module finds such crossovers between two accuracy-versus-time curves —
the point after which one run dominates the other — so experiment
narratives can cite them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fl.history import TrainingHistory

__all__ = ["Crossover", "find_crossovers", "history_crossovers"]


@dataclass(frozen=True)
class Crossover:
    """One lead change between two curves.

    Attributes:
        x: the x-coordinate (e.g. simulated time) of the lead change.
        leader_after: which curve ("a" or "b") leads after ``x``.
    """

    x: float
    leader_after: str


def _interp(points: Sequence[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation, clamped at the ends."""
    if x <= points[0][0]:
        return points[0][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x <= x1:
            if x1 == x0:
                return y1
            t = (x - x0) / (x1 - x0)
            return y0 + t * (y1 - y0)
    return points[-1][1]


def find_crossovers(
    curve_a: Sequence[Tuple[float, float]],
    curve_b: Sequence[Tuple[float, float]],
    tolerance: float = 1e-9,
) -> List[Crossover]:
    """Find lead changes between two ``(x, y)`` curves.

    Both curves are linearly interpolated onto the union of their x
    grids; a crossover is recorded wherever the sign of ``a - b``
    flips (ties within ``tolerance`` carry the previous sign).

    Args:
        curve_a: first curve, x ascending.
        curve_b: second curve, x ascending.
        tolerance: |a - b| below this is treated as a tie.

    Returns:
        Crossovers in x order (possibly empty).

    Raises:
        ConfigurationError: for empty or unsorted curves.
    """
    for name, curve in (("a", curve_a), ("b", curve_b)):
        if not curve:
            raise ConfigurationError(f"curve {name} is empty")
        xs = [p[0] for p in curve]
        if any(x1 < x0 for x0, x1 in zip(xs, xs[1:])):
            raise ConfigurationError(f"curve {name} x values must ascend")

    grid = sorted({p[0] for p in curve_a} | {p[0] for p in curve_b})
    crossovers: List[Crossover] = []
    previous_sign = 0
    for x in grid:
        diff = _interp(curve_a, x) - _interp(curve_b, x)
        if abs(diff) <= tolerance:
            continue
        sign = 1 if diff > 0 else -1
        if previous_sign != 0 and sign != previous_sign:
            crossovers.append(
                Crossover(x=x, leader_after="a" if sign > 0 else "b")
            )
        previous_sign = sign
    return crossovers


def history_crossovers(
    history_a: TrainingHistory,
    history_b: TrainingHistory,
    by: str = "time",
    tolerance: float = 1e-9,
) -> List[Crossover]:
    """Crossovers between two runs' accuracy curves.

    Args:
        history_a: first run ("a").
        history_b: second run ("b").
        by: x axis — ``"time"`` (simulated seconds) or ``"round"``.
        tolerance: tie tolerance on the accuracy difference.
    """
    if by not in ("time", "round"):
        raise ConfigurationError(f"by must be 'time' or 'round', got {by!r}")
    index = 1 if by == "time" else 0

    def curve(history: TrainingHistory):
        return [(p[index], p[2]) for p in history.accuracy_series()]

    curve_a, curve_b = curve(history_a), curve(history_b)
    if not curve_a or not curve_b:
        raise ConfigurationError("both histories need evaluated rounds")
    return find_crossovers(curve_a, curve_b, tolerance=tolerance)
