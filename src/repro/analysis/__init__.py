"""Statistical analysis utilities for experiment results."""

from repro.analysis.convergence import PlateauDetector
from repro.analysis.crossover import (
    Crossover,
    find_crossovers,
    history_crossovers,
)
from repro.analysis.stats import (
    bootstrap_ci,
    mean_std,
    moving_average,
    paired_gap,
)

__all__ = [
    "mean_std",
    "bootstrap_ci",
    "moving_average",
    "paired_gap",
    "PlateauDetector",
    "Crossover",
    "find_crossovers",
    "history_crossovers",
]
