"""Small statistics helpers used by the multi-seed experiment runner.

Single-seed comparisons of FL schemes can land inside evaluation noise
(a 1 000-sample test set has ~1.5 pp accuracy noise); these helpers
summarize repeated runs so claims like "HELCFL >= Classic FL" can be
made with seeds-worth of evidence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_generator

__all__ = ["mean_std", "bootstrap_ci", "moving_average", "paired_gap"]


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and sample standard deviation (ddof=1; 0.0 for < 2 values).

    Raises:
        ConfigurationError: for an empty sequence.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize zero values")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Args:
        values: observed values (e.g. per-seed best accuracies).
        confidence: interval mass in ``(0, 1)``.
        resamples: bootstrap resample count.
        seed: resampling seed.

    Returns:
        ``(low, high)`` interval endpoints.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot bootstrap zero values")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    if resamples <= 0:
        raise ConfigurationError(f"resamples must be positive, got {resamples}")
    rng = ensure_generator(seed)
    means = rng.choice(arr, size=(resamples, arr.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def moving_average(values: Sequence[float], window: int = 5) -> List[float]:
    """Trailing moving average (window clipped at the series start).

    Useful for smoothing noisy accuracy curves before plotting or
    crossover detection.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    arr = np.asarray(list(values), dtype=np.float64)
    out: List[float] = []
    for idx in range(arr.size):
        start = max(0, idx - window + 1)
        out.append(float(arr[start : idx + 1].mean()))
    return out


def paired_gap(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float, Optional[float]]:
    """Summary of paired per-seed differences ``a_i - b_i``.

    Args:
        a: metric values of scheme A, one per seed.
        b: metric values of scheme B, same seeds, same order.

    Returns:
        ``(mean gap, std of gap, fraction of seeds where a_i > b_i)``;
        the fraction is ``None`` for empty input.

    Raises:
        ConfigurationError: on length mismatch.
    """
    a_arr = np.asarray(list(a), dtype=np.float64)
    b_arr = np.asarray(list(b), dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ConfigurationError(
            f"paired series differ in length: {a_arr.size} vs {b_arr.size}"
        )
    if a_arr.size == 0:
        raise ConfigurationError("cannot compare zero paired values")
    gaps = a_arr - b_arr
    mean, std = mean_std(gaps)
    wins = float(np.mean(gaps > 0))
    return mean, std, wins
