"""im2col / col2im kernels backing the convolution and pooling layers.

Images use NCHW layout throughout: ``(batch, channels, height, width)``.
``im2col`` unfolds every receptive field into a row so that convolution
becomes a single matrix multiplication; ``col2im`` is its exact adjoint
(scatter-add), which is what the backward pass needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError

__all__ = ["conv_output_size", "im2col", "col2im", "pad_input"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the output spatial size of a conv/pool along one axis.

    Args:
        size: input size along the axis.
        kernel: kernel size along the axis.
        stride: stride along the axis.
        padding: symmetric zero padding along the axis.

    Raises:
        ShapeError: if the kernel (after padding) does not fit.
    """
    padded = size + 2 * padding
    if kernel > padded:
        raise ShapeError(
            f"kernel {kernel} larger than padded input {padded} "
            f"(size={size}, padding={padding})"
        )
    return (padded - kernel) // stride + 1


def pad_input(images: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW batch symmetrically."""
    if padding == 0:
        return images
    return np.pad(
        images,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: np.ndarray = None,
) -> Tuple[np.ndarray, int, int]:
    """Unfold receptive fields of an NCHW batch into a 2-D matrix.

    Args:
        images: input of shape ``(n, c, h, w)``.
        kernel_h: kernel height.
        kernel_w: kernel width.
        stride: spatial stride (same for both axes).
        padding: symmetric zero padding (same for both axes).
        out: optional preallocated destination of shape
            ``(n * out_h * out_w, c * kernel_h * kernel_w)`` and the
            input dtype (C-contiguous); when given it is filled in
            place and returned, so the hot loop allocates nothing.

    Returns:
        A tuple ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(n * out_h * out_w, c * kernel_h * kernel_w)`` and each row is
        one receptive field in channel-major order.
    """
    if images.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {images.shape}")
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded = pad_input(images, padding)

    # Strided view of shape (n, c, out_h, out_w, kernel_h, kernel_w).
    s_n, s_c, s_h, s_w = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    shape = (n * out_h * out_w, c * kernel_h * kernel_w)
    if out is None:
        cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(shape)
        return np.ascontiguousarray(cols), out_h, out_w
    if out.shape != shape or out.dtype != images.dtype or not out.flags.c_contiguous:
        raise ShapeError(
            f"im2col out buffer must be C-contiguous {shape} "
            f"{images.dtype}, got {out.shape} {out.dtype}"
        )
    np.copyto(
        out.reshape(n, out_h, out_w, c, kernel_h, kernel_w),
        view.transpose(0, 2, 3, 1, 4, 5),
    )
    return out, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    padded_out: np.ndarray = None,
) -> np.ndarray:
    """Scatter-add column gradients back to image space (im2col adjoint).

    Args:
        cols: matrix of shape ``(n * out_h * out_w, c * kh * kw)`` as
            produced by :func:`im2col` (typically a gradient).
        input_shape: original NCHW input shape.
        kernel_h: kernel height.
        kernel_w: kernel width.
        stride: spatial stride.
        padding: symmetric zero padding.
        padded_out: optional preallocated accumulator of shape
            ``(n, c, h + 2 * padding, w + 2 * padding)`` and the input
            dtype; zeroed and reused in place so the hot loop allocates
            nothing. The returned array is then a view into it, valid
            until the next call that reuses the buffer.

    Returns:
        An array with ``input_shape`` holding the accumulated gradient.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected cols of shape {(expected_rows, expected_cols)}, "
            f"got {cols.shape}"
        )
    grads = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )  # (n, c, kh, kw, out_h, out_w)
    padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
    if padded_out is None:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    else:
        if padded_out.shape != padded_shape or padded_out.dtype != cols.dtype:
            raise ShapeError(
                f"col2im padded_out buffer must be {padded_shape} "
                f"{cols.dtype}, got {padded_out.shape} {padded_out.dtype}"
            )
        padded = padded_out
        padded[...] = 0.0
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += grads[:, :, i, j]
    if padding == 0:
        return padded
    return padded[:, :, padding : padding + h, padding : padding + w]
