"""Batch normalization supporting dense (NC) and conv (NCHW) inputs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layer import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch normalization with learnable scale and shift.

    Normalizes over the batch axis for 2-D inputs ``(n, c)`` and over
    the batch and spatial axes for 4-D inputs ``(n, c, h, w)``. Running
    statistics are tracked with exponential moving averages and used at
    inference time.

    Note on federated aggregation: ``gamma`` and ``beta`` are trainable
    parameters and participate in FedAvg; the running statistics are
    buffers, exposed through :meth:`get_buffers` / :meth:`set_buffers`
    so the server can broadcast consistent statistics when desired.

    Args:
        num_features: channel count ``c``.
        momentum: EMA momentum for running statistics in ``(0, 1]``.
        eps: numerical floor added to the variance.
    """

    def __init__(
        self, num_features: int, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ConfigurationError(
                f"num_features must be positive, got {num_features}"
            )
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1], got {momentum}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self._register("gamma", np.ones(self.num_features, dtype=np.float64))
        self._register("beta", np.zeros(self.num_features, dtype=np.float64))
        self.running_mean = np.zeros(self.num_features, dtype=np.float64)
        self.running_var = np.ones(self.num_features, dtype=np.float64)
        self._cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _check_shape(self, inputs: np.ndarray) -> None:
        if inputs.ndim not in (2, 4) or inputs.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm expected (n, {self.num_features}) or "
                f"(n, {self.num_features}, h, w), got {inputs.shape}"
            )

    @staticmethod
    def _reduce_axes(inputs: np.ndarray) -> tuple:
        return (0,) if inputs.ndim == 2 else (0, 2, 3)

    @staticmethod
    def _broadcast(stat: np.ndarray, ndim: int) -> np.ndarray:
        return stat if ndim == 2 else stat.reshape(1, -1, 1, 1)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_shape(inputs)
        axes = self._reduce_axes(inputs)
        if training:
            mean = inputs.mean(axis=axes)
            var = inputs.var(axis=axes)
            count = inputs.size // self.num_features
            # Unbiased variance for the running estimate (framework
            # convention), biased variance for the normalization itself.
            # The running statistics are updated IN PLACE: external
            # aliases (worker-resident views, get_buffers callers, the
            # shared-memory path) must keep observing the live arrays.
            unbiased = var * count / max(count - 1, 1)
            self.running_mean[...] = (
                1.0 - self.momentum
            ) * self.running_mean + self.momentum * mean
            self.running_var[...] = (
                1.0 - self.momentum
            ) * self.running_var + self.momentum * unbiased
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = self._scratch_buffer("x_hat", inputs.shape)
        np.subtract(inputs, self._broadcast(mean, inputs.ndim), out=x_hat)
        x_hat *= self._broadcast(inv_std, inputs.ndim)
        out = self._broadcast(self.params["gamma"], inputs.ndim) * x_hat
        out += self._broadcast(self.params["beta"], inputs.ndim)
        if training:
            self._cache = (x_hat, inv_std, inputs.ndim, inputs.shape)
        else:
            # Inference invalidates the training cache so a stale
            # backward raises instead of using an earlier batch.
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, inv_std, ndim, shape = self._cache
        axes = (0,) if ndim == 2 else (0, 2, 3)
        count = float(np.prod([shape[a] for a in axes]))
        self.grads["gamma"][...] = (grad_output * x_hat).sum(axis=axes)
        self.grads["beta"][...] = grad_output.sum(axis=axes)
        gamma = self._broadcast(self.params["gamma"], ndim)
        grad_xhat = grad_output * gamma
        mean_g = grad_xhat.mean(axis=axes)
        mean_gx = (grad_xhat * x_hat).mean(axis=axes)
        grad_input = (
            grad_xhat
            - self._broadcast(mean_g, ndim)
            - x_hat * self._broadcast(mean_gx, ndim)
        ) * self._broadcast(inv_std, ndim)
        del count
        return grad_input

    # ------------------------------------------------------------------
    def get_buffers(self) -> dict:
        """Return copies of the (non-trainable) running statistics."""
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def set_buffers(self, buffers: dict) -> None:
        """Overwrite the running statistics from :meth:`get_buffers` output.

        Written in place so external aliases of the running-stat arrays
        stay valid (matching :meth:`forward`'s in-place updates).
        """
        self.running_mean[...] = np.asarray(
            buffers["running_mean"], dtype=np.float64
        )
        self.running_var[...] = np.asarray(
            buffers["running_var"], dtype=np.float64
        )

    def __repr__(self) -> str:
        return f"BatchNorm(features={self.num_features}, momentum={self.momentum})"
