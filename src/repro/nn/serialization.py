"""Model parameter serialization.

Parameters are stored as ``.npz`` archives keyed ``"{layer}.{name}"``
plus batch-norm running buffers keyed ``"{layer}.buffer.{name}"``, so a
saved payload restores both the trainable state and the inference
statistics.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import SerializationError
from repro.nn.model import Sequential
from repro.nn.normalization import BatchNorm

__all__ = ["save_model_params", "load_model_params"]


def save_model_params(model: Sequential, path: Union[str, os.PathLike]) -> None:
    """Write the model's parameters and buffers to ``path`` (``.npz``).

    Args:
        model: the model whose state to save.
        path: destination file; ``.npz`` is appended by numpy if absent.
    """
    payload = {}
    for idx, name, param in model.named_parameters():
        payload[f"{idx}.{name}"] = param
    for idx, layer in enumerate(model.layers):
        if isinstance(layer, BatchNorm):
            for bname, buf in layer.get_buffers().items():
                payload[f"{idx}.buffer.{bname}"] = buf
    np.savez(os.fspath(path), **payload)


def load_model_params(model: Sequential, path: Union[str, os.PathLike]) -> None:
    """Load parameters saved by :func:`save_model_params` into ``model``.

    The model must have the identical architecture (same layers, same
    parameter shapes).

    Raises:
        SerializationError: if a key is missing or a shape mismatches.
    """
    path = os.fspath(path)
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise SerializationError(
            f"cannot read model archive {path!r}: {exc}"
        ) from exc
    with archive:
        for idx, name, param in model.named_parameters():
            key = f"{idx}.{name}"
            if key not in archive:
                raise SerializationError(f"archive missing parameter {key!r}")
            stored = archive[key]
            if stored.shape != param.shape:
                raise SerializationError(
                    f"parameter {key!r} has shape {stored.shape}, model "
                    f"expects {param.shape}"
                )
            param[...] = stored
        for idx, layer in enumerate(model.layers):
            if isinstance(layer, BatchNorm):
                buffers = {}
                for bname in ("running_mean", "running_var"):
                    key = f"{idx}.buffer.{bname}"
                    if key in archive:
                        buffers[bname] = archive[key]
                if len(buffers) == 2:
                    layer.set_buffers(buffers)
