"""Base class shared by every :mod:`repro.nn` layer.

A layer owns a dictionary of named parameter arrays and a matching
dictionary of gradient arrays. ``forward`` caches whatever the layer
needs for the backward pass; ``backward`` consumes the upstream
gradient, fills ``grads``, and returns the gradient with respect to the
layer input. This explicit two-pass design (rather than a tape-based
autograd) keeps every gradient analytic and unit-testable against
numeric differentiation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Abstract base class for neural-network layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and
    should register parameters in ``self.params`` (with matching zero
    arrays in ``self.grads``) during construction.

    Attributes:
        params: mapping from parameter name to its numpy array.
        grads: mapping from parameter name to the gradient accumulated
            by the most recent :meth:`backward` call.
    """

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._scratch: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``inputs``.

        Args:
            inputs: input activation array.
            training: ``True`` during training (enables dropout masks,
                batch-norm batch statistics, and backward caching).

        Returns:
            The layer output array.
        """
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` through the layer.

        Must be called after a ``forward(..., training=True)`` pass.

        Args:
            grad_output: gradient of the loss w.r.t. the layer output.

        Returns:
            Gradient of the loss w.r.t. the layer input.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Parameter utilities
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total number of scalar parameters held by this layer."""
        return int(sum(p.size for p in self.params.values()))

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` pairs in sorted-name order."""
        for name in sorted(self.params):
            yield name, self.params[name]

    def zero_grads(self) -> None:
        """Reset every gradient buffer to zero in place."""
        for name, grad in self.grads.items():
            grad[...] = 0.0

    def _register(self, name: str, value: np.ndarray) -> None:
        """Register a trainable parameter and its zero gradient buffer."""
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def _scratch_buffer(
        self, name: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Return a reusable scratch array, reallocating on shape change.

        Hot-loop layers route their per-step temporaries (im2col
        matrices, gradient staging buffers) through here so repeated
        forward/backward calls at a fixed batch shape allocate nothing.
        The contents are unspecified on return; callers must fully
        overwrite the buffer before reading it.
        """
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[name] = buf
        return buf

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.parameter_count})"
