"""Gradient-descent optimizers.

Each optimizer mutates a model's parameters in place from the gradients
accumulated by the most recent backward pass. Per-parameter state
(momentum buffers, Adam moments) is keyed by ``(layer index, parameter
name)`` so optimizers survive parameter reassignment through
``Sequential.set_flat_params`` (arrays are written in place there).

The plain :class:`Sgd` with a single full-batch step per round is
exactly the local update of HELCFL's Eq. (3).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.schedules import ConstantSchedule

__all__ = ["Optimizer", "Sgd", "Momentum", "Nesterov", "Adam"]

_ScheduleLike = Union[float, "object"]


def _as_schedule(learning_rate: _ScheduleLike):
    """Wrap a float in a constant schedule; pass schedules through."""
    if hasattr(learning_rate, "rate"):
        return learning_rate
    return ConstantSchedule(float(learning_rate))


class Optimizer:
    """Base optimizer: tracks the step counter and the LR schedule.

    Args:
        learning_rate: a positive float or a schedule object exposing
            ``rate(step)``.
        weight_decay: L2 penalty coefficient added to every gradient.
    """

    def __init__(
        self, learning_rate: _ScheduleLike = 0.01, weight_decay: float = 0.0
    ) -> None:
        if weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be non-negative, got {weight_decay}"
            )
        self.schedule = _as_schedule(learning_rate)
        self.weight_decay = float(weight_decay)
        self.step_count = 0

    @property
    def current_rate(self) -> float:
        """Learning rate that the next :meth:`step` call will use."""
        return self.schedule.rate(self.step_count)

    def step(self, model) -> None:
        """Apply one update to every parameter of ``model``.

        Args:
            model: a :class:`~repro.nn.model.Sequential` (anything with
                a ``layers`` list of :class:`~repro.nn.layer.Layer`).
        """
        rate = self.schedule.rate(self.step_count)
        for layer_idx, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                grad = layer.grads[name]
                if self.weight_decay > 0.0:
                    grad = grad + self.weight_decay * param
                self._update(param, grad, (layer_idx, name), rate)
        self.step_count += 1

    def _update(
        self,
        param: np.ndarray,
        grad: np.ndarray,
        key: Tuple[int, str],
        rate: float,
    ) -> None:
        raise NotImplementedError

    def reset_state(self) -> None:
        """Forget all accumulated per-parameter state and the step count."""
        self.step_count = 0


class Sgd(Optimizer):
    """Vanilla gradient descent: ``p -= lr * g`` (HELCFL Eq. 3)."""

    def _update(self, param, grad, key, rate) -> None:
        del key
        param -= rate * grad


class Momentum(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(
        self,
        learning_rate: _ScheduleLike = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def _update(self, param, grad, key, rate) -> None:
        velocity = self._velocity.get(key)
        if velocity is None or velocity.shape != param.shape:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - rate * grad
        self._velocity[key] = velocity
        param += velocity

    def reset_state(self) -> None:
        super().reset_state()
        self._velocity.clear()


class Nesterov(Momentum):
    """SGD with Nesterov accelerated momentum."""

    def _update(self, param, grad, key, rate) -> None:
        velocity = self._velocity.get(key)
        if velocity is None or velocity.shape != param.shape:
            velocity = np.zeros_like(param)
        velocity_new = self.momentum * velocity - rate * grad
        self._velocity[key] = velocity_new
        param += -self.momentum * velocity + (1.0 + self.momentum) * velocity_new


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first and second moments."""

    def __init__(
        self,
        learning_rate: _ScheduleLike = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}

    def _update(self, param, grad, key, rate) -> None:
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None or m.shape != param.shape:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad**2
        self._m[key] = m
        self._v[key] = v
        t = self.step_count + 1
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        super().reset_state()
        self._m.clear()
        self._v.clear()
