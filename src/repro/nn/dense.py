"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import Initializer, he_normal, zeros_init
from repro.nn.layer import Layer
from repro.rng import SeedLike, ensure_generator

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transform ``y = x @ W + b``.

    Args:
        in_features: input dimensionality.
        out_features: output dimensionality.
        weight_init: initializer for ``W`` of shape
            ``(in_features, out_features)``; defaults to He normal.
        bias: whether to include the additive bias term.
        seed: seed or generator used by the weight initializer.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: Initializer = he_normal,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                "in_features and out_features must be positive, got "
                f"{in_features} and {out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(bias)
        rng = ensure_generator(seed)
        self._register("W", weight_init((self.in_features, self.out_features), rng))
        if self.use_bias:
            self._register("b", zeros_init((self.out_features,), rng))
        self._inputs: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expected input of shape (batch, {self.in_features}), "
                f"got {inputs.shape}"
            )
        # Inference invalidates the cache so a stale backward raises
        # instead of differentiating an earlier batch.
        self._inputs = inputs if training else None
        out = inputs @ self.params["W"]
        if self.use_bias:
            out += self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward(training=True)")
        np.matmul(self._inputs.T, grad_output, out=self.grads["W"])
        if self.use_bias:
            np.sum(grad_output, axis=0, out=self.grads["b"])
        return grad_output @ self.params["W"].T

    def __repr__(self) -> str:
        return (
            f"Dense(in={self.in_features}, out={self.out_features}, "
            f"bias={self.use_bias})"
        )
