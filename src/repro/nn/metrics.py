"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix"]


def accuracy(logits_or_preds: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    Args:
        logits_or_preds: either class scores of shape
            ``(batch, classes)`` (argmaxed internally) or already-argmaxed
            integer predictions of shape ``(batch,)``.
        labels: integer ground-truth labels of shape ``(batch,)``.

    Returns:
        Accuracy in ``[0, 1]``; 0.0 for an empty batch.
    """
    labels = np.asarray(labels)
    preds = np.asarray(logits_or_preds)
    if preds.ndim == 2:
        preds = preds.argmax(axis=1)
    if preds.shape != labels.shape:
        raise ShapeError(
            f"predictions {preds.shape} and labels {labels.shape} differ"
        )
    if labels.size == 0:
        return 0.0
    return float(np.mean(preds == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is within the top-``k`` scores."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got {logits.shape}")
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")
    if labels.size == 0:
        return 0.0
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(top == labels[:, None], axis=1)))


def confusion_matrix(
    preds: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix.

    Entry ``[i, j]`` counts samples with true class ``i`` predicted as
    class ``j``.
    """
    preds = np.asarray(preds)
    if preds.ndim == 2:
        preds = preds.argmax(axis=1)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ShapeError(
            f"predictions {preds.shape} and labels {labels.shape} differ"
        )
    if num_classes <= 0:
        raise ShapeError(f"num_classes must be positive, got {num_classes}")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels.astype(np.int64), preds.astype(np.int64)), 1)
    return matrix
