"""Weight initializers for :mod:`repro.nn` layers.

Each initializer is a plain function ``(shape, rng) -> ndarray`` so
layers can accept them as first-class values. The fan-in / fan-out
computation follows the usual convention: for a dense weight of shape
``(in, out)`` fan-in is ``in``; for a convolution kernel of shape
``(out_channels, in_channels, kh, kw)`` fan-in is
``in_channels * kh * kw``.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "Initializer",
    "compute_fans",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "zeros_init",
    "constant_init",
]

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def compute_fans(shape: Sequence[int]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor of ``shape``.

    Supports dense weights ``(in, out)``, conv kernels
    ``(out_c, in_c, kh, kw)``, and degenerate 1-D shapes (biases).
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid nets."""
    fan_in, fan_out = compute_fans(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def xavier_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = compute_fans(shape)
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization, suited to ReLU nets."""
    fan_in, _ = compute_fans(shape)
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization."""
    fan_in, _ = compute_fans(shape)
    std = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def zeros_init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (the default for biases)."""
    del rng
    return np.zeros(shape, dtype=np.float64)


def constant_init(value: float) -> Initializer:
    """Return an initializer filling the tensor with ``value``."""

    def _init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        del rng
        return np.full(shape, float(value), dtype=np.float64)

    return _init
