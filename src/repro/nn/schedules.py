"""Learning-rate schedules.

A schedule maps a zero-based step index to a learning rate. Optimizers
accept either a plain float (wrapped in :class:`ConstantSchedule`) or
any object with a ``rate(step)`` method.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["ConstantSchedule", "StepDecaySchedule", "CosineSchedule"]


class ConstantSchedule:
    """A fixed learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def rate(self, step: int) -> float:
        """Return the learning rate at ``step`` (always the same)."""
        del step
        return self.learning_rate


class StepDecaySchedule:
    """Multiply the rate by ``decay`` every ``period`` steps."""

    def __init__(self, learning_rate: float, period: int, decay: float = 0.5) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.learning_rate = float(learning_rate)
        self.period = int(period)
        self.decay = float(decay)

    def rate(self, step: int) -> float:
        """Return the decayed learning rate at ``step``."""
        return self.learning_rate * self.decay ** (step // self.period)


class CosineSchedule:
    """Cosine annealing from the initial rate to ``min_rate``."""

    def __init__(
        self, learning_rate: float, total_steps: int, min_rate: float = 0.0
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if total_steps <= 0:
            raise ConfigurationError(
                f"total_steps must be positive, got {total_steps}"
            )
        if min_rate < 0 or min_rate > learning_rate:
            raise ConfigurationError(
                f"min_rate must be in [0, learning_rate], got {min_rate}"
            )
        self.learning_rate = float(learning_rate)
        self.total_steps = int(total_steps)
        self.min_rate = float(min_rate)

    def rate(self, step: int) -> float:
        """Return the annealed rate; clamps beyond ``total_steps``."""
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_rate + (self.learning_rate - self.min_rate) * cosine
