"""Model compute profiling: MAC counts and cycles-per-sample estimates.

The paper's cost model abstracts local training into ``pi`` CPU cycles
per data sample (Eq. 4) without deriving it. This module closes that
loop: it counts the multiply-accumulate operations (MACs) of a forward
pass layer by layer, scales by the usual forward+backward factor, and
converts to cycles via a cycles-per-MAC constant — so ``pi`` can be
*estimated from the actual model* instead of assumed.

For the paper's SqueezeNet-on-CIFAR-10 setting the estimate lands in
the same order of magnitude as the paper's ``pi = 1e7`` for small
models, which is the sanity check
``tests/nn/test_profile.py::test_paper_pi_order_of_magnitude`` pins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.architectures.fire import Fire
from repro.nn.conv import Conv2D
from repro.nn.conv_utils import conv_output_size
from repro.nn.dense import Dense
from repro.nn.model import Sequential
from repro.nn.normalization import BatchNorm

__all__ = ["LayerProfile", "profile_model", "estimate_cycles_per_sample"]

# One GD step costs roughly a forward pass plus a backward pass of
# ~2x forward cost (grad w.r.t. inputs and w.r.t. weights).
TRAINING_MACS_FACTOR = 3.0


class LayerProfile:
    """MAC count and output shape of one layer.

    Attributes:
        name: layer class name.
        macs: multiply-accumulates of one forward pass (per sample).
        output_shape: per-sample output shape after this layer.
    """

    def __init__(self, name: str, macs: float, output_shape: Tuple[int, ...]):
        self.name = name
        self.macs = float(macs)
        self.output_shape = tuple(output_shape)

    def __repr__(self) -> str:
        return (
            f"LayerProfile({self.name}, macs={self.macs:.3g}, "
            f"out={self.output_shape})"
        )


def _conv_macs(layer: Conv2D, in_shape: Tuple[int, ...]):
    if len(in_shape) != 3 or in_shape[0] != layer.in_channels:
        raise ShapeError(
            f"Conv2D expects ({layer.in_channels}, h, w), got {in_shape}"
        )
    _, h, w = in_shape
    out_h = conv_output_size(h, layer.kernel_h, layer.stride, layer.padding)
    out_w = conv_output_size(w, layer.kernel_w, layer.stride, layer.padding)
    macs = (
        out_h
        * out_w
        * layer.out_channels
        * layer.in_channels
        * layer.kernel_h
        * layer.kernel_w
    )
    return float(macs), (layer.out_channels, out_h, out_w)


def _pool_shape(layer, in_shape: Tuple[int, ...]):
    channels, h, w = in_shape
    out_h = conv_output_size(h, layer.pool_h, layer.stride, layer.padding)
    out_w = conv_output_size(w, layer.pool_w, layer.stride, layer.padding)
    return (channels, out_h, out_w)


def _profile_layer(layer, in_shape: Tuple[int, ...]):
    """Return ``(macs, out_shape)`` for one layer at ``in_shape``."""
    name = type(layer).__name__
    if isinstance(layer, Dense):
        if len(in_shape) != 1 or in_shape[0] != layer.in_features:
            raise ShapeError(
                f"Dense expects ({layer.in_features},), got {in_shape}"
            )
        return float(layer.in_features * layer.out_features), (
            layer.out_features,
        )
    if isinstance(layer, Conv2D):
        return _conv_macs(layer, in_shape)
    if isinstance(layer, Fire):
        squeeze_macs, squeeze_shape = _conv_macs(layer.squeeze, in_shape)
        e1_macs, e1_shape = _conv_macs(layer.expand1, squeeze_shape)
        e3_macs, _ = _conv_macs(layer.expand3, squeeze_shape)
        out_shape = (2 * e1_shape[0], e1_shape[1], e1_shape[2])
        return squeeze_macs + e1_macs + e3_macs, out_shape
    if isinstance(layer, BatchNorm):
        return float(np.prod(in_shape)), in_shape
    if name in ("MaxPool2D", "AvgPool2D"):
        out_shape = _pool_shape(layer, in_shape)
        window = layer.pool_h * layer.pool_w
        return float(np.prod(out_shape) * window), out_shape
    if name == "GlobalAvgPool2D":
        return float(np.prod(in_shape)), (in_shape[0],)
    if name == "Flatten":
        return 0.0, (int(np.prod(in_shape)),)
    if name in ("ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax", "Dropout"):
        # Elementwise: count one op per element.
        return float(np.prod(in_shape)), in_shape
    raise ConfigurationError(f"cannot profile layer type {name!r}")


def profile_model(
    model: Sequential, input_shape: Sequence[int]
) -> List[LayerProfile]:
    """Per-layer MAC profile of one forward pass.

    Args:
        model: the model to profile.
        input_shape: per-sample input shape (no batch axis) — e.g.
            ``(3, 8, 8)`` for images, ``(192,)`` for flat vectors.

    Returns:
        One :class:`LayerProfile` per layer, in order.
    """
    shape = tuple(int(v) for v in input_shape)
    if not shape or min(shape) <= 0:
        raise ConfigurationError(
            f"input_shape must be non-empty and positive, got {input_shape}"
        )
    profiles: List[LayerProfile] = []
    for layer in model.layers:
        macs, shape = _profile_layer(layer, shape)
        profiles.append(LayerProfile(type(layer).__name__, macs, shape))
    return profiles


def estimate_cycles_per_sample(
    model: Sequential,
    input_shape: Sequence[int],
    cycles_per_mac: float = 2.0,
    training: bool = True,
) -> float:
    """Estimate the paper's ``pi`` for this model.

    Args:
        model: the model trained on each sample.
        input_shape: per-sample input shape.
        cycles_per_mac: CPU cycles per MAC (scalar cores without SIMD
            spend ~1-4 cycles per fused multiply-add; 2 is a middle
            estimate).
        training: include the backward pass (x3 forward MACs); False
            profiles inference only.

    Returns:
        Estimated cycles per sample — the quantity Eq. (4) multiplies
        by ``|D_q|``.
    """
    if cycles_per_mac <= 0:
        raise ConfigurationError(
            f"cycles_per_mac must be positive, got {cycles_per_mac}"
        )
    total_macs = sum(p.macs for p in profile_model(model, input_shape))
    factor = TRAINING_MACS_FACTOR if training else 1.0
    return float(total_macs * factor * cycles_per_mac)


def summarize_profile(
    model: Sequential, input_shape: Sequence[int]
) -> Dict[str, float]:
    """Aggregate MACs by layer type (for reports)."""
    totals: Dict[str, float] = {}
    for entry in profile_model(model, input_shape):
        totals[entry.name] = totals.get(entry.name, 0.0) + entry.macs
    return totals
