"""Inverted dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layer import Layer
from repro.rng import SeedLike, ensure_generator

__all__ = ["Dropout"]

# Sentinel mask marking a rate-0.0 training pass: backward is the
# identity without ever materializing an all-ones mask array.
_IDENTITY_MASK = np.empty(0)


class Dropout(Layer):
    """Inverted dropout: zero each activation with probability ``rate``.

    Surviving activations are scaled by ``1 / (1 - rate)`` during
    training so inference is a no-op (identity), the standard
    "inverted" formulation.

    Args:
        rate: drop probability in ``[0, 1)``.
        seed: seed or generator for the drop masks.
    """

    def __init__(self, rate: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = ensure_generator(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = _IDENTITY_MASK if training else None
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep) / keep
        self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        if self._mask is _IDENTITY_MASK:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
