"""2-D convolution layer (NCHW, im2col-based)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv_utils import col2im, conv_output_size, im2col
from repro.nn.initializers import Initializer, he_normal, zeros_init
from repro.nn.layer import Layer
from repro.rng import SeedLike, ensure_generator

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    The kernel has shape ``(out_channels, in_channels, kh, kw)``.
    Forward computes ``im2col(x) @ W_flat + b`` so both passes reduce to
    dense matrix algebra.

    Args:
        in_channels: number of input channels.
        out_channels: number of output channels (filters).
        kernel_size: square kernel size, or ``(kh, kw)`` tuple.
        stride: spatial stride.
        padding: symmetric zero padding.
        weight_init: kernel initializer (default He normal).
        bias: include per-filter additive bias.
        seed: seed or generator for the initializer.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride: int = 1,
        padding: int = 0,
        weight_init: Initializer = he_normal,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        kh, kw = (int(k) for k in kernel_size)
        if in_channels <= 0 or out_channels <= 0 or kh <= 0 or kw <= 0:
            raise ConfigurationError(
                "channels and kernel dims must be positive, got "
                f"in={in_channels}, out={out_channels}, kernel=({kh},{kw})"
            )
        if stride <= 0 or padding < 0:
            raise ConfigurationError(
                f"stride must be positive and padding non-negative, got "
                f"stride={stride}, padding={padding}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_h = kh
        self.kernel_w = kw
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(bias)
        rng = ensure_generator(seed)
        self._register(
            "W", weight_init((self.out_channels, self.in_channels, kh, kw), rng)
        )
        if self.use_bias:
            self._register("b", zeros_init((self.out_channels,), rng))
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expected (batch, {self.in_channels}, h, w), got "
                f"{inputs.shape}"
            )
        n = inputs.shape[0]
        out_h = conv_output_size(
            inputs.shape[2], self.kernel_h, self.stride, self.padding
        )
        out_w = conv_output_size(
            inputs.shape[3], self.kernel_w, self.stride, self.padding
        )
        rows = n * out_h * out_w
        window = self.in_channels * self.kernel_h * self.kernel_w
        col_buffer = (
            self._scratch_buffer("cols", (rows, window), inputs.dtype)
            if inputs.dtype == np.float64
            else None
        )
        cols, out_h, out_w = im2col(
            inputs,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
            out=col_buffer,
        )
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = np.matmul(
            cols,
            w_flat.T,
            out=self._scratch_buffer("mm", (rows, self.out_channels)),
        )
        if self.use_bias:
            out += self.params["b"]
        if training:
            # Same-step cache: backward() consumes self._cols before the
            # next forward() can overwrite the "cols" scratch buffer, and
            # the inference branch below clears it.
            self._cols = cols  # repro: allow[REP008] same-step cache, see above
            self._input_shape = inputs.shape
        else:
            # Inference must not leave a stale training cache behind:
            # a later backward() would silently differentiate an older
            # batch instead of raising.
            self._cols = None
            self._input_shape = None
        return np.ascontiguousarray(
            out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, _, out_h, out_w = grad_output.shape
        rows = n * out_h * out_w
        grad_flat = self._scratch_buffer(
            "grad_flat", (rows, self.out_channels)
        )
        np.copyto(
            grad_flat.reshape(n, out_h, out_w, self.out_channels),
            grad_output.transpose(0, 2, 3, 1),
        )
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        np.matmul(
            grad_flat.T,
            self._cols,
            out=self.grads["W"].reshape(self.out_channels, -1),
        )
        if self.use_bias:
            np.sum(grad_flat, axis=0, out=self.grads["b"])
        grad_cols = np.matmul(
            grad_flat,
            w_flat,
            out=self._scratch_buffer("grad_cols", self._cols.shape),
        )
        in_n, in_c, in_h, in_w = self._input_shape
        padded_shape = (
            in_n,
            in_c,
            in_h + 2 * self.padding,
            in_w + 2 * self.padding,
        )
        grad_input = col2im(
            grad_cols,
            self._input_shape,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
            padded_out=self._scratch_buffer("col2im", padded_shape),
        )
        # The scatter accumulator is layer-owned scratch; hand callers
        # an owned array so the gradient survives the next step.
        return grad_input.copy()

    def __repr__(self) -> str:
        return (
            f"Conv2D(in={self.in_channels}, out={self.out_channels}, "
            f"kernel=({self.kernel_h},{self.kernel_w}), stride={self.stride}, "
            f"padding={self.padding})"
        )
