"""2-D convolution layer (NCHW, im2col-based)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv_utils import col2im, im2col
from repro.nn.initializers import Initializer, he_normal, zeros_init
from repro.nn.layer import Layer
from repro.rng import SeedLike, ensure_generator

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    The kernel has shape ``(out_channels, in_channels, kh, kw)``.
    Forward computes ``im2col(x) @ W_flat + b`` so both passes reduce to
    dense matrix algebra.

    Args:
        in_channels: number of input channels.
        out_channels: number of output channels (filters).
        kernel_size: square kernel size, or ``(kh, kw)`` tuple.
        stride: spatial stride.
        padding: symmetric zero padding.
        weight_init: kernel initializer (default He normal).
        bias: include per-filter additive bias.
        seed: seed or generator for the initializer.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride: int = 1,
        padding: int = 0,
        weight_init: Initializer = he_normal,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        kh, kw = (int(k) for k in kernel_size)
        if in_channels <= 0 or out_channels <= 0 or kh <= 0 or kw <= 0:
            raise ConfigurationError(
                "channels and kernel dims must be positive, got "
                f"in={in_channels}, out={out_channels}, kernel=({kh},{kw})"
            )
        if stride <= 0 or padding < 0:
            raise ConfigurationError(
                f"stride must be positive and padding non-negative, got "
                f"stride={stride}, padding={padding}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_h = kh
        self.kernel_w = kw
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(bias)
        rng = ensure_generator(seed)
        self._register(
            "W", weight_init((self.out_channels, self.in_channels, kh, kw), rng)
        )
        if self.use_bias:
            self._register("b", zeros_init((self.out_channels,), rng))
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expected (batch, {self.in_channels}, h, w), got "
                f"{inputs.shape}"
            )
        n = inputs.shape[0]
        cols, out_h, out_w = im2col(
            inputs, self.kernel_h, self.kernel_w, self.stride, self.padding
        )
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_flat.T
        if self.use_bias:
            out = out + self.params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cols = cols
            self._input_shape = inputs.shape
        return np.ascontiguousarray(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, _, out_h, out_w = grad_output.shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(
            n * out_h * out_w, self.out_channels
        )
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"][...] = (grad_flat.T @ self._cols).reshape(
            self.params["W"].shape
        )
        if self.use_bias:
            self.grads["b"][...] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_flat
        return col2im(
            grad_cols,
            self._input_shape,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2D(in={self.in_channels}, out={self.out_channels}, "
            f"kernel=({self.kernel_h},{self.kernel_w}), stride={self.stride}, "
            f"padding={self.padding})"
        )
