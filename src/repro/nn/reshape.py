"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layer import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Flatten all axes after the batch axis: ``(n, ...) -> (n, prod)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        # Inference invalidates the cache so a stale backward raises.
        self._input_shape = inputs.shape if training else None
        # Explicit trailing size: reshape(n, -1) cannot infer -1 for a
        # zero-row batch (total size 0), which empty-input predict hits.
        flat = int(np.prod(inputs.shape[1:], dtype=np.int64))
        return inputs.reshape(inputs.shape[0], flat)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output.reshape(self._input_shape)
