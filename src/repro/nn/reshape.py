"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layer import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Flatten all axes after the batch axis: ``(n, ...) -> (n, prod)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output.reshape(self._input_shape)
