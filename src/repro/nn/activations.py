"""Element-wise activation layers.

All activations are parameter-free :class:`~repro.nn.layer.Layer`
subclasses so they compose with :class:`~repro.nn.model.Sequential`
like any other layer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layer import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        mask = inputs > 0
        # Inference invalidates the cache so a stale backward raises.
        self._mask = mask if training else None
        return np.where(mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU: ``x`` for positive inputs, ``slope * x`` otherwise."""

    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        if slope < 0:
            raise ConfigurationError(f"slope must be non-negative, got {slope}")
        self.slope = float(slope)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        mask = inputs > 0
        # Inference invalidates the cache so a stale backward raises.
        self._mask = mask if training else None
        return np.where(mask, inputs, self.slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * np.where(self._mask, 1.0, self.slope)


class Sigmoid(Layer):
    """Logistic sigmoid: ``1 / (1 + exp(-x))``, numerically stabilized."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.empty_like(inputs, dtype=np.float64)
        pos = inputs >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-inputs[pos]))
        exp_x = np.exp(inputs[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        # Inference invalidates the cache so a stale backward raises.
        self._out = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(inputs)
        # Inference invalidates the cache so a stale backward raises.
        self._out = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * (1.0 - self._out**2)


class Softmax(Layer):
    """Softmax over the last axis.

    Prefer :class:`~repro.nn.losses.SoftmaxCrossEntropy` during
    training (it fuses the softmax with the loss for a stable, simple
    gradient); this layer exists for inference pipelines and for models
    whose output must be an explicit probability simplex.
    """

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = inputs - inputs.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        # Inference invalidates the cache so a stale backward raises.
        self._out = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        dot = np.sum(grad_output * self._out, axis=-1, keepdims=True)
        return self._out * (grad_output - dot)
