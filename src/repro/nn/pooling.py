"""Spatial pooling layers for NCHW inputs."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv_utils import col2im, im2col
from repro.nn.layer import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared plumbing for windowed pooling layers."""

    def __init__(self, pool_size, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        ph, pw = (int(p) for p in pool_size)
        if ph <= 0 or pw <= 0:
            raise ConfigurationError(f"pool_size must be positive, got ({ph},{pw})")
        if stride is None:
            stride = ph
        if stride <= 0 or padding < 0:
            raise ConfigurationError(
                f"stride must be positive and padding non-negative, got "
                f"stride={stride}, padding={padding}"
            )
        self.pool_h = ph
        self.pool_w = pw
        self.stride = int(stride)
        self.padding = int(padding)

    def _unfold(self, inputs: np.ndarray) -> Tuple[np.ndarray, int, int, int, int]:
        """Return per-channel windows ``(rows, window)`` plus geometry."""
        if inputs.ndim != 4:
            raise ShapeError(f"pooling expects NCHW input, got {inputs.shape}")
        n, c, h, w = inputs.shape
        # Treat channels as independent single-channel images so each
        # window row covers exactly one channel.
        reshaped = inputs.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(
            reshaped, self.pool_h, self.pool_w, self.stride, self.padding
        )
        return cols, n, c, out_h, out_w


class MaxPool2D(_Pool2D):
    """Max pooling over spatial windows.

    Args:
        pool_size: window size (int or ``(h, w)``).
        stride: window stride; defaults to the window height.
        padding: symmetric zero padding (padded zeros participate in
            the max, matching common framework semantics for
            non-negative activations).
    """

    def __init__(self, pool_size, stride: Optional[int] = None, padding: int = 0):
        super().__init__(pool_size, stride, padding)
        self._argmax: Optional[np.ndarray] = None
        self._geometry: Optional[Tuple[int, int, int, int, int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, out_h, out_w = self._unfold(inputs)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        if training:
            self._argmax = argmax
            self._geometry = (n, c, inputs.shape[2], inputs.shape[3], out_h, out_w)
        else:
            # Inference invalidates the training cache so a stale
            # backward raises instead of routing gradients through an
            # earlier batch's argmax.
            self._argmax = None
            self._geometry = None
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._geometry is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w, out_h, out_w = self._geometry
        rows = n * c * out_h * out_w
        grad_cols = np.zeros((rows, self.pool_h * self.pool_w), dtype=np.float64)
        grad_cols[np.arange(rows), self._argmax] = grad_output.reshape(rows)
        grad_images = col2im(
            grad_cols,
            (n * c, 1, h, w),
            self.pool_h,
            self.pool_w,
            self.stride,
            self.padding,
        )
        return grad_images.reshape(n, c, h, w)


class AvgPool2D(_Pool2D):
    """Average pooling over spatial windows."""

    def __init__(self, pool_size, stride: Optional[int] = None, padding: int = 0):
        super().__init__(pool_size, stride, padding)
        self._geometry: Optional[Tuple[int, int, int, int, int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, out_h, out_w = self._unfold(inputs)
        out = cols.mean(axis=1)
        if training:
            self._geometry = (n, c, inputs.shape[2], inputs.shape[3], out_h, out_w)
        else:
            # See MaxPool2D.forward: stale caches must not survive an
            # inference pass.
            self._geometry = None
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._geometry is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w, out_h, out_w = self._geometry
        rows = n * c * out_h * out_w
        window = self.pool_h * self.pool_w
        grad_cols = np.repeat(
            grad_output.reshape(rows, 1) / float(window), window, axis=1
        )
        grad_images = col2im(
            grad_cols,
            (n * c, 1, h, w),
            self.pool_h,
            self.pool_w,
            self.stride,
            self.padding,
        )
        return grad_images.reshape(n, c, h, w)


class GlobalAvgPool2D(Layer):
    """Global average pooling: ``(n, c, h, w) -> (n, c)``.

    SqueezeNet replaces its final dense classifier with a 1x1
    convolution followed by this layer.
    """

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(
                f"GlobalAvgPool2D expects NCHW input, got {inputs.shape}"
            )
        # Inference invalidates the cache (stale backward must raise).
        self._input_shape = inputs.shape if training else None
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._input_shape
        scale = 1.0 / float(h * w)
        return np.broadcast_to(
            grad_output.reshape(n, c, 1, 1) * scale, (n, c, h, w)
        ).copy()
