"""Mini-SqueezeNet, a scaled-down SqueezeNet built from Fire modules.

The paper trains SqueezeNet [19] on CIFAR-10. This reproduction's
synthetic dataset uses smaller images, so the architecture here keeps
SqueezeNet's structural signature — a stem convolution, a stack of Fire
modules with occasional max pooling, a 1x1 classifier convolution, and
global average pooling instead of dense classifier layers — at a width
and depth appropriate for the input size.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.nn.activations import ReLU
from repro.nn.architectures.fire import Fire
from repro.nn.conv import Conv2D
from repro.nn.model import Sequential
from repro.nn.pooling import GlobalAvgPool2D, MaxPool2D
from repro.rng import SeedLike, spawn_generators

__all__ = ["build_mini_squeezenet"]


def build_mini_squeezenet(
    input_shape: Sequence[int] = (3, 8, 8),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    seed: SeedLike = None,
) -> Sequential:
    """Build a Mini-SqueezeNet classifier.

    Architecture (for the default 8x8 input)::

        Conv 3x3 (16w) -> ReLU -> MaxPool 2
        Fire(squeeze 8w, expand 16w)      # out 32w channels
        Fire(squeeze 8w, expand 16w)
        MaxPool 2
        Fire(squeeze 12w, expand 24w)     # out 48w channels
        Conv 1x1 -> num_classes
        GlobalAvgPool

    where ``w`` scales with ``width_multiplier``.

    Args:
        input_shape: CHW input shape; height/width must be at least 4.
        num_classes: output class count.
        width_multiplier: scales every channel count (min width 4).
        seed: seed or generator for all weights.

    Returns:
        A :class:`~repro.nn.model.Sequential` emitting raw logits of
        shape ``(batch, num_classes)``.
    """
    if len(input_shape) != 3:
        raise ConfigurationError(
            f"input_shape must be (channels, height, width), got {input_shape}"
        )
    c, h, w = (int(v) for v in input_shape)
    if h < 4 or w < 4:
        raise ConfigurationError(
            f"Mini-SqueezeNet needs spatial size >= 4, got {h}x{w}"
        )
    if num_classes <= 0:
        raise ConfigurationError(f"num_classes must be positive, got {num_classes}")
    if width_multiplier <= 0:
        raise ConfigurationError(
            f"width_multiplier must be positive, got {width_multiplier}"
        )

    def scaled(base: int) -> int:
        return max(4, int(round(base * width_multiplier)))

    stem = scaled(16)
    fire_a_squeeze, fire_a_expand = scaled(8), scaled(16)
    fire_b_squeeze, fire_b_expand = scaled(12), scaled(24)

    rngs = spawn_generators(seed, 6)
    layers = [
        Conv2D(c, stem, 3, padding=1, seed=rngs[0]),
        ReLU(),
        MaxPool2D(2),
        Fire(stem, fire_a_squeeze, fire_a_expand, seed=rngs[1]),
        Fire(2 * fire_a_expand, fire_a_squeeze, fire_a_expand, seed=rngs[2]),
    ]
    spatial = min(h, w) // 2
    if spatial >= 2:
        layers.append(MaxPool2D(2))
    layers.extend(
        [
            Fire(2 * fire_a_expand, fire_b_squeeze, fire_b_expand, seed=rngs[3]),
            Conv2D(2 * fire_b_expand, num_classes, 1, seed=rngs[4]),
            GlobalAvgPool2D(),
        ]
    )
    return Sequential(layers)
