"""Convenience builders for MLP and small-CNN models."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.nn.activations import ReLU
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.model import Sequential
from repro.nn.normalization import BatchNorm
from repro.nn.pooling import MaxPool2D
from repro.nn.reshape import Flatten
from repro.rng import SeedLike, spawn_generators

__all__ = ["build_mlp", "build_cnn"]


def build_mlp(
    input_dim: int,
    num_classes: int,
    hidden_sizes: Sequence[int] = (64,),
    dropout: float = 0.0,
    seed: SeedLike = None,
) -> Sequential:
    """Build a ReLU multi-layer perceptron classifier.

    Args:
        input_dim: flattened input dimensionality.
        num_classes: output class count.
        hidden_sizes: widths of the hidden layers, in order.
        dropout: dropout rate applied after each hidden activation
            (0 disables dropout layers entirely).
        seed: seed or generator for all weight initializers.

    Returns:
        A :class:`~repro.nn.model.Sequential` emitting raw logits.
    """
    if input_dim <= 0 or num_classes <= 0:
        raise ConfigurationError(
            f"input_dim and num_classes must be positive, got "
            f"{input_dim}, {num_classes}"
        )
    rngs = spawn_generators(seed, len(hidden_sizes) + 1 + len(hidden_sizes))
    rng_iter = iter(rngs)
    layers = []
    previous = int(input_dim)
    for width in hidden_sizes:
        layers.append(Dense(previous, int(width), seed=next(rng_iter)))
        layers.append(ReLU())
        if dropout > 0.0:
            layers.append(Dropout(dropout, seed=next(rng_iter)))
        previous = int(width)
    layers.append(Dense(previous, int(num_classes), seed=next(rng_iter)))
    return Sequential(layers)


def build_cnn(
    input_shape: Sequence[int],
    num_classes: int,
    channels: Sequence[int] = (16, 32),
    dense_width: int = 64,
    batch_norm: bool = True,
    seed: SeedLike = None,
) -> Sequential:
    """Build a small VGG-style CNN: [conv-(bn)-relu-pool]* then dense.

    Args:
        input_shape: CHW input shape, e.g. ``(3, 8, 8)``.
        num_classes: output class count.
        channels: output channels of each conv stage; every stage halves
            the spatial size with 2x2 max pooling.
        dense_width: width of the hidden dense layer before the logits.
        batch_norm: insert :class:`BatchNorm` after each convolution.
        seed: seed or generator for all weight initializers.

    Returns:
        A :class:`~repro.nn.model.Sequential` emitting raw logits.
    """
    if len(input_shape) != 3:
        raise ConfigurationError(
            f"input_shape must be (channels, height, width), got {input_shape}"
        )
    c, h, w = (int(v) for v in input_shape)
    if min(c, h, w) <= 0 or num_classes <= 0:
        raise ConfigurationError(
            f"input dims and num_classes must be positive, got "
            f"{input_shape}, {num_classes}"
        )
    rngs = spawn_generators(seed, len(channels) + 2)
    layers = []
    in_channels = c
    for idx, out_channels in enumerate(channels):
        layers.append(
            Conv2D(in_channels, int(out_channels), 3, padding=1, seed=rngs[idx])
        )
        if batch_norm:
            layers.append(BatchNorm(int(out_channels)))
        layers.append(ReLU())
        if h >= 2 and w >= 2:
            layers.append(MaxPool2D(2))
            h //= 2
            w //= 2
        in_channels = int(out_channels)
    layers.append(Flatten())
    flat_dim = in_channels * h * w
    layers.append(Dense(flat_dim, int(dense_width), seed=rngs[-2]))
    layers.append(ReLU())
    layers.append(Dense(int(dense_width), int(num_classes), seed=rngs[-1]))
    return Sequential(layers)
