"""The SqueezeNet Fire module.

A Fire module squeezes the channel dimension with a 1x1 convolution and
re-expands it with parallel 1x1 and 3x3 convolutions whose outputs are
concatenated — the building block that lets SqueezeNet reach AlexNet
accuracy with ~50x fewer parameters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.conv import Conv2D
from repro.nn.layer import Layer
from repro.rng import SeedLike, spawn_generators

__all__ = ["Fire"]


class Fire(Layer):
    """SqueezeNet Fire module: squeeze (1x1) then expand (1x1 || 3x3).

    Both the squeeze output and the concatenated expand output pass
    through ReLU. The 3x3 expand branch uses padding 1 so both branches
    produce identical spatial sizes.

    Args:
        in_channels: input channel count.
        squeeze_channels: channels of the squeeze 1x1 convolution.
        expand_channels: channels of *each* expand branch; the module
            output has ``2 * expand_channels`` channels.
        seed: seed or generator for the three child convolutions.
    """

    def __init__(
        self,
        in_channels: int,
        squeeze_channels: int,
        expand_channels: int,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if squeeze_channels <= 0 or expand_channels <= 0:
            raise ConfigurationError(
                "squeeze_channels and expand_channels must be positive, got "
                f"{squeeze_channels} and {expand_channels}"
            )
        rngs = spawn_generators(seed, 3)
        self.squeeze = Conv2D(in_channels, squeeze_channels, 1, seed=rngs[0])
        self.expand1 = Conv2D(squeeze_channels, expand_channels, 1, seed=rngs[1])
        self.expand3 = Conv2D(
            squeeze_channels, expand_channels, 3, padding=1, seed=rngs[2]
        )
        self.in_channels = int(in_channels)
        self.out_channels = 2 * int(expand_channels)
        self.expand_channels = int(expand_channels)
        # Expose child parameters under prefixed names so the module
        # behaves as a single Layer: the arrays are shared (not copied),
        # and all library code mutates parameter arrays in place.
        for prefix, child in (
            ("squeeze", self.squeeze),
            ("expand1", self.expand1),
            ("expand3", self.expand3),
        ):
            for name in child.params:
                self.params[f"{prefix}.{name}"] = child.params[name]
                self.grads[f"{prefix}.{name}"] = child.grads[name]
        self._squeeze_mask: Optional[np.ndarray] = None
        self._out_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        squeezed_pre = self.squeeze.forward(inputs, training=training)
        squeeze_mask = squeezed_pre > 0
        squeezed = np.where(squeeze_mask, squeezed_pre, 0.0)
        branch1 = self.expand1.forward(squeezed, training=training)
        branch3 = self.expand3.forward(squeezed, training=training)
        out_pre = np.concatenate([branch1, branch3], axis=1)
        out_mask = out_pre > 0
        if training:
            self._squeeze_mask = squeeze_mask
            self._out_mask = out_mask
        return np.where(out_mask, out_pre, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._squeeze_mask is None or self._out_mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad_pre = grad_output * self._out_mask
        grad_b1 = grad_pre[:, : self.expand_channels]
        grad_b3 = grad_pre[:, self.expand_channels :]
        grad_squeezed = self.expand1.backward(
            np.ascontiguousarray(grad_b1)
        ) + self.expand3.backward(np.ascontiguousarray(grad_b3))
        grad_squeezed = grad_squeezed * self._squeeze_mask
        return self.squeeze.backward(grad_squeezed)

    def __repr__(self) -> str:
        return (
            f"Fire(in={self.in_channels}, squeeze="
            f"{self.squeeze.out_channels}, expand={self.expand_channels}x2)"
        )
