"""Reference model architectures.

The paper trains SqueezeNet [19]; :func:`build_mini_squeezenet` provides
a faithful scaled-down SqueezeNet (Fire modules, 1x1 classifier conv,
global average pooling) sized for the synthetic dataset, while
:func:`build_mlp` and :func:`build_cnn` provide cheaper substrates for
tests and fast experiments.
"""

from repro.nn.architectures.builders import build_cnn, build_mlp
from repro.nn.architectures.fire import Fire
from repro.nn.architectures.squeezenet import build_mini_squeezenet

__all__ = ["Fire", "build_mlp", "build_cnn", "build_mini_squeezenet"]
