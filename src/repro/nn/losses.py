"""Loss functions.

Losses expose ``loss_and_grad(outputs, targets)`` returning the scalar
mean loss and the gradient with respect to ``outputs``, ready to feed
into ``Sequential.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError

__all__ = ["SoftmaxCrossEntropy", "MeanSquaredError"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy over integer class labels.

    The fusion gives the numerically benign gradient
    ``(softmax(logits) - onehot) / batch``.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ShapeError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = float(label_smoothing)

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def _target_distribution(self, labels: np.ndarray, classes: int) -> np.ndarray:
        batch = labels.shape[0]
        onehot = np.zeros((batch, classes), dtype=np.float64)
        onehot[np.arange(batch), labels] = 1.0
        if self.label_smoothing > 0.0:
            smooth = self.label_smoothing
            onehot = onehot * (1.0 - smooth) + smooth / classes
        return onehot

    def loss(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Return the mean cross-entropy of ``logits`` against ``labels``."""
        value, _ = self.loss_and_grad(logits, labels)
        return value

    def loss_and_grad(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean loss, d loss / d logits)``.

        Args:
            logits: unnormalized scores of shape ``(batch, classes)``.
            labels: integer class ids of shape ``(batch,)``.
        """
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"labels must be 1-D with length {logits.shape[0]}, got "
                f"shape {labels.shape}"
            )
        labels = labels.astype(np.int64)
        classes = logits.shape[1]
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= classes:
            raise ShapeError(
                f"labels must lie in [0, {classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        probs = self._softmax(logits)
        target = self._target_distribution(labels, classes)
        log_probs = np.log(np.clip(probs, 1e-300, None))
        value = float(-(target * log_probs).sum(axis=1).mean())
        grad = (probs - target) / logits.shape[0]
        return value, grad


class MeanSquaredError:
    """Mean squared error over all elements: ``mean((y - t)^2)``."""

    def loss(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        """Return the mean squared error."""
        value, _ = self.loss_and_grad(outputs, targets)
        return value

    def loss_and_grad(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean loss, d loss / d outputs)``."""
        targets = np.asarray(targets, dtype=np.float64)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs {outputs.shape} and targets {targets.shape} differ"
            )
        diff = outputs - targets
        value = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return value, grad
