"""Numeric gradient checking used by the test suite.

The central-difference gradient is compared against a layer's analytic
backward pass; every layer in :mod:`repro.nn` is validated this way.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numeric_gradient", "relative_error"]


def numeric_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x``.

    ``fn`` must be a pure function of its argument (the array is
    perturbed in place and restored between evaluations).

    Args:
        fn: maps an array of ``x``'s shape to a scalar.
        x: evaluation point; modified temporarily, restored on return.
        eps: finite-difference step.

    Returns:
        Array of ``x``'s shape holding ``d fn / d x``.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        f_plus = fn(x)
        flat_x[i] = original - eps
        f_minus = fn(x)
        flat_x[i] = original
        flat_g[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-8) -> float:
    """Max elementwise relative error between two arrays.

    ``|a - b| / max(|a| + |b|, floor)``, reduced with ``max``. Values
    near ``1e-7`` or below indicate an analytically correct gradient for
    float64 central differences.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), floor)
    return float(np.max(np.abs(a - b) / denom))
