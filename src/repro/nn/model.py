"""The :class:`Sequential` model container.

Beyond chaining layers, the container exposes flat-vector parameter
access (:meth:`Sequential.get_flat_params` /
:meth:`Sequential.set_flat_params`), which is the interface the
federated-averaging server uses: aggregation is a weighted average of
flat vectors, exactly matching Eq. (18) of the paper.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of layers executed in order.

    Args:
        layers: layers in execution order.
        seed: optional seed recorded for provenance (layers are seeded
            at construction; this value is informational).
    """

    def __init__(self, layers: Sequence[Layer], seed: Optional[int] = None) -> None:
        self.layers: List[Layer] = list(layers)
        self.seed = seed
        for layer in self.layers:
            if not isinstance(layer, Layer):
                raise TypeError(f"expected Layer instances, got {type(layer)!r}")

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass and return the final activation."""
        out = inputs
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through every layer; returns the input gradient."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Reset every layer's gradient buffers."""
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total scalar parameter count across all layers."""
        return sum(layer.parameter_count for layer in self.layers)

    def parameter_bytes(self, bits_per_parameter: int = 32) -> int:
        """Size of one model payload in bytes at the given precision.

        Used to derive the communication payload ``C_model`` of Eq. (7)
        from an actual model.
        """
        return self.parameter_count * bits_per_parameter // 8

    def named_parameters(self) -> Iterable:
        """Yield ``(layer_index, name, array)`` for every parameter."""
        for idx, layer in enumerate(self.layers):
            for name, param in layer.named_parameters():
                yield idx, name, param

    def get_flat_params(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Concatenate every parameter into a single 1-D float64 vector.

        Args:
            out: optional preallocated 1-D float64 destination of length
                :attr:`parameter_count`. When given, parameter values are
                written directly into it (e.g. a shared-memory view) and
                no intermediate concatenation is allocated.

        Raises:
            ShapeError: if ``out`` has the wrong length or dtype.
        """
        if out is None:
            chunks = [param.ravel() for _, _, param in self.named_parameters()]
            if not chunks:
                return np.zeros(0, dtype=np.float64)
            return np.concatenate(chunks).astype(np.float64, copy=False)
        expected = self.parameter_count
        if out.ndim != 1 or out.size != expected or out.dtype != np.float64:
            raise ShapeError(
                f"out buffer must be 1-D float64 of length {expected}, got "
                f"shape {out.shape} dtype {out.dtype}"
            )
        offset = 0
        for _, _, param in self.named_parameters():
            size = param.size
            out[offset : offset + size] = param.ravel()
            offset += size
        return out

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Write a flat vector produced by :meth:`get_flat_params` back.

        Arrays are updated in place so optimizer state and external
        references stay valid.

        Raises:
            ShapeError: if ``flat`` has the wrong length.
        """
        flat = np.asarray(flat, dtype=np.float64).ravel()
        expected = self.parameter_count
        if flat.size != expected:
            raise ShapeError(
                f"flat parameter vector has {flat.size} entries, expected "
                f"{expected}"
            )
        offset = 0
        for _, _, param in self.named_parameters():
            size = param.size
            param[...] = flat[offset : offset + size].reshape(param.shape)
            offset += size

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate every gradient buffer into one flat vector."""
        chunks = []
        for idx, layer in enumerate(self.layers):
            for name in sorted(layer.params):
                chunks.append(layer.grads[name].ravel())
        if not chunks:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(chunks).astype(np.float64, copy=False)

    def sgd_step(self, learning_rate: float) -> None:
        """Apply one in-place vanilla SGD step: ``p -= lr * g``.

        Fused fast path for the federated local update (HELCFL Eq. 3):
        bitwise identical to ``Sgd(learning_rate).step(model)`` with zero
        weight decay, but without constructing an optimizer or staging
        flat vectors.
        """
        rate = float(learning_rate)
        for layer in self.layers:
            for name, param in layer.params.items():
                param -= rate * layer.grads[name]

    # ------------------------------------------------------------------
    # Cloning / prediction helpers
    # ------------------------------------------------------------------
    def clone(self) -> Sequential:
        """Deep-copy the model (architecture, parameters, buffers)."""
        return copy.deepcopy(self)

    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference-mode forward pass, batched to bound memory."""
        if inputs.shape[0] == 0:
            # A zero-row forward still produces the correct trailing
            # output dimensions, so predict_classes can argmax on an
            # empty batch instead of crashing on a 1-D placeholder.
            return self.forward(inputs, training=False)
        outputs = []
        for start in range(0, inputs.shape[0], batch_size):
            outputs.append(
                self.forward(inputs[start : start + batch_size], training=False)
            )
        return np.concatenate(outputs, axis=0)

    def predict_classes(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Return argmax class ids for ``inputs``."""
        return self.predict(inputs, batch_size=batch_size).argmax(axis=1)

    def apply(self, fn: Callable[[Layer], None]) -> None:
        """Call ``fn`` on every layer (e.g. to tweak dropout rates)."""
        for layer in self.layers:
            fn(layer)

    def summary(self) -> str:
        """Return a human-readable multi-line architecture summary."""
        lines = [f"Sequential({len(self.layers)} layers, "
                 f"{self.parameter_count} parameters)"]
        for idx, layer in enumerate(self.layers):
            lines.append(f"  [{idx:2d}] {layer!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Sequential(layers={len(self.layers)}, "
            f"params={self.parameter_count})"
        )
