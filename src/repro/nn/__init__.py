"""A from-scratch numpy neural-network library.

This package is the training substrate for the HELCFL reproduction: the
paper trains SqueezeNet on CIFAR-10 with a conventional deep-learning
stack, and this package provides the equivalent capability offline —
layers with exact analytic gradients, losses, SGD-family optimizers,
reference architectures (an MLP, a small CNN, and a Mini-SqueezeNet
built from Fire modules), plus flat-parameter access used by the
federated-averaging aggregator.

Quick example::

    from repro import nn

    model = nn.Sequential([
        nn.Dense(32, 64), nn.ReLU(),
        nn.Dense(64, 10),
    ], seed=0)
    loss = nn.SoftmaxCrossEntropy()
    opt = nn.Sgd(learning_rate=0.1)
    probs = model.forward(x, training=True)
    value, grad = loss.loss_and_grad(probs, labels)
    model.backward(grad)
    opt.step(model)
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.gradcheck import numeric_gradient, relative_error
from repro.nn.initializers import (
    constant_init,
    he_normal,
    he_uniform,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)
from repro.nn.layer import Layer
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.model import Sequential
from repro.nn.normalization import BatchNorm
from repro.nn.optimizers import Adam, Momentum, Nesterov, Sgd
from repro.nn.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.reshape import Flatten
from repro.nn.schedules import ConstantSchedule, CosineSchedule, StepDecaySchedule
from repro.nn.serialization import load_model_params, save_model_params
from repro.nn.architectures import build_cnn, build_mlp, build_mini_squeezenet

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Sequential",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "Sgd",
    "Momentum",
    "Nesterov",
    "Adam",
    "ConstantSchedule",
    "StepDecaySchedule",
    "CosineSchedule",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "zeros_init",
    "constant_init",
    "numeric_gradient",
    "relative_error",
    "save_model_params",
    "load_model_params",
    "build_mlp",
    "build_cnn",
    "build_mini_squeezenet",
]
