"""HELCFL reproduction: high-efficiency, low-cost federated learning
in heterogeneous mobile-edge computing (Cui et al., DATE 2022).

The package implements the paper's full system from scratch on numpy:

* :mod:`repro.core` — the contribution: utility-driven greedy-decay
  user selection (Algorithm 2) and DVFS-enabled frequency
  determination (Algorithm 3), assembled by Algorithm 1.
* :mod:`repro.nn` — a neural-network library (the training substrate).
* :mod:`repro.data` — the synthetic CIFAR-10-like task and the paper's
  IID / non-IID partitioners.
* :mod:`repro.devices`, :mod:`repro.network` — the MEC cost model
  (Eqs. 4–11) and the TDMA timeline simulator.
* :mod:`repro.fl` — the synchronous FedAvg engine.
* :mod:`repro.baselines` — Classic FL, FedCS, FEDL, and SL.
* :mod:`repro.experiments` — runners regenerating Fig. 2, Table I,
  and Fig. 3.

Quickstart::

    from repro.experiments import ExperimentSettings, run_strategy

    settings = ExperimentSettings.quick()
    history = run_strategy("helcfl", settings, iid=True)
    print(history.best_accuracy, history.total_time, history.total_energy)
"""

from repro.core import (
    GreedyDecaySelection,
    HelcflDvfsPolicy,
    analyze_slack,
    build_helcfl_trainer,
    determine_frequencies,
)
from repro.errors import ReproError
from repro.version import __version__

__all__ = [
    "__version__",
    "ReproError",
    "GreedyDecaySelection",
    "HelcflDvfsPolicy",
    "determine_frequencies",
    "analyze_slack",
    "build_helcfl_trainer",
]
