"""Exception hierarchy for the HELCFL reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to discriminate between configuration problems,
model problems, and simulation problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "DataError",
    "PartitionError",
    "DeviceError",
    "FrequencyRangeError",
    "NetworkError",
    "SelectionError",
    "TrainingError",
    "SerializationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or component configuration value is invalid.

    Raised when a user-supplied parameter is outside its documented
    domain (for example a negative learning rate, a selection fraction
    outside ``(0, 1]``, or a decay coefficient outside ``(0, 1)``).
    """


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape.

    Raised by :mod:`repro.nn` layers and losses when the input rank or
    dimensions do not match what the layer was constructed for.
    """


class DataError(ReproError, ValueError):
    """A dataset is malformed (mismatched lengths, bad labels, empty)."""


class PartitionError(DataError):
    """A dataset partition request cannot be satisfied.

    Raised for example when the paper's shard partitioner is asked for
    more shards than there are samples, or when the number of shards is
    not divisible by the number of users.
    """


class DeviceError(ReproError, ValueError):
    """A device model (CPU, radio, battery) received invalid parameters."""


class FrequencyRangeError(DeviceError):
    """A requested CPU operating frequency lies outside ``[f_min, f_max]``."""


class NetworkError(ReproError, ValueError):
    """A wireless-network model (channel, TDMA schedule) is invalid."""


class SelectionError(ReproError, ValueError):
    """A user-selection strategy cannot produce a valid selection.

    Raised for example when a strategy is asked to select from an empty
    population, or when FedCS's per-round deadline excludes every user.
    """


class TrainingError(ReproError, RuntimeError):
    """The federated training loop entered an invalid state."""


class SerializationError(ReproError, ValueError):
    """A model or history payload could not be encoded or decoded."""
