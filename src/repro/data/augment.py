"""Image augmentation for CHW batches (extension).

Standard CIFAR-style augmentations — horizontal flips, shifted crops
with zero padding, and additive pixel noise — implemented on numpy so
clients can regularize local training on small shards. Each augmenter
is a callable object with its own seeded generator, composable via
:class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.rng import SeedLike, ensure_generator

__all__ = ["RandomHorizontalFlip", "RandomShift", "GaussianNoise", "Compose"]


def _check_nchw(images: np.ndarray) -> np.ndarray:
    images = np.asarray(images)
    if images.ndim != 4:
        raise ShapeError(f"augmenters expect NCHW batches, got {images.shape}")
    return images


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``probability``."""

    def __init__(self, probability: float = 0.5, seed: SeedLike = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        self.probability = float(probability)
        self._rng = ensure_generator(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        out = images.copy()
        flip = self._rng.random(images.shape[0]) < self.probability
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomShift:
    """Shift each image by up to ``max_shift`` pixels, zero-filled.

    The numpy analogue of pad-and-random-crop augmentation.
    """

    def __init__(self, max_shift: int = 1, seed: SeedLike = None) -> None:
        if max_shift < 0:
            raise ConfigurationError(
                f"max_shift must be non-negative, got {max_shift}"
            )
        self.max_shift = int(max_shift)
        self._rng = ensure_generator(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        if self.max_shift == 0:
            return images.copy()
        n, _, h, w = images.shape
        out = np.zeros_like(images)
        shifts = self._rng.integers(
            -self.max_shift, self.max_shift + 1, size=(n, 2)
        )
        for idx in range(n):
            dy, dx = int(shifts[idx, 0]), int(shifts[idx, 1])
            src_y = slice(max(0, -dy), min(h, h - dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_y = slice(max(0, dy), min(h, h + dy))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[idx, :, dst_y, dst_x] = images[idx, :, src_y, src_x]
        return out


class GaussianNoise:
    """Add i.i.d. gaussian pixel noise of scale ``std``."""

    def __init__(self, std: float = 0.05, seed: SeedLike = None) -> None:
        if std < 0:
            raise ConfigurationError(f"std must be non-negative, got {std}")
        self.std = float(std)
        self._rng = ensure_generator(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        if self.std == 0:
            return images.copy()
        return images + self._rng.normal(0.0, self.std, size=images.shape)


class Compose:
    """Apply augmenters in sequence."""

    def __init__(self, augmenters: Sequence[Callable]) -> None:
        if not augmenters:
            raise ConfigurationError("Compose needs at least one augmenter")
        self.augmenters = list(augmenters)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        out = _check_nchw(images)
        for augmenter in self.augmenters:
            out = augmenter(out)
        return out
