"""Datasets and federated partitioning.

Provides the array-backed dataset container, the synthetic
CIFAR-10-like classification task used in place of CIFAR-10 (offline
environment — see DESIGN.md), and the paper's two partitioning schemes:

* **IID** — samples shuffled and split evenly across users.
* **Non-IID** — the paper's recipe: sort by label, cut into shards
  (400 shards for 100 users), assign ``shards_per_user`` (4) shards to
  each user.

A Dirichlet partitioner is included as an extension for controllable
heterogeneity.
"""

from repro.data.augment import (
    Compose,
    GaussianNoise,
    RandomHorizontalFlip,
    RandomShift,
)
from repro.data.dataset import ArrayDataset, train_test_split
from repro.data.loader import BatchLoader
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    partition_label_distribution,
    shard_noniid_partition,
)
from repro.data.synthetic import SyntheticImageTask, make_synthetic_image_task
from repro.data.transforms import flatten_images, normalize_images, one_hot

__all__ = [
    "ArrayDataset",
    "train_test_split",
    "BatchLoader",
    "iid_partition",
    "shard_noniid_partition",
    "dirichlet_partition",
    "partition_label_distribution",
    "SyntheticImageTask",
    "make_synthetic_image_task",
    "normalize_images",
    "flatten_images",
    "one_hot",
    "RandomHorizontalFlip",
    "RandomShift",
    "GaussianNoise",
    "Compose",
]
