"""Synthetic CIFAR-10-like image classification task.

The paper evaluates on CIFAR-10, which is unavailable in this offline
environment. This module generates a seeded stand-in with the
properties the experiments actually rely on:

* a fixed number of balanced classes (10 by default);
* image-shaped inputs so convolutional models (Mini-SqueezeNet) apply;
* class structure that a small model can learn well but not perfectly,
  so accuracy curves rise then plateau below 100% (like CIFAR-10);
* per-sample variation so that seeing *more distinct users' data*
  genuinely improves the learned decision boundary — the property that
  drives the paper's Fig. 2 result (FedCS plateaus because the data on
  slow users is never incorporated).

Generation model: each class ``k`` owns a smooth random prototype image
``P_k``; each sample is ``P_k + S z + eps`` where ``S`` is a shared bank
of smooth style components, ``z`` a per-sample gaussian code (the
within-class variation), and ``eps`` white pixel noise. Class
separability is controlled by the prototype scale relative to the
variation scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_generator

__all__ = ["SyntheticImageTask", "make_synthetic_image_task"]


@dataclass
class SyntheticImageTask:
    """A generated classification task with train and test splits.

    Attributes:
        train: training split.
        test: held-out evaluation split.
        num_classes: class count.
        image_shape: CHW shape of each sample.
        class_separation: prototype scale used at generation.
        within_class_std: per-sample style-code scale.
        noise_std: white pixel-noise scale.
        seed: generation seed (for provenance).
    """

    train: ArrayDataset
    test: ArrayDataset
    num_classes: int
    image_shape: Tuple[int, int, int]
    class_separation: float
    within_class_std: float
    noise_std: float
    seed: int | None = field(default=None)

    @property
    def input_dim(self) -> int:
        """Flattened input dimensionality."""
        return int(np.prod(self.image_shape))


def _smooth_field(
    rng: np.random.Generator, shape: Tuple[int, int, int], smoothness: int = 2
) -> np.ndarray:
    """Draw a spatially smooth random field of CHW ``shape``.

    Smoothness is obtained by upsampling a coarse gaussian grid with
    bilinear-style interpolation (axis-wise ``np.interp``), which keeps
    the generator dependency-free.
    """
    c, h, w = shape
    coarse_h = max(2, h // smoothness)
    coarse_w = max(2, w // smoothness)
    coarse = rng.normal(0.0, 1.0, size=(c, coarse_h, coarse_w))
    ys = np.linspace(0.0, coarse_h - 1.0, h)
    xs = np.linspace(0.0, coarse_w - 1.0, w)
    field_rows = np.empty((c, h, coarse_w))
    for ch in range(c):
        for j in range(coarse_w):
            field_rows[ch, :, j] = np.interp(
                ys, np.arange(coarse_h), coarse[ch, :, j]
            )
    out = np.empty((c, h, w))
    for ch in range(c):
        for i in range(h):
            out[ch, i, :] = np.interp(xs, np.arange(coarse_w), field_rows[ch, i, :])
    return out


def make_synthetic_image_task(
    num_classes: int = 10,
    train_size: int = 4000,
    test_size: int = 1000,
    image_shape: Tuple[int, int, int] = (3, 8, 8),
    class_separation: float = 1.0,
    within_class_std: float = 0.9,
    noise_std: float = 0.6,
    num_style_components: int = 12,
    seed: SeedLike = None,
) -> SyntheticImageTask:
    """Generate a balanced synthetic image classification task.

    Args:
        num_classes: number of classes (balanced in both splits).
        train_size: total training samples (split evenly per class).
        test_size: total test samples.
        image_shape: CHW shape of generated images.
        class_separation: scale of class prototypes — larger is easier.
        within_class_std: scale of the shared-style per-sample codes —
            larger means more intra-class diversity (and more benefit
            from seeing many users' samples).
        noise_std: white-noise scale — larger lowers the accuracy
            ceiling.
        num_style_components: size of the shared style bank.
        seed: generation seed.

    Returns:
        A :class:`SyntheticImageTask` with standardized inputs
        (approximately zero-mean, unit-variance overall).
    """
    if num_classes < 2:
        raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
    if train_size < num_classes or test_size < num_classes:
        raise ConfigurationError(
            "train_size and test_size must each be >= num_classes, got "
            f"{train_size} and {test_size} for {num_classes} classes"
        )
    if min(class_separation, within_class_std, noise_std) < 0:
        raise ConfigurationError("scales must be non-negative")
    if num_style_components <= 0:
        raise ConfigurationError(
            f"num_style_components must be positive, got {num_style_components}"
        )
    image_shape = tuple(int(v) for v in image_shape)
    if len(image_shape) != 3 or min(image_shape) <= 0:
        raise ConfigurationError(
            f"image_shape must be a positive CHW triple, got {image_shape}"
        )

    rng = ensure_generator(seed)
    prototypes = np.stack(
        [
            class_separation * _smooth_field(rng, image_shape)
            for _ in range(num_classes)
        ]
    )
    style_bank = np.stack(
        [_smooth_field(rng, image_shape) for _ in range(num_style_components)]
    )

    def _generate(total: int) -> ArrayDataset:
        per_class = total // num_classes
        remainder = total - per_class * num_classes
        counts = np.full(num_classes, per_class, dtype=np.int64)
        counts[:remainder] += 1
        inputs = np.empty((total,) + image_shape, dtype=np.float64)
        labels = np.empty(total, dtype=np.int64)
        cursor = 0
        for cls in range(num_classes):
            n = int(counts[cls])
            codes = rng.normal(
                0.0, within_class_std, size=(n, num_style_components)
            )
            styles = np.tensordot(codes, style_bank, axes=(1, 0))
            noise = rng.normal(0.0, noise_std, size=(n,) + image_shape)
            inputs[cursor : cursor + n] = prototypes[cls] + styles + noise
            labels[cursor : cursor + n] = cls
            cursor += n
        order = rng.permutation(total)
        return ArrayDataset(inputs[order], labels[order])

    train = _generate(train_size)
    test = _generate(test_size)

    # Standardize with the training split's statistics.
    mean = train.inputs.mean()
    std = train.inputs.std()
    std = std if std > 0 else 1.0
    train = ArrayDataset((train.inputs - mean) / std, train.labels)
    test = ArrayDataset((test.inputs - mean) / std, test.labels)

    return SyntheticImageTask(
        train=train,
        test=test,
        num_classes=num_classes,
        image_shape=image_shape,
        class_separation=float(class_separation),
        within_class_std=float(within_class_std),
        noise_std=float(noise_std),
        seed=seed if isinstance(seed, int) else None,
    )
