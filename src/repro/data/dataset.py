"""Array-backed dataset container."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.rng import SeedLike, ensure_generator

__all__ = ["ArrayDataset", "train_test_split"]


class ArrayDataset:
    """An in-memory supervised dataset of ``(inputs, labels)`` arrays.

    This plays the role of a user's local dataset ``D_q`` in the paper:
    ``len(dataset)`` is ``|D_q|``, the quantity driving both the FedAvg
    weights (Eq. 18) and the compute cost model (Eq. 4).

    Args:
        inputs: sample array; first axis indexes samples.
        labels: integer class labels, same length as ``inputs``.
    """

    def __init__(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if inputs.shape[0] != labels.shape[0]:
            raise DataError(
                f"inputs ({inputs.shape[0]}) and labels ({labels.shape[0]}) "
                "must have the same length"
            )
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.size and not np.issubdtype(labels.dtype, np.integer):
            if not np.allclose(labels, np.round(labels)):
                raise DataError("labels must be integers")
            labels = labels.astype(np.int64)
        self.inputs = inputs
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct label values present (0 when empty)."""
        if self.labels.size == 0:
            return 0
        return int(self.labels.max()) + 1

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Return per-class sample counts.

        Args:
            num_classes: length of the returned histogram; defaults to
                ``max label + 1``.
        """
        if num_classes is None:
            num_classes = self.num_classes
        return np.bincount(self.labels, minlength=num_classes)[:num_classes]

    def subset(self, indices: Sequence[int]) -> ArrayDataset:
        """Return a new dataset holding the rows at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= len(self)
        ):
            raise DataError(
                f"indices out of range for dataset of size {len(self)}"
            )
        return ArrayDataset(self.inputs[indices], self.labels[indices])

    def shuffled(self, seed: SeedLike = None) -> ArrayDataset:
        """Return a row-shuffled copy."""
        rng = ensure_generator(seed)
        order = rng.permutation(len(self))
        return self.subset(order)

    def concat(self, other: ArrayDataset) -> ArrayDataset:
        """Return the concatenation of this dataset with ``other``."""
        if len(self) == 0:
            return ArrayDataset(other.inputs.copy(), other.labels.copy())
        if len(other) == 0:
            return ArrayDataset(self.inputs.copy(), self.labels.copy())
        return ArrayDataset(
            np.concatenate([self.inputs, other.inputs], axis=0),
            np.concatenate([self.labels, other.labels], axis=0),
        )

    def batches(
        self, batch_size: int, seed: SeedLike = None, shuffle: bool = False
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(inputs, labels)`` mini-batches covering the dataset."""
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            ensure_generator(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            batch = order[start : start + batch_size]
            yield self.inputs[batch], self.labels[batch]

    def __repr__(self) -> str:
        return (
            f"ArrayDataset(n={len(self)}, input_shape="
            f"{tuple(self.inputs.shape[1:])}, classes={self.num_classes})"
        )


def train_test_split(
    dataset: ArrayDataset, test_fraction: float = 0.2, seed: SeedLike = None
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split ``dataset`` into shuffled train and test subsets.

    Args:
        dataset: source dataset.
        test_fraction: fraction of rows assigned to the test split,
            strictly inside ``(0, 1)``.
        seed: shuffle seed.

    Returns:
        ``(train, test)`` datasets.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_generator(seed)
    order = rng.permutation(len(dataset))
    n_test = int(round(len(dataset) * test_fraction))
    n_test = min(max(n_test, 1), len(dataset) - 1)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
