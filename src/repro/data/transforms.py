"""Input transforms."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = ["normalize_images", "flatten_images", "one_hot"]


def normalize_images(
    images: np.ndarray, mean: float | None = None, std: float | None = None
) -> np.ndarray:
    """Standardize ``images`` to zero mean, unit variance.

    Args:
        images: input array.
        mean: subtract this mean; computed from ``images`` when None.
        std: divide by this std; computed from ``images`` when None.
            A zero std is replaced by 1 to avoid division by zero.
    """
    images = np.asarray(images, dtype=np.float64)
    if mean is None:
        mean = float(images.mean()) if images.size else 0.0
    if std is None:
        std = float(images.std()) if images.size else 1.0
    if std == 0:
        std = 1.0
    return (images - mean) / std


def flatten_images(images: np.ndarray) -> np.ndarray:
    """Flatten an ``(n, ...)`` batch to ``(n, prod)``.

    Used to feed image datasets into MLP models.
    """
    images = np.asarray(images)
    if images.ndim < 2:
        raise DataError(f"expected a batched array, got shape {images.shape}")
    return images.reshape(images.shape[0], -1)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise DataError(f"labels must be 1-D, got shape {labels.shape}")
    if num_classes <= 0:
        raise DataError(f"num_classes must be positive, got {num_classes}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise DataError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
