"""Federated dataset partitioners.

Implements the two schemes of the paper's Section VII-A plus a
Dirichlet extension:

* :func:`iid_partition` — "training samples are randomly shuffled and
  evenly assigned to users".
* :func:`shard_noniid_partition` — "training samples are sorted by
  labels and cut into 400 pieces, and each four pieces are assigned a
  user" (for 100 users; the shard arithmetic generalizes).
* :func:`dirichlet_partition` — label-Dirichlet partitioning with a
  concentration knob, the standard modern non-IID benchmark.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import PartitionError
from repro.rng import SeedLike, ensure_generator

__all__ = [
    "iid_partition",
    "shard_noniid_partition",
    "dirichlet_partition",
    "partition_label_distribution",
]


def _check_partition_args(dataset: ArrayDataset, num_users: int) -> None:
    if num_users <= 0:
        raise PartitionError(f"num_users must be positive, got {num_users}")
    if len(dataset) < num_users:
        raise PartitionError(
            f"cannot split {len(dataset)} samples across {num_users} users"
        )


def iid_partition(
    dataset: ArrayDataset, num_users: int, seed: SeedLike = None
) -> List[ArrayDataset]:
    """Shuffle and split ``dataset`` evenly across ``num_users`` users.

    When the size is not divisible, the first ``size % num_users`` users
    receive one extra sample, so every sample is assigned exactly once.

    Returns:
        One :class:`ArrayDataset` per user.
    """
    _check_partition_args(dataset, num_users)
    rng = ensure_generator(seed)
    order = rng.permutation(len(dataset))
    splits = np.array_split(order, num_users)
    return [dataset.subset(split) for split in splits]


def shard_noniid_partition(
    dataset: ArrayDataset,
    num_users: int,
    shards_per_user: int = 4,
    seed: SeedLike = None,
) -> List[ArrayDataset]:
    """The paper's label-sorted shard partitioner.

    Samples are sorted by label (ties shuffled), cut into
    ``num_users * shards_per_user`` contiguous shards, and each user is
    dealt ``shards_per_user`` shards at random. Each user therefore sees
    only a few labels — the pathological non-IID regime of McMahan et
    al. [9] that the paper adopts.

    Args:
        dataset: source dataset.
        num_users: number of users.
        shards_per_user: shards dealt to each user (paper: 4).
        seed: deal-order seed.

    Returns:
        One :class:`ArrayDataset` per user.

    Raises:
        PartitionError: if there are fewer samples than shards.
    """
    _check_partition_args(dataset, num_users)
    if shards_per_user <= 0:
        raise PartitionError(
            f"shards_per_user must be positive, got {shards_per_user}"
        )
    total_shards = num_users * shards_per_user
    if len(dataset) < total_shards:
        raise PartitionError(
            f"{len(dataset)} samples cannot fill {total_shards} shards"
        )
    rng = ensure_generator(seed)
    # Shuffle before the stable sort so that same-label ties land in
    # random shards run-to-run (given different seeds).
    order = rng.permutation(len(dataset))
    order = order[np.argsort(dataset.labels[order], kind="stable")]
    shards = np.array_split(order, total_shards)
    shard_ids = rng.permutation(total_shards)
    partitions = []
    for user in range(num_users):
        mine = shard_ids[user * shards_per_user : (user + 1) * shards_per_user]
        indices = np.concatenate([shards[s] for s in mine])
        partitions.append(dataset.subset(indices))
    return partitions


def dirichlet_partition(
    dataset: ArrayDataset,
    num_users: int,
    alpha: float = 0.5,
    min_samples: int = 1,
    seed: SeedLike = None,
    max_retries: int = 100,
) -> List[ArrayDataset]:
    """Label-Dirichlet partitioning (extension beyond the paper).

    For each class, the class's samples are distributed across users
    according to a draw from ``Dirichlet(alpha)``. Small ``alpha``
    yields highly skewed users; large ``alpha`` approaches IID.

    Args:
        dataset: source dataset.
        num_users: number of users.
        alpha: Dirichlet concentration, must be positive.
        min_samples: resample until every user has at least this many.
        seed: draw seed.
        max_retries: resampling attempts before giving up.

    Raises:
        PartitionError: if a valid assignment cannot be drawn.
    """
    _check_partition_args(dataset, num_users)
    if alpha <= 0:
        raise PartitionError(f"alpha must be positive, got {alpha}")
    if min_samples < 0:
        raise PartitionError(f"min_samples must be non-negative, got {min_samples}")
    rng = ensure_generator(seed)
    labels = dataset.labels
    classes = np.unique(labels)
    for _ in range(max_retries):
        user_indices: List[List[int]] = [[] for _ in range(num_users)]
        for cls in classes:
            cls_idx = np.flatnonzero(labels == cls)
            rng.shuffle(cls_idx)
            proportions = rng.dirichlet(np.full(num_users, alpha))
            cuts = (np.cumsum(proportions) * len(cls_idx)).astype(int)[:-1]
            for user, chunk in enumerate(np.split(cls_idx, cuts)):
                user_indices[user].extend(chunk.tolist())
        if all(len(idx) >= min_samples for idx in user_indices):
            return [dataset.subset(idx) for idx in user_indices]
    raise PartitionError(
        f"could not satisfy min_samples={min_samples} for {num_users} users "
        f"after {max_retries} Dirichlet draws (alpha={alpha})"
    )


def partition_label_distribution(
    partitions: List[ArrayDataset], num_classes: int
) -> np.ndarray:
    """Per-user label histograms as a ``(users, classes)`` matrix.

    Useful for verifying partition heterogeneity: each row sums to that
    user's sample count; summing rows recovers the global histogram.
    """
    if num_classes <= 0:
        raise PartitionError(f"num_classes must be positive, got {num_classes}")
    matrix = np.zeros((len(partitions), num_classes), dtype=np.int64)
    for row, part in enumerate(partitions):
        matrix[row] = part.class_counts(num_classes)
    return matrix
