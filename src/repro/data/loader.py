"""Mini-batch loader."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import DataError
from repro.rng import SeedLike, ensure_generator

__all__ = ["BatchLoader"]


class BatchLoader:
    """Re-iterable mini-batch loader over an :class:`ArrayDataset`.

    Each iteration covers the dataset exactly once; with
    ``shuffle=True`` a fresh permutation is drawn per epoch from the
    loader's private generator, so epochs are reproducible given the
    seed.

    Args:
        dataset: source dataset.
        batch_size: samples per batch (last batch may be smaller
            unless ``drop_last``).
        shuffle: reshuffle sample order each epoch.
        drop_last: drop a trailing partial batch.
        seed: seed for the shuffle generator.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = ensure_generator(seed)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        limit = len(self) * self.batch_size if self.drop_last else len(order)
        for start in range(0, limit, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                break
            yield self.dataset.inputs[batch], self.dataset.labels[batch]
