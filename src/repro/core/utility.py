"""The HELCFL utility function (Eq. 20).

For user ``v_q`` with appearance counter ``alpha_q`` and round delay
``T_q = T_q^cal + T_q^com`` (computed at the device's maximum CPU
frequency), the utility is::

    u_q = eta^alpha_q * 1 / (T_q^cal + T_q^com),     0 < eta < 1.

Fast devices start with high utility (short delays), but every
selection increments ``alpha_q`` and multiplies future utility by
``eta`` — so slow devices' data is eventually incorporated, which
Section V-A shows is what lets FL reach high accuracy (the FedAvg
round is equivalent to a centralized mini-batch step on the *union* of
selected users' data, Eq. 19).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError

__all__ = ["decayed_utility", "utility_scores"]


def decayed_utility(
    appearance_count: int,
    compute_delay: float,
    upload_delay: float,
    decay: float,
) -> float:
    """Evaluate Eq. (20) for one user.

    Args:
        appearance_count: ``alpha_q``, times the user has been selected.
        compute_delay: ``T_q^cal`` at the device's max frequency.
        upload_delay: ``T_q^com``.
        decay: the decay coefficient ``eta`` in ``(0, 1)``.

    Returns:
        The utility ``eta^alpha / (T_cal + T_com)``.

    Raises:
        ConfigurationError: for parameters outside their domains.
    """
    if not 0.0 < decay < 1.0:
        raise ConfigurationError(f"decay eta must be in (0, 1), got {decay}")
    if appearance_count < 0:
        raise ConfigurationError(
            f"appearance_count must be non-negative, got {appearance_count}"
        )
    total_delay = compute_delay + upload_delay
    if total_delay <= 0:
        raise ConfigurationError(
            f"total delay must be positive, got {total_delay}"
        )
    return decay**appearance_count / total_delay


def utility_scores(
    devices: Sequence[UserDevice],
    appearance_counts: Mapping[int, int],
    payload_bits: float,
    bandwidth_hz: float,
    decay: float,
) -> Dict[int, float]:
    """Evaluate Eq. (20) for every device (Algorithm 2, lines 8-10).

    Delays are computed at each device's maximum CPU frequency, as
    Algorithm 2 lines 3-4 prescribe.

    Args:
        devices: the population ``V``.
        appearance_counts: ``alpha_q`` per device id (missing ids
            count as 0).
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.
        decay: the decay coefficient ``eta``.

    Returns:
        Mapping from device id to utility.
    """
    scores: Dict[int, float] = {}
    for device in devices:
        scores[device.device_id] = decayed_utility(
            appearance_count=int(appearance_counts.get(device.device_id, 0)),
            compute_delay=device.compute_delay(device.cpu.f_max),
            upload_delay=device.upload_delay(payload_bits, bandwidth_hz),
            decay=decay,
        )
    return scores
