"""The HELCFL utility function (Eq. 20).

For user ``v_q`` with appearance counter ``alpha_q`` and round delay
``T_q = T_q^cal + T_q^com`` (computed at the device's maximum CPU
frequency), the utility is::

    u_q = eta^alpha_q * 1 / (T_q^cal + T_q^com),     0 < eta < 1.

Fast devices start with high utility (short delays), but every
selection increments ``alpha_q`` and multiplies future utility by
``eta`` — so slow devices' data is eventually incorporated, which
Section V-A shows is what lets FL reach high accuracy (the FedAvg
round is equivalent to a centralized mini-batch step on the *union* of
selected users' data, Eq. 19).

:func:`utility_scores` evaluates Eq. (20) for the whole population as
one array expression over a :class:`~repro.devices.DevicePopulation`
(or any device sequence, converted on the fly) and returns an ndarray
aligned with population order. The retired dict-keyed form survives as
the deprecated :func:`utility_scores_by_id` — it is the scalar
object-path oracle the parity tests compare the arrays against, and a
shim for extensions still indexing scores by device id.
"""

from __future__ import annotations

import warnings
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import ConfigurationError

__all__ = ["decayed_utility", "utility_scores", "utility_scores_by_id"]


def decayed_utility(
    appearance_count: int,
    compute_delay: float,
    upload_delay: float,
    decay: float,
) -> float:
    """Evaluate Eq. (20) for one user.

    Args:
        appearance_count: ``alpha_q``, times the user has been selected.
        compute_delay: ``T_q^cal`` at the device's max frequency.
        upload_delay: ``T_q^com``.
        decay: the decay coefficient ``eta`` in ``(0, 1)``.

    Returns:
        The utility ``eta^alpha / (T_cal + T_com)``.

    Raises:
        ConfigurationError: for parameters outside their domains.
    """
    if not 0.0 < decay < 1.0:
        raise ConfigurationError(f"decay eta must be in (0, 1), got {decay}")
    if appearance_count < 0:
        raise ConfigurationError(
            f"appearance_count must be non-negative, got {appearance_count}"
        )
    total_delay = compute_delay + upload_delay
    if total_delay <= 0:
        raise ConfigurationError(
            f"total delay must be positive, got {total_delay}"
        )
    return decay**appearance_count / total_delay


def _as_population(
    devices: Union[DevicePopulation, Sequence[UserDevice]],
) -> DevicePopulation:
    if isinstance(devices, DevicePopulation):
        return devices
    return DevicePopulation.from_devices(devices)


def _alpha_array(
    population: DevicePopulation,
    appearance_counts: Union[Mapping[int, int], np.ndarray],
) -> np.ndarray:
    if isinstance(appearance_counts, np.ndarray):
        alphas = appearance_counts.astype(np.int64, copy=False)
        if alphas.shape != population.device_ids.shape:
            raise ConfigurationError(
                f"appearance_counts array has shape {alphas.shape}, "
                f"expected {population.device_ids.shape}"
            )
    else:
        alphas = np.fromiter(
            (
                int(appearance_counts.get(device_id, 0))
                for device_id in population.device_ids.tolist()
            ),
            dtype=np.int64,
            count=len(population),
        )
    if np.any(alphas < 0):
        raise ConfigurationError("appearance counts must be non-negative")
    return alphas


def decay_powers(decay: float, alphas: np.ndarray) -> np.ndarray:
    """``eta^alpha`` per device, bitwise-equal to Python's scalar ``**``.

    Counters repeat heavily across a fleet, so the powers are evaluated
    once per distinct ``alpha`` with Python's scalar ``**`` (the object
    path's exact operation) and broadcast back — exactness by
    construction rather than by trusting a numpy pow kernel.
    """
    unique, inverse = np.unique(alphas, return_inverse=True)
    table = np.fromiter(
        (decay ** int(value) for value in unique),
        dtype=np.float64,
        count=unique.shape[0],
    )
    return table[inverse]


def utility_scores(
    devices: Union[DevicePopulation, Sequence[UserDevice]],
    appearance_counts: Union[Mapping[int, int], np.ndarray],
    payload_bits: float,
    bandwidth_hz: float,
    decay: float,
) -> np.ndarray:
    """Evaluate Eq. (20) for every device (Algorithm 2, lines 8-10).

    Delays are computed at each device's maximum CPU frequency, as
    Algorithm 2 lines 3-4 prescribe. The whole population is evaluated
    as one array expression.

    Args:
        devices: the population ``V`` — a
            :class:`~repro.devices.DevicePopulation` (preferred at
            scale) or a device sequence (converted on the fly).
        appearance_counts: ``alpha_q`` — either a mapping from device
            id (missing ids count as 0) or an int array aligned with
            population order.
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.
        decay: the decay coefficient ``eta``.

    Returns:
        Utilities as a float64 ndarray aligned with population order
        (position ``q`` scores ``population.device_ids[q]``).
    """
    if not 0.0 < decay < 1.0:
        raise ConfigurationError(f"decay eta must be in (0, 1), got {decay}")
    if not isinstance(devices, DevicePopulation) and len(devices) == 0:
        return np.empty(0, dtype=np.float64)
    population = _as_population(devices)
    alphas = _alpha_array(population, appearance_counts)
    total_delay = population.compute_delay() + population.upload_delay(
        payload_bits, bandwidth_hz
    )
    if np.any(total_delay <= 0):
        raise ConfigurationError("total delay must be positive")
    return decay_powers(decay, alphas) / total_delay


def utility_scores_by_id(
    devices: Sequence[UserDevice],
    appearance_counts: Mapping[int, int],
    payload_bits: float,
    bandwidth_hz: float,
    decay: float,
) -> Dict[int, float]:
    """Deprecated dict-keyed Eq. (20): use :func:`utility_scores`.

    Kept as the scalar object-path oracle for the population parity
    tests and as a shim for extensions that index scores by device id.

    Returns:
        Mapping from device id to utility.
    """
    warnings.warn(
        "utility_scores_by_id() is deprecated; use utility_scores(), "
        "which returns an ndarray aligned with population order",
        DeprecationWarning,
        stacklevel=2,
    )
    return _object_utility_scores(
        devices, appearance_counts, payload_bits, bandwidth_hz, decay
    )


def _object_utility_scores(
    devices: Sequence[UserDevice],
    appearance_counts: Mapping[int, int],
    payload_bits: float,
    bandwidth_hz: float,
    decay: float,
) -> Dict[int, float]:
    """The original per-device scalar loop (bitwise parity oracle)."""
    scores: Dict[int, float] = {}
    for device in devices:  # repro: allow[REP006] scalar oracle the parity tests diff the array path against
        scores[device.device_id] = decayed_utility(
            appearance_count=int(appearance_counts.get(device.device_id, 0)),
            compute_delay=device.compute_delay(device.cpu.f_max),
            upload_delay=device.upload_delay(payload_bits, bandwidth_hz),
            decay=decay,
        )
    return scores
