"""Algorithm 3 — DVFS-enabled operating frequency determination.

The selected users are sorted by their max-frequency compute delays.
The first (fastest) user has no slack and runs at ``f_max``. Every
subsequent user's frequency is lowered so its local update completes
exactly when the previous user's upload completes::

    f_{q+1} = pi * |D_{q+1}| / T_q,    T_q = T_q^cal(f_q) + T_q^com

(the paper's line 9 with Eq. 9). By induction ``T_q`` equals user
``q``'s upload-completion time measured from the round start, so each
user's compute lands exactly at its channel-grant instant and the
quadratic compute energy (Eq. 5) shrinks without delaying the round.

Practical guards the paper leaves implicit:

* the target frequency is clamped into ``[f_min, f_max]`` — a user that
  cannot finish by the previous upload's end even at ``f_max`` simply
  runs at ``f_max`` (it will wait less or queue), and a user with huge
  slack is floored at ``f_min``;
* on CPUs with discrete DVFS ladders the frequency is rounded *up* to
  the next level so the schedule stays feasible.

With clamping, the recursion tracks the *actual* upload-finish time
(computed via the true queueing dynamics) rather than the idealized
``T_q``, so the assignment stays optimal when clamps bind.

:func:`determine_frequencies_population` is the population-scale form:
the O(Q) inputs of the recursion — Eq. (4) delays at ``f_max``, the
sort, Eq. (7) upload delays — are array expressions over a
:class:`~repro.devices.DevicePopulation`, and only the inherently
sequential Eq. (9) prefix scan over the sorted delay chain runs as a
scalar loop (its operation order is the bitwise contract with the
object path, and it is O(N selected), not O(Q)).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import ConfigurationError, SelectionError
from repro.fl.strategy import FrequencyPolicy

__all__ = [
    "determine_frequencies",
    "determine_frequencies_population",
    "HelcflDvfsPolicy",
]

_QUANTIZE_EPS = 1e-12  # DvfsCpu.quantize's round-up tolerance


def _check_modes(clamp: bool, quantize: bool) -> None:
    if quantize and not clamp:
        raise ConfigurationError(
            "quantize=True requires clamp=True: DVFS ladders only cover "
            "[f_min, f_max], which the unclamped recursion may leave"
        )


def determine_frequencies(
    selected: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    clamp: bool = True,
    quantize: bool = False,
) -> Dict[int, float]:
    """Run Algorithm 3 on the selected user set (object path).

    This is the scalar per-device form, kept as the bitwise parity
    oracle for :func:`determine_frequencies_population` (which the
    trainer uses); both produce identical frequencies.

    Args:
        selected: the round's selected user set ``Gamma_j``.
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: uplink resource blocks ``Z`` in Hz.
        clamp: clamp each derived frequency into the device's
            ``[f_min, f_max]`` (True for real devices; False reproduces
            the paper's idealized unclamped recursion and may return
            out-of-range frequencies).
        quantize: additionally snap frequencies up onto each device's
            discrete DVFS ladder when it has one.

    Returns:
        Mapping from device id to its determined operating frequency.

    Raises:
        SelectionError: for an empty selection.
        ConfigurationError: for ``quantize=True`` with ``clamp=False``
            — ladder quantization snaps onto levels inside
            ``[f_min, f_max]``, which the unclamped idealized recursion
            may leave, so the combination is incoherent.
    """
    _check_modes(clamp, quantize)
    if not selected:
        raise SelectionError("cannot determine frequencies for no devices")

    # Line 1: ascending max-frequency compute delay (ties by id).
    ordered = sorted(
        selected,
        key=lambda d: (d.compute_delay(d.cpu.f_max), d.device_id),
    )

    frequencies: Dict[int, float] = {}
    previous_finish = 0.0
    for position, device in enumerate(ordered):  # repro: allow[REP006] scalar oracle the parity tests diff the vector path against
        if position == 0:
            # Lines 3-4: the first user has no slack.
            freq = device.cpu.f_max
        else:
            # Line 9: finish computing when the previous upload ends.
            target = device.frequency_for_compute_delay(previous_finish)
            if clamp:
                freq = device.cpu.clamp(target)
            else:
                freq = target
        if quantize:
            freq = device.cpu.quantize(freq)
        frequencies[device.device_id] = freq

        # Line 8 generalized: the user's actual upload-finish time under
        # FIFO channel queueing. Without clamping this reduces to the
        # paper's T_q = T_q^cal + T_q^com exactly (compute lands at the
        # previous finish, so upload_start == compute_end).
        compute_end = device.cpu.cycles_for(device.num_samples) / freq
        upload_start = max(compute_end, previous_finish)
        previous_finish = upload_start + device.upload_delay(
            payload_bits, bandwidth_hz
        )
    return frequencies


def determine_frequencies_population(
    population: DevicePopulation,
    payload_bits: float,
    bandwidth_hz: float,
    clamp: bool = True,
    quantize: bool = False,
) -> np.ndarray:
    """Run Algorithm 3 over a selected-set population slice.

    Array form of :func:`determine_frequencies`: Eq. (4) delays, the
    (delay, id) sort, and Eq. (7) upload delays are vectorized; the
    Eq. (9) finish-time recursion walks the sorted chain with the exact
    scalar operation order of the object path, so results are bitwise
    identical.

    Args:
        population: the selected set ``Gamma_j`` as a population slice
            (e.g. ``fleet_population.take(selected_positions)``).
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: uplink resource blocks ``Z`` in Hz.
        clamp: as in :func:`determine_frequencies`.
        quantize: as in :func:`determine_frequencies`.

    Returns:
        Operating frequencies as a float64 ndarray aligned with
        ``population`` order (position ``q`` serves
        ``population.device_ids[q]``).
    """
    _check_modes(clamp, quantize)
    size = len(population)
    delay_fmax = population.compute_delay()
    order = np.lexsort((population.device_ids, delay_fmax))
    upload = population.upload_delay(payload_bits, bandwidth_hz)

    # Scalar chain state, pulled out of numpy so every +-*/ below is
    # the same CPython float op the object path performs.
    cycles = population.cycles[order].tolist()
    f_min = population.f_min[order].tolist()
    f_max = population.f_max[order].tolist()
    uploads = upload[order].tolist()
    ladder = population.ladder
    ladder_rows = population.ladder_sizes[order].tolist() if ladder is not None else None

    assigned = np.empty(size, dtype=np.float64)
    previous_finish = 0.0
    for rank in range(size):
        if rank == 0:
            freq = f_max[0]
        else:
            target = cycles[rank] / previous_finish
            if clamp:
                freq = min(max(target, f_min[rank]), f_max[rank])
            else:
                freq = target
        if quantize:
            freq = min(max(freq, f_min[rank]), f_max[rank])
            width = ladder_rows[rank] if ladder_rows is not None else 0
            if width:
                row = ladder[order[rank], :width]
                idx = int(np.searchsorted(row, freq - _QUANTIZE_EPS))
                freq = float(row[min(idx, width - 1)])
        assigned[order[rank]] = freq
        compute_end = cycles[rank] / freq
        upload_start = max(compute_end, previous_finish)
        previous_finish = upload_start + uploads[rank]
    return assigned


class HelcflDvfsPolicy(FrequencyPolicy):
    """Algorithm 3 packaged as a :class:`FrequencyPolicy`.

    Args:
        clamp: see :func:`determine_frequencies`; policies used inside
            a real trainer must clamp (the TDMA simulator validates
            frequencies against device ranges).
        quantize: snap onto discrete DVFS ladders when present.
    """

    def __init__(self, clamp: bool = True, quantize: bool = False) -> None:
        _check_modes(clamp, quantize)
        self.clamp = bool(clamp)
        self.quantize = bool(quantize)

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
        population: Optional[DevicePopulation] = None,
    ) -> Dict[int, float]:
        del round_index  # Algorithm 3 is stateless across rounds.
        if population is not None:
            assigned = determine_frequencies_population(
                population,
                payload_bits,
                bandwidth_hz,
                clamp=self.clamp,
                quantize=self.quantize,
            )
            # Keyed in ascending (delay, id) chain order, matching the
            # object path's insertion order byte-for-byte in traces.
            order = np.lexsort(
                (population.device_ids, population.compute_delay())
            )
            ids = population.device_ids[order].tolist()
            return {
                device_id: float(assigned[position])
                for device_id, position in zip(ids, order.tolist())
            }
        return determine_frequencies(
            selected,
            payload_bits,
            bandwidth_hz,
            clamp=self.clamp,
            quantize=self.quantize,
        )
