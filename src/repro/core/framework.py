"""Algorithm 1 — the assembled HELCFL framework.

HELCFL is the composition of three pieces this package implements:

1. greedy-decay user selection (Algorithm 2),
2. DVFS frequency determination (Algorithm 3),
3. the synchronous FedAvg round loop (Algorithm 1's lines 5-10,
   provided by :class:`~repro.fl.trainer.FederatedTrainer`).

:func:`build_helcfl_trainer` wires them together; calling ``run()`` on
the result executes the full framework.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.frequency import HelcflDvfsPolicy
from repro.core.selection import GreedyDecaySelection
from repro.devices.device import UserDevice
from repro.fl.server import FederatedServer
from repro.fl.trainer import FederatedTrainer, TrainerConfig

__all__ = ["build_helcfl_trainer"]


def build_helcfl_trainer(
    server: FederatedServer,
    devices: Sequence[UserDevice],
    fraction: float = 0.1,
    decay: float = 0.7,
    config: Optional[TrainerConfig] = None,
    dvfs: bool = True,
    quantize: bool = False,
    label: str = "HELCFL",
) -> FederatedTrainer:
    """Assemble a ready-to-run HELCFL trainer (Algorithm 1).

    Args:
        server: the FLCC holding the global model and test set.
        devices: the user population ``V``.
        fraction: selection fraction ``C`` (paper: 0.1).
        decay: utility decay coefficient ``eta`` in ``(0, 1)``.
        config: trainer configuration (rounds, bandwidth, LR, ...).
        dvfs: apply Algorithm 3 (True) or run all devices at max
            frequency (False) — the ablation of Fig. 3.
        quantize: snap Algorithm 3's frequencies onto discrete DVFS
            ladders when devices define them.
        label: history label.

    Returns:
        A configured :class:`~repro.fl.trainer.FederatedTrainer`.
    """
    config = config or TrainerConfig()
    selection = GreedyDecaySelection(
        fraction=fraction,
        decay=decay,
        payload_bits=server.payload_bits,
        bandwidth_hz=config.bandwidth_hz,
    )
    policy = HelcflDvfsPolicy(quantize=quantize) if dvfs else None
    return FederatedTrainer(
        server=server,
        devices=devices,
        selection=selection,
        frequency_policy=policy,
        config=config,
        label=label,
    )
