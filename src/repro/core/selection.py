"""Algorithm 2 — utility-driven greedy-decay user selection.

Each round, the strategy scores every user with Eq. (20) and greedily
takes the top ``N = max(Q*C, 1)`` utilities. Selected users' appearance
counters are incremented (Algorithm 2, line 18), decaying their utility
for future rounds. Ties are broken deterministically by device id so
runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.utility import utility_scores
from repro.devices.device import UserDevice
from repro.errors import ConfigurationError
from repro.fl.strategy import SelectionStrategy, selection_count

__all__ = ["GreedyDecaySelection"]


class GreedyDecaySelection(SelectionStrategy):
    """HELCFL's utility-driven greedy-decay selection (Algorithm 2).

    Args:
        fraction: selection fraction ``C`` in ``(0, 1]`` (paper: 0.1).
        decay: decay coefficient ``eta`` in ``(0, 1)``.
        payload_bits: model payload ``C_model``, needed because the
            utility depends on upload delay.
        bandwidth_hz: uplink resource blocks ``Z``.

    Attributes:
        appearance_counts: the live ``alpha_q`` counters, exposed for
            inspection and testing.
    """

    def __init__(
        self,
        fraction: float,
        decay: float,
        payload_bits: float,
        bandwidth_hz: float,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        if payload_bits <= 0 or bandwidth_hz <= 0:
            raise ConfigurationError(
                "payload_bits and bandwidth_hz must be positive, got "
                f"{payload_bits} and {bandwidth_hz}"
            )
        self.fraction = float(fraction)
        self.decay = float(decay)
        self.payload_bits = float(payload_bits)
        self.bandwidth_hz = float(bandwidth_hz)
        self.appearance_counts: Dict[int, int] = {}

    def reset(self) -> None:
        """Zero every appearance counter (Algorithm 2, line 5)."""
        self.appearance_counts.clear()

    def scores(self, devices: Sequence[UserDevice]) -> Dict[int, float]:
        """Current Eq. (20) utilities for ``devices`` (no side effects)."""
        return utility_scores(
            devices,
            self.appearance_counts,
            self.payload_bits,
            self.bandwidth_hz,
            self.decay,
        )

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        """Select the top-``N`` users by utility and decay them.

        Note: because a user's utility does not change *within* a
        round's selection loop (its counter is bumped only once it is
        selected, and each user can be selected at most once), taking
        the top-``N`` scores in one pass is exactly equivalent to
        Algorithm 2's iterative argmax-and-remove loop (lines 14-19).
        """
        del round_index
        self._check_population(devices)
        scores = self.scores(devices)
        count = selection_count(len(devices), self.fraction)
        # Sort by descending utility, ties by ascending device id.
        ranked = sorted(
            devices, key=lambda d: (-scores[d.device_id], d.device_id)
        )
        selected = ranked[:count]
        for device in selected:
            self.appearance_counts[device.device_id] = (
                self.appearance_counts.get(device.device_id, 0) + 1
            )
        return selected

    def __repr__(self) -> str:
        return (
            f"GreedyDecaySelection(C={self.fraction}, eta={self.decay})"
        )
