"""Algorithm 2 — utility-driven greedy-decay user selection.

Each round, the strategy scores every user with Eq. (20) and greedily
takes the top ``N = max(Q*C, 1)`` utilities. Selected users' appearance
counters are incremented (Algorithm 2, line 18), decaying their utility
for future rounds. Ties are broken deterministically by device id so
runs are reproducible.

The ranking itself runs over a :class:`~repro.devices.DevicePopulation`
as an O(Q) value-partition (``np.argpartition`` via ``np.partition`` of
the N-th largest score) instead of a full sort, with an optional
*sharded* path for very large fleets: rank the top-N inside each shard,
merge the per-shard candidates, and re-rank — any globally top-N user
is top-N within its own shard under the same (score, id) order, so the
merge is exact, and peak working memory per ranking step drops to the
shard size. Both paths reproduce the object-path ranking — descending
utility, ties by ascending device id — bit for bit.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.utility import _object_utility_scores, utility_scores
from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import ConfigurationError
from repro.fl.strategy import SelectionStrategy, selection_count

__all__ = ["GreedyDecaySelection", "top_utility_positions"]


def top_utility_positions(
    scores: np.ndarray,
    device_ids: np.ndarray,
    count: int,
    shard_size: Optional[int] = None,
) -> np.ndarray:
    """Positions of the ``count`` best (score desc, id asc) entries.

    The returned positions are in ranked order — exactly the order the
    object path's ``sorted(key=(-score, id))[:count]`` produces.

    Args:
        scores: per-device utilities, aligned with ``device_ids``.
        device_ids: unique device ids (the deterministic tie-break).
        count: how many to take (must not exceed the population).
        shard_size: when set, rank within shards of this many devices
            and merge the per-shard winners before the final ranking —
            same result, bounded per-step working set.
    """
    size = scores.shape[0]
    if count > size:
        raise ConfigurationError(
            f"cannot take top {count} of {size} devices"
        )
    if shard_size is not None and shard_size < 1:
        raise ConfigurationError(
            f"shard_size must be positive, got {shard_size}"
        )
    if shard_size is None or shard_size >= size:
        return _exact_top(scores, device_ids, count)
    candidates = []
    for start in range(0, size, shard_size):
        stop = min(start + shard_size, size)
        take = min(count, stop - start)
        local = _exact_top(scores[start:stop], device_ids[start:stop], take)
        candidates.append(local + start)
    merged = np.concatenate(candidates)
    best = _exact_top(scores[merged], device_ids[merged], count)
    return merged[best]


def _exact_top(
    scores: np.ndarray, device_ids: np.ndarray, count: int
) -> np.ndarray:
    """Exact top-``count`` positions under (score desc, id asc)."""
    size = scores.shape[0]
    if count >= size:
        return np.lexsort((device_ids, -scores))
    # The count-th largest value bounds the winners: everything
    # strictly above it is in, the remaining slots go to the smallest
    # ids among the entries equal to it.
    kth = np.partition(scores, size - count)[size - count]
    above = np.flatnonzero(scores > kth)
    need = count - above.shape[0]
    if need > 0:
        ties = np.flatnonzero(scores == kth)
        ties = ties[np.argsort(device_ids[ties])][:need]
        chosen = np.concatenate((above, ties))
    else:
        chosen = above
    order = np.lexsort((device_ids[chosen], -scores[chosen]))
    return chosen[order]


class GreedyDecaySelection(SelectionStrategy):
    """HELCFL's utility-driven greedy-decay selection (Algorithm 2).

    Args:
        fraction: selection fraction ``C`` in ``(0, 1]`` (paper: 0.1).
        decay: decay coefficient ``eta`` in ``(0, 1)``.
        payload_bits: model payload ``C_model``, needed because the
            utility depends on upload delay.
        bandwidth_hz: uplink resource blocks ``Z``.
        shard_size: optional shard width for the sharded ranking path
            (see :func:`top_utility_positions`); None ranks the whole
            population at once.

    Attributes:
        appearance_counts: the live ``alpha_q`` counters keyed by
            device id, exposed for inspection and testing. A
            population-aligned int array mirror is maintained
            internally so scoring never loops over the dict.
    """

    def __init__(
        self,
        fraction: float,
        decay: float,
        payload_bits: float,
        bandwidth_hz: float,
        shard_size: Optional[int] = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        if payload_bits <= 0 or bandwidth_hz <= 0:
            raise ConfigurationError(
                "payload_bits and bandwidth_hz must be positive, got "
                f"{payload_bits} and {bandwidth_hz}"
            )
        if shard_size is not None and shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be positive when set, got {shard_size}"
            )
        self.fraction = float(fraction)
        self.decay = float(decay)
        self.payload_bits = float(payload_bits)
        self.bandwidth_hz = float(bandwidth_hz)
        self.shard_size = shard_size
        self.appearance_counts: Dict[int, int] = {}
        self._alpha: Optional[np.ndarray] = None
        self._alpha_ids: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Zero every appearance counter (Algorithm 2, line 5)."""
        self.appearance_counts.clear()
        self._alpha = None
        self._alpha_ids = None

    def state_dict(self) -> Dict:
        """Checkpoint snapshot: the ``alpha_q`` counters (JSON keys)."""
        return {
            "appearance_counts": {
                str(device_id): count
                for device_id, count in sorted(self.appearance_counts.items())
            }
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore the counters; the array mirror rebuilds lazily."""
        self.appearance_counts = {
            int(device_id): int(count)
            for device_id, count in state.get("appearance_counts", {}).items()
        }
        self._alpha = None
        self._alpha_ids = None

    def _alpha_for(self, population: DevicePopulation) -> np.ndarray:
        """Population-aligned ``alpha_q`` array (cached between rounds)."""
        ids = population.device_ids
        if self._alpha is None or not np.array_equal(self._alpha_ids, ids):
            self._alpha = np.fromiter(
                (
                    self.appearance_counts.get(device_id, 0)
                    for device_id in ids.tolist()
                ),
                dtype=np.int64,
                count=len(population),
            )
            self._alpha_ids = ids.copy()
        return self._alpha

    def scores(
        self, devices: Union[DevicePopulation, Sequence[UserDevice]]
    ) -> np.ndarray:
        """Current Eq. (20) utilities, aligned with population order.

        No side effects. Accepts a :class:`DevicePopulation` directly
        (preferred at scale) or any device sequence.
        """
        if isinstance(devices, DevicePopulation):
            counts: Union[Dict[int, int], np.ndarray] = self._alpha_for(devices)
        else:
            counts = self.appearance_counts
        return utility_scores(
            devices,
            counts,
            self.payload_bits,
            self.bandwidth_hz,
            self.decay,
        )

    def scores_by_id(
        self, devices: Sequence[UserDevice]
    ) -> Dict[int, float]:
        """Deprecated dict-keyed scores: use :meth:`scores`.

        Shim for callers that still index utilities by device id; the
        values come from the original scalar object path.
        """
        warnings.warn(
            "GreedyDecaySelection.scores_by_id() is deprecated; use "
            "scores(), which returns an ndarray aligned with "
            "population order",
            DeprecationWarning,
            stacklevel=2,
        )
        return _object_utility_scores(
            devices,
            self.appearance_counts,
            self.payload_bits,
            self.bandwidth_hz,
            self.decay,
        )

    def select_population(
        self, round_index: int, population: DevicePopulation
    ) -> np.ndarray:
        """Vector path: select and decay, returning ranked positions."""
        del round_index
        scores = self.scores(population)
        count = selection_count(len(population), self.fraction)
        positions = top_utility_positions(
            scores, population.device_ids, count, self.shard_size
        )
        # Algorithm 2 line 18: bump the winners' counters — in the dict
        # (the documented source of truth) and the aligned mirror.
        alpha = self._alpha_for(population)
        alpha[positions] += 1
        for device_id in population.device_ids[positions].tolist():
            self.appearance_counts[device_id] = (
                self.appearance_counts.get(device_id, 0) + 1
            )
        return positions

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        """Select the top-``N`` users by utility and decay them.

        Thin adapter over :meth:`select_population`: snapshots the
        sequence into a :class:`DevicePopulation` and maps the ranked
        positions back to the objects.

        Note: because a user's utility does not change *within* a
        round's selection loop (its counter is bumped only once it is
        selected, and each user can be selected at most once), taking
        the top-``N`` scores in one pass is exactly equivalent to
        Algorithm 2's iterative argmax-and-remove loop (lines 14-19).
        """
        self._check_population(devices)
        positions = self.select_population(
            round_index, DevicePopulation.from_devices(devices)
        )
        return [devices[position] for position in positions.tolist()]

    def __repr__(self) -> str:
        shard = f", shard_size={self.shard_size}" if self.shard_size else ""
        return (
            f"GreedyDecaySelection(C={self.fraction}, eta={self.decay}{shard})"
        )
