"""Slack-time analysis (Section VI-A, Fig. 1).

Quantifies the energy-waste observation that motivates Algorithm 3: in
traditional max-frequency TDMA FL, users that finish computing while
the channel is busy sit idle, and the cycles they rushed through at
``f_max`` were wasted energy. :func:`analyze_slack` compares the
max-frequency timeline against any alternative frequency assignment
and reports per-user slack, energy, and the reclaimed totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.devices.device import UserDevice
from repro.network.tdma import RoundTimeline, simulate_tdma_round

__all__ = ["SlackReport", "analyze_slack"]


@dataclass(frozen=True)
class SlackReport:
    """Comparison of a frequency assignment against max-frequency TDMA.

    Attributes:
        baseline: the all-``f_max`` round timeline.
        optimized: the timeline under the evaluated assignment.
        energy_saving: joules saved versus the baseline (positive is
            better).
        energy_saving_fraction: saving as a fraction of baseline
            energy.
        slack_reclaimed: reduction in total idle wait (seconds).
        delay_overhead: extra round delay introduced (0 for Algorithm 3
            with clamping; tests assert it stays ~0).
    """

    baseline: RoundTimeline
    optimized: RoundTimeline
    energy_saving: float
    energy_saving_fraction: float
    slack_reclaimed: float
    delay_overhead: float

    def per_user_slack(self) -> Dict[int, Tuple[float, float]]:
        """Per-device ``(baseline slack, optimized slack)`` pairs."""
        base = self.baseline.by_device()
        opt = self.optimized.by_device()
        return {
            device_id: (base[device_id].slack, opt[device_id].slack)
            for device_id in base
        }


def analyze_slack(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Optional[Dict[int, float]] = None,
) -> SlackReport:
    """Measure the slack/energy effect of a frequency assignment.

    Args:
        devices: the selected user set.
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.
        frequencies: the assignment to evaluate; defaults to
            Algorithm 3's output (import-light lazy call).

    Returns:
        A :class:`SlackReport` contrasting the assignment with the
        all-max-frequency baseline.
    """
    if frequencies is None:
        from repro.core.frequency import determine_frequencies

        frequencies = determine_frequencies(devices, payload_bits, bandwidth_hz)

    baseline = simulate_tdma_round(devices, payload_bits, bandwidth_hz)
    optimized = simulate_tdma_round(
        devices, payload_bits, bandwidth_hz, frequencies
    )
    saving = baseline.total_energy - optimized.total_energy
    fraction = saving / baseline.total_energy if baseline.total_energy > 0 else 0.0
    return SlackReport(
        baseline=baseline,
        optimized=optimized,
        energy_saving=saving,
        energy_saving_fraction=fraction,
        slack_reclaimed=baseline.total_slack - optimized.total_slack,
        delay_overhead=optimized.round_delay - baseline.round_delay,
    )
