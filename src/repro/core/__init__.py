"""The paper's primary contribution.

* :mod:`repro.core.utility` — the utility function of Eq. (20);
* :mod:`repro.core.selection` — Algorithm 2, utility-driven
  greedy-decay user selection;
* :mod:`repro.core.frequency` — Algorithm 3, DVFS-enabled operating
  frequency determination;
* :mod:`repro.core.slack` — slack-time analysis (Section VI-A, Fig. 1);
* :mod:`repro.core.framework` — Algorithm 1, the assembled HELCFL
  trainer.
"""

from repro.core.frequency import (
    HelcflDvfsPolicy,
    determine_frequencies,
    determine_frequencies_population,
)
from repro.core.framework import build_helcfl_trainer
from repro.core.selection import GreedyDecaySelection, top_utility_positions
from repro.core.slack import SlackReport, analyze_slack
from repro.core.utility import (
    decayed_utility,
    utility_scores,
    utility_scores_by_id,
)

__all__ = [
    "decayed_utility",
    "utility_scores",
    "utility_scores_by_id",
    "GreedyDecaySelection",
    "top_utility_positions",
    "determine_frequencies",
    "determine_frequencies_population",
    "HelcflDvfsPolicy",
    "SlackReport",
    "analyze_slack",
    "build_helcfl_trainer",
]
