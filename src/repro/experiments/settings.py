"""Experiment settings.

The paper's Section VII-A settings are: 100 users; per-user maximum
CPU frequency uniform over (0.3, 2.0) GHz with a common 0.3 GHz floor;
``alpha = 2e-28`` (printed as ``2e28``, an evident typo — see
DESIGN.md); ``pi = 1e7`` cycles/sample; ``Z = 2 MHz``; transmit power
0.2 W; selection fraction ``C = 0.1``; SqueezeNet on CIFAR-10 (IID and
label-shard non-IID); 300 training rounds.

This reproduction defaults to a *scaled profile*: the synthetic
dataset is smaller than CIFAR-10 (faster offline simulation) and the
communication payload defaults to a value that keeps upload delay
comparable to compute delay — the regime the paper's Fig. 1 slack
analysis lives in. All knobs are explicit, so the full-scale values
can be restored by constructing :meth:`ExperimentSettings.paper_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.data.dataset import ArrayDataset
from repro.data.partition import iid_partition, shard_noniid_partition
from repro.data.synthetic import SyntheticImageTask, make_synthetic_image_task
from repro.devices.fleet import FleetSpec
from repro.errors import ConfigurationError
from repro.fl.trainer import TrainerConfig
from repro.nn.architectures import build_cnn, build_mlp, build_mini_squeezenet
from repro.nn.model import Sequential
from repro.rng import derive_seed

__all__ = ["ExperimentSettings"]


@dataclass
class ExperimentSettings:
    """Every knob of one reproduction experiment.

    Attributes mirror Section VII-A; see module docstring for the
    scaled-profile rationale.

    Attributes:
        num_users: population size ``Q`` (paper: 100).
        fraction: selection fraction ``C`` (paper: 0.1).
        decay: HELCFL decay coefficient ``eta`` (paper gives the range
            ``0 < eta < 1``; 0.7 is this reproduction's default, see
            the eta ablation bench).
        rounds: maximum FL iterations ``J`` (paper: 300).
        bandwidth_hz: uplink resource blocks ``Z`` (paper: 2 MHz).
        payload_bits: model payload ``C_model``. The default keeps
            upload delay comparable to compute delay at the scaled
            dataset size; ``paper_scale()`` uses a SqueezeNet-sized
            payload.
        transmit_power_w: uplink power ``p`` (paper: 0.2 W).
        noise_power_w: background noise ``N0``.
        channel_gain: common amplitude channel gain ``h``.
        cycles_per_sample: the paper's ``pi``. The paper uses 1e7 with
            ~500 samples per user (CIFAR-10 across 100 users); the
            scaled profile holds the per-round workload ``pi * |D_q|``
            at the paper's 5e9 cycles by scaling ``pi`` up by the same
            12.5x factor the dataset is scaled down by (1.25e8 with 40
            samples per user). ``paper_scale()`` restores 1e7.
        switched_capacitance: the paper's ``alpha`` (2e-28).
        f_min_hz / f_max_low_hz / f_max_high_hz: DVFS range parameters
            (paper: 0.3 GHz floor, ``f_max ~ U(0.3, 2.0) GHz``).
        train_size / test_size: synthetic dataset sizes.
        num_classes: synthetic class count (CIFAR-10: 10).
        image_shape: synthetic CHW image shape.
        class_separation / within_class_std / noise_std: synthetic task
            difficulty (see :mod:`repro.data.synthetic`).
        shards_per_user: non-IID shards per user (paper: 4).
        noniid_kind: which non-IID partitioner ``build_partitions``
            uses — ``"shard"`` (the paper's label-sorted shards) or
            ``"dirichlet"`` (the modern benchmark extension).
        dirichlet_alpha: concentration for ``noniid_kind="dirichlet"``.
        model: architecture name — ``"mlp"``, ``"cnn"``, or
            ``"squeezenet"``.
        learning_rate: local GD rate ``tau``.
        local_steps: local GD steps per round (paper: 1).
        eval_every: evaluation cadence in rounds.
        fedcs_target_count: users the FedCS deadline should fit;
            ``None`` uses ``max(Q * C, 1)`` for a fair comparison.
        fedcs_candidate_fraction: fraction of users FedCS polls for
            resources each round (its resource-request step); ``None``
            polls everyone.
        fedl_kappa: FEDL's delay price (joules/second).
        seed: master seed; all component seeds derive from it.
    """

    num_users: int = 100
    fraction: float = 0.1
    decay: float = 0.9
    rounds: int = 300
    bandwidth_hz: float = 2e6
    payload_bits: float = 5e6
    transmit_power_w: float = 0.2
    noise_power_w: float = 1e-2
    channel_gain: float = 1.0
    cycles_per_sample: float = 1.25e8
    switched_capacitance: float = 2e-28
    f_min_hz: float = 0.3e9
    f_max_low_hz: float = 0.3e9
    f_max_high_hz: float = 2.0e9
    train_size: int = 4000
    test_size: int = 1000
    num_classes: int = 10
    image_shape: Tuple[int, int, int] = (3, 8, 8)
    class_separation: float = 0.6
    within_class_std: float = 1.4
    noise_std: float = 2.2
    shards_per_user: int = 4
    noniid_kind: str = "shard"
    dirichlet_alpha: float = 0.5
    model: str = "mlp"
    learning_rate: float = 0.3
    local_steps: int = 1
    eval_every: int = 1
    fedcs_target_count: Optional[int] = None
    fedcs_candidate_fraction: Optional[float] = 0.3
    fedl_kappa: float = 0.2
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ConfigurationError(
                f"num_users must be positive, got {self.num_users}"
            )
        if self.model not in ("mlp", "cnn", "squeezenet"):
            raise ConfigurationError(
                f"model must be one of mlp/cnn/squeezenet, got {self.model!r}"
            )
        if self.noniid_kind not in ("shard", "dirichlet"):
            raise ConfigurationError(
                f"noniid_kind must be 'shard' or 'dirichlet', got "
                f"{self.noniid_kind!r}"
            )
        if self.dirichlet_alpha <= 0:
            raise ConfigurationError(
                f"dirichlet_alpha must be positive, got {self.dirichlet_alpha}"
            )
        if self.train_size < self.num_users * self.shards_per_user:
            raise ConfigurationError(
                "train_size must cover num_users * shards_per_user samples "
                f"for the non-IID partitioner, got {self.train_size} < "
                f"{self.num_users * self.shards_per_user}"
            )

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides) -> ExperimentSettings:
        """Settings at the paper's full scale.

        CIFAR-10-sized dataset (50 000 / 10 000) and a SqueezeNet-sized
        payload (~1.25 M parameters at 32 bits). Running actual
        training at this scale is slow offline; this profile chiefly
        serves cost-model analyses, which need no training.
        """
        base = cls(
            train_size=50_000,
            test_size=10_000,
            payload_bits=1.25e6 * 32,
            cycles_per_sample=1e7,
            model="squeezenet",
        )
        return replace(base, **overrides)

    @classmethod
    def quick(cls, **overrides) -> ExperimentSettings:
        """A small fast profile for tests: 20 users, 30 rounds."""
        base = cls(
            num_users=20,
            rounds=30,
            train_size=800,
            test_size=200,
            eval_every=2,
        )
        return replace(base, **overrides)

    # ------------------------------------------------------------------
    # Derived builders
    # ------------------------------------------------------------------
    @property
    def selected_per_round(self) -> int:
        """``N = max(Q * C, 1)``."""
        return min(self.num_users, max(int(self.num_users * self.fraction), 1))

    def fleet_spec(self) -> FleetSpec:
        """Device-population spec for :func:`repro.devices.make_fleet`."""
        return FleetSpec(
            f_min_hz=self.f_min_hz,
            f_max_low_hz=self.f_max_low_hz,
            f_max_high_hz=self.f_max_high_hz,
            cycles_per_sample=self.cycles_per_sample,
            switched_capacitance=self.switched_capacitance,
            transmit_power_w=self.transmit_power_w,
            channel_gain_range=(self.channel_gain, self.channel_gain),
            noise_power_w=self.noise_power_w,
        )

    def trainer_config(self, **overrides) -> TrainerConfig:
        """Trainer configuration derived from these settings."""
        merged = dict(
            rounds=self.rounds,
            bandwidth_hz=self.bandwidth_hz,
            learning_rate=self.learning_rate,
            local_steps=self.local_steps,
            eval_every=self.eval_every,
        )
        merged.update(overrides)
        return TrainerConfig(**merged)

    def build_task(self) -> SyntheticImageTask:
        """Generate the synthetic dataset for these settings."""
        return make_synthetic_image_task(
            num_classes=self.num_classes,
            train_size=self.train_size,
            test_size=self.test_size,
            image_shape=self.image_shape,
            class_separation=self.class_separation,
            within_class_std=self.within_class_std,
            noise_std=self.noise_std,
            seed=derive_seed(self.seed, "task"),
        )

    def build_partitions(self, train: ArrayDataset, iid: bool):
        """Partition ``train`` across users per the paper's recipes.

        The non-IID flavour follows ``noniid_kind``: the paper's
        label-shard recipe by default, or Dirichlet with
        ``dirichlet_alpha`` as the extension.
        """
        if iid:
            return iid_partition(
                train, self.num_users, seed=derive_seed(self.seed, "iid")
            )
        if self.noniid_kind == "shard":
            return shard_noniid_partition(
                train,
                self.num_users,
                shards_per_user=self.shards_per_user,
                seed=derive_seed(self.seed, "noniid"),
            )
        if self.noniid_kind == "dirichlet":
            from repro.data.partition import dirichlet_partition

            return dirichlet_partition(
                train,
                self.num_users,
                alpha=self.dirichlet_alpha,
                min_samples=1,
                seed=derive_seed(self.seed, "noniid-dirichlet"),
            )
        raise ConfigurationError(
            f"noniid_kind must be 'shard' or 'dirichlet', got "
            f"{self.noniid_kind!r}"
        )

    def build_model(self, flattened: bool) -> Sequential:
        """Build the configured architecture.

        Args:
            flattened: True when inputs will be flattened vectors
                (required for ``model="mlp"``; conv models take CHW).
        """
        model_seed = derive_seed(self.seed, "model")
        if self.model == "mlp":
            input_dim = int(
                self.image_shape[0] * self.image_shape[1] * self.image_shape[2]
            )
            return build_mlp(
                input_dim, self.num_classes, hidden_sizes=(64,), seed=model_seed
            )
        if not flattened and self.model == "cnn":
            return build_cnn(self.image_shape, self.num_classes, seed=model_seed)
        if not flattened and self.model == "squeezenet":
            return build_mini_squeezenet(
                self.image_shape, self.num_classes, seed=model_seed
            )
        raise ConfigurationError(
            f"model {self.model!r} incompatible with flattened={flattened}"
        )

    @property
    def uses_flat_inputs(self) -> bool:
        """Whether the configured model consumes flattened inputs."""
        return self.model == "mlp"
