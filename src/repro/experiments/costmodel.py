"""Paper-scale cost-model study (no training required).

The scaled default profile trains a real model; this module instead
analyzes the *cost model alone* at the paper's exact constants
(``pi = 1e7``, 500 samples/user, SqueezeNet-sized 40 Mbit payload,
``Z = 2 MHz``, ``p = 0.2 W``) — Monte Carlo over heterogeneous fleets,
measuring each scheme's expected round delay, round energy, slack, and
Algorithm 3's saving, at the magnitudes the paper's testbed would see.

Because no learning happens, a study over dozens of fleets runs in
milliseconds, making this the right tool for sweeping cost-side
questions (e.g. how savings scale with payload size) at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import build_strategy
from repro.data.dataset import ArrayDataset
from repro.devices.fleet import FleetSpec, make_fleet
from repro.errors import ConfigurationError
from repro.network.tdma import simulate_tdma_round
from repro.rng import derive_seed

__all__ = ["CostSummary", "CostModelResult", "run_cost_model_study"]


@dataclass(frozen=True)
class CostSummary:
    """Mean/std cost statistics of one scheme across trials.

    Attributes:
        round_delay_s: per-round delay (mean, std).
        round_energy_j: per-round total energy (mean, std).
        slack_s: per-round total slack at the assigned frequencies.
        dvfs_saving_fraction: energy saved by the scheme's frequency
            assignment versus max frequency on the same selections.
    """

    round_delay_s: Tuple[float, float]
    round_energy_j: Tuple[float, float]
    slack_s: Tuple[float, float]
    dvfs_saving_fraction: Tuple[float, float]


@dataclass
class CostModelResult:
    """Cost summaries per scheme plus the study's parameters."""

    num_users: int
    samples_per_user: int
    payload_bits: float
    trials: int
    rounds_per_trial: int
    summaries: Dict[str, CostSummary]


def _sized_datasets(num_users: int, samples_per_user: int) -> List[ArrayDataset]:
    """Minimal datasets whose only meaningful property is their size."""
    template_inputs = np.zeros((samples_per_user, 1))
    template_labels = np.zeros(samples_per_user, dtype=np.int64)
    return [
        ArrayDataset(template_inputs, template_labels)
        for _ in range(num_users)
    ]


def run_cost_model_study(
    strategies: Sequence[str] = ("helcfl", "classic", "fedcs", "fedl"),
    num_users: int = 100,
    samples_per_user: int = 500,
    payload_bits: float = 1.25e6 * 32,
    bandwidth_hz: float = 2e6,
    fraction: float = 0.1,
    decay: float = 0.9,
    cycles_per_sample: float = 1e7,
    trials: int = 20,
    rounds_per_trial: int = 10,
    seed: int = 0,
    fleet_spec: Optional[FleetSpec] = None,
) -> CostModelResult:
    """Monte Carlo the per-round cost model at paper scale.

    For each trial a fresh heterogeneous fleet is drawn; each strategy
    then runs ``rounds_per_trial`` selection+frequency rounds (stateful
    strategies keep their counters within a trial) and every round's
    TDMA timeline is recorded, together with the max-frequency timeline
    of the same selection for the DVFS-saving comparison.

    Args:
        strategies: registry names to study.
        num_users: population size (paper: 100).
        samples_per_user: ``|D_q|`` (paper: 500 = 50 000 / 100).
        payload_bits: ``C_model`` (default: SqueezeNet-sized, 40 Mbit).
        bandwidth_hz: ``Z``.
        fraction: selection fraction ``C``.
        decay: HELCFL's ``eta``.
        cycles_per_sample: ``pi`` (paper: 1e7).
        trials: independent fleets.
        rounds_per_trial: rounds simulated per fleet.
        seed: master seed.
        fleet_spec: overrides the fleet parameters entirely.

    Returns:
        The assembled :class:`CostModelResult`.
    """
    if trials <= 0 or rounds_per_trial <= 0:
        raise ConfigurationError(
            f"trials and rounds_per_trial must be positive, got "
            f"{trials} and {rounds_per_trial}"
        )
    spec = fleet_spec or FleetSpec(cycles_per_sample=cycles_per_sample)
    datasets = _sized_datasets(num_users, samples_per_user)

    collected: Dict[str, Dict[str, List[float]]] = {
        name: {"delay": [], "energy": [], "slack": [], "saving": []}
        for name in strategies
    }

    for trial in range(trials):
        fleet = make_fleet(
            datasets, spec, seed=derive_seed(seed, "fleet", str(trial))
        )
        for name in strategies:
            selection, policy = build_strategy(
                name,
                devices=fleet,
                fraction=fraction,
                payload_bits=payload_bits,
                bandwidth_hz=bandwidth_hz,
                decay=decay,
                seed=derive_seed(seed, "sel", name, str(trial)),
            )
            selection.reset()
            for round_index in range(1, rounds_per_trial + 1):
                selected = selection.select(round_index, fleet)
                frequencies = policy.assign(
                    selected, payload_bits, bandwidth_hz
                )
                timeline = simulate_tdma_round(
                    selected, payload_bits, bandwidth_hz, frequencies
                )
                baseline = simulate_tdma_round(
                    selected, payload_bits, bandwidth_hz
                )
                stats = collected[name]
                stats["delay"].append(timeline.round_delay)
                stats["energy"].append(timeline.total_energy)
                stats["slack"].append(timeline.total_slack)
                saving = (
                    1.0 - timeline.total_energy / baseline.total_energy
                    if baseline.total_energy > 0
                    else 0.0
                )
                stats["saving"].append(saving)

    def pair(values: List[float]) -> Tuple[float, float]:
        arr = np.asarray(values)
        return float(arr.mean()), float(arr.std())

    summaries = {
        name: CostSummary(
            round_delay_s=pair(stats["delay"]),
            round_energy_j=pair(stats["energy"]),
            slack_s=pair(stats["slack"]),
            dvfs_saving_fraction=pair(stats["saving"]),
        )
        for name, stats in collected.items()
    }
    return CostModelResult(
        num_users=num_users,
        samples_per_user=samples_per_user,
        payload_bits=payload_bits,
        trials=trials,
        rounds_per_trial=rounds_per_trial,
        summaries=summaries,
    )
