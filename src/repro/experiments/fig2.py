"""Fig. 2 — accuracy comparison of HELCFL and the four baselines.

Runs every scheme on the same environment (identical data, partition,
fleet, and model initialization) for both the IID and non-IID settings
and collects the accuracy-versus-round curves, plus the paper's
"highest accuracy" improvement summary (Section VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["Fig2Result", "run_fig2", "DEFAULT_FIG2_STRATEGIES"]

DEFAULT_FIG2_STRATEGIES: Tuple[str, ...] = (
    "helcfl",
    "classic",
    "fedcs",
    "fedl",
    "sl",
)


@dataclass
class Fig2Result:
    """Accuracy curves for one partition regime.

    Attributes:
        iid: whether this is the IID panel of Fig. 2.
        histories: training history per strategy name.
    """

    iid: bool
    histories: Dict[str, TrainingHistory]

    def best_accuracies(self) -> Dict[str, float]:
        """Highest test accuracy per strategy."""
        return {
            name: history.best_accuracy
            for name, history in self.histories.items()
        }

    def improvements_over_baselines(
        self, reference: str = "helcfl"
    ) -> Dict[str, float]:
        """Accuracy-point gain of ``reference`` over each baseline.

        Mirrors the paper's "enhance X% accuracy" statements (absolute
        percentage points, e.g. 0.0149 for the paper's 1.49%).
        """
        if reference not in self.histories:
            raise ConfigurationError(
                f"reference {reference!r} not among {list(self.histories)}"
            )
        ref_best = self.histories[reference].best_accuracy
        return {
            name: ref_best - history.best_accuracy
            for name, history in self.histories.items()
            if name != reference
        }

    def curves(self) -> Dict[str, list]:
        """Per-strategy ``(round, time, accuracy)`` series for plotting."""
        return {
            name: history.accuracy_series()
            for name, history in self.histories.items()
        }


def run_fig2(
    settings: Optional[ExperimentSettings] = None,
    iid: bool = True,
    strategies: Sequence[str] = DEFAULT_FIG2_STRATEGIES,
    backend=None,
    workers: Optional[int] = None,
    observer=None,
    faults=None,
    config_overrides: Optional[Dict] = None,
) -> Fig2Result:
    """Reproduce one panel of Fig. 2.

    Args:
        settings: experiment settings (paper defaults when None).
        iid: which panel — IID (left) or non-IID (right).
        strategies: scheme names to run.
        backend: client-execution backend (instance or name); a named
            pooled backend is created once and shared by every
            strategy's run.
        workers: pool size when ``backend`` is given by name.
        observer: optional :class:`repro.obs.RunObserver` shared by
            every strategy's run (the trace interleaves runs; each
            ends with its own ``run_stop`` event).
        faults: optional :class:`repro.faults.FaultPlan` applied to
            every FL strategy's run (each run resolves the same seeded
            chaos). The ``sl`` baseline has no round lifecycle and
            always runs undegraded.
        config_overrides: keyword overrides for every run's trainer
            config (e.g. ``{"round_deadline_s": 30.0}``).

    Returns:
        The panel's :class:`Fig2Result`.
    """
    from repro.fl.execution import create_backend

    settings = settings or ExperimentSettings()
    environment = build_environment(settings, iid=iid)
    owned_backend = None
    if isinstance(backend, str):
        backend = owned_backend = create_backend(backend, workers=workers)
    histories: Dict[str, TrainingHistory] = {}
    try:
        for name in strategies:
            histories[name] = run_strategy(
                name,
                settings,
                iid=iid,
                environment=environment,
                backend=backend,
                observer=observer,
                faults=faults if name != "sl" else None,
                config_overrides=config_overrides,
            )
    finally:
        if owned_backend is not None:
            owned_backend.close()
    return Fig2Result(iid=iid, histories=histories)
