"""Fig. 3 — energy-cost reduction via the DVFS frequency determination.

Compares HELCFL with Algorithm 3 against HELCFL at max frequency (the
traditional TDMA behaviour). Because Algorithm 3 changes only device
operating frequencies — never the selection or the training math — the
two runs have *identical* accuracy trajectories, and the comparison
isolates exactly the energy effect the paper plots: joules spent until
each desired accuracy was reached, with and without DVFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["Fig3Entry", "Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Entry:
    """One bar pair of Fig. 3.

    Attributes:
        target: the desired accuracy level.
        energy_with_dvfs: joules to reach it with Algorithm 3.
        energy_without_dvfs: joules at max frequency.
        reduction_fraction: relative saving, e.g. 0.58 for the paper's
            58.25%; ``None`` when the target was never reached.
    """

    target: float
    energy_with_dvfs: Optional[float]
    energy_without_dvfs: Optional[float]
    reduction_fraction: Optional[float]


@dataclass
class Fig3Result:
    """DVFS energy study for one partition regime.

    Attributes:
        iid: partition regime.
        entries: one per accuracy target.
        dvfs_history: the Algorithm 3 run.
        max_frequency_history: the max-frequency run.
    """

    iid: bool
    entries: List[Fig3Entry]
    dvfs_history: TrainingHistory
    max_frequency_history: TrainingHistory

    @property
    def best_reduction(self) -> Optional[float]:
        """Largest reduction fraction across the targets."""
        values = [
            e.reduction_fraction
            for e in self.entries
            if e.reduction_fraction is not None
        ]
        return max(values) if values else None

    @property
    def total_energy_reduction(self) -> float:
        """Whole-run energy saving fraction (all rounds)."""
        base = self.max_frequency_history.total_energy
        if base <= 0:
            return 0.0
        return (base - self.dvfs_history.total_energy) / base


def run_fig3(
    settings: Optional[ExperimentSettings] = None,
    iid: bool = True,
    targets: Optional[Sequence[float]] = None,
    target_fractions: Sequence[float] = (0.75, 0.85, 0.95),
    histories: Optional[Dict[str, TrainingHistory]] = None,
    backend=None,
    workers: Optional[int] = None,
    observer=None,
    faults=None,
    config_overrides: Optional[Dict] = None,
) -> Fig3Result:
    """Reproduce one panel of Fig. 3.

    Args:
        settings: experiment settings (paper defaults when None).
        iid: partition regime.
        targets: explicit absolute accuracy levels; derived from the
            DVFS run's ceiling via ``target_fractions`` when None.
        target_fractions: ceiling fractions when ``targets`` is None.
        histories: optionally reuse runs keyed ``"helcfl"`` and
            ``"helcfl-nodvfs"`` (e.g. from a Fig. 2 sweep that included
            both).
        backend: client-execution backend (instance or name) for fresh
            runs; shared by both runs when given by name.
        workers: pool size when ``backend`` is given by name.
        observer: optional :class:`repro.obs.RunObserver` shared by
            both fresh runs.
        faults: optional :class:`repro.faults.FaultPlan` applied to
            both fresh runs (ignored when ``histories`` is supplied).
        config_overrides: keyword overrides for both fresh runs'
            trainer config (ignored when ``histories`` is supplied).

    Returns:
        The panel's :class:`Fig3Result`.
    """
    from repro.fl.execution import create_backend

    settings = settings or ExperimentSettings()
    if histories is None:
        environment = build_environment(settings, iid=iid)
        owned_backend = None
        if isinstance(backend, str):
            backend = owned_backend = create_backend(backend, workers=workers)
        try:
            histories = {
                "helcfl": run_strategy(
                    "helcfl",
                    settings,
                    iid=iid,
                    environment=environment,
                    backend=backend,
                    observer=observer,
                    faults=faults,
                    config_overrides=config_overrides,
                ),
                "helcfl-nodvfs": run_strategy(
                    "helcfl-nodvfs",
                    settings,
                    iid=iid,
                    environment=environment,
                    backend=backend,
                    observer=observer,
                    faults=faults,
                    config_overrides=config_overrides,
                ),
            }
        finally:
            if owned_backend is not None:
                owned_backend.close()
    for key in ("helcfl", "helcfl-nodvfs"):
        if key not in histories:
            raise ConfigurationError(f"fig 3 needs a {key!r} history")
    dvfs = histories["helcfl"]
    maxf = histories["helcfl-nodvfs"]

    if targets is None:
        ceiling = dvfs.best_accuracy
        targets = tuple(round(f * ceiling, 4) for f in target_fractions)
    entries: List[Fig3Entry] = []
    for target in targets:
        with_dvfs = dvfs.energy_to_accuracy(float(target))
        without = maxf.energy_to_accuracy(float(target))
        if with_dvfs is None or without is None or without <= 0:
            reduction = None
        else:
            reduction = (without - with_dvfs) / without
        entries.append(
            Fig3Entry(
                target=float(target),
                energy_with_dvfs=with_dvfs,
                energy_without_dvfs=without,
                reduction_fraction=reduction,
            )
        )
    return Fig3Result(
        iid=iid,
        entries=entries,
        dvfs_history=dvfs,
        max_frequency_history=maxf,
    )
