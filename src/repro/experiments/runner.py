"""Build-and-run plumbing shared by every experiment.

:func:`build_environment` generates the synthetic task, partitions it
(IID or the paper's non-IID shards), flattens inputs when the model
needs it, and builds the heterogeneous device fleet — all seeded from
the settings so every strategy sees the *identical* data, partition,
and hardware population.

:func:`run_strategy` then runs one named scheme to completion and
returns its :class:`~repro.fl.history.TrainingHistory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.baselines.registry import build_strategy, strategy_labels
from repro.baselines.sl import SeparatedLearningRunner
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticImageTask
from repro.data.transforms import flatten_images
from repro.devices.device import UserDevice
from repro.devices.fleet import make_fleet
from repro.errors import ConfigurationError
from repro.experiments.settings import ExperimentSettings
from repro.fl.execution import ExecutionBackend, create_backend
from repro.fl.history import TrainingHistory
from repro.fl.server import FederatedServer
from repro.fl.trainer import FederatedTrainer
from repro.obs import RunObserver
from repro.rng import derive_seed

__all__ = [
    "STRATEGY_NAMES",
    "Environment",
    "build_environment",
    "build_trainer",
    "run_strategy",
    "run_traced",
]

STRATEGY_NAMES = (
    "helcfl",
    "helcfl-nodvfs",
    "classic",
    "fedcs",
    "fedl",
    "full",
    "sl",
)


@dataclass
class Environment:
    """Everything shared across strategies for one experimental setting.

    Attributes:
        settings: the generating settings.
        iid: whether partitions are IID.
        task: the synthetic dataset.
        test: the evaluation split (flattened if the model needs it).
        partitions: per-user local datasets.
        devices: the heterogeneous fleet (one device per partition).
    """

    settings: ExperimentSettings
    iid: bool
    task: SyntheticImageTask
    test: ArrayDataset
    partitions: List[ArrayDataset]
    devices: List[UserDevice]


def build_environment(settings: ExperimentSettings, iid: bool) -> Environment:
    """Create the shared data + fleet environment for ``settings``.

    Args:
        settings: experiment settings.
        iid: True for the IID partition, False for the paper's
            label-shard non-IID partition.
    """
    task = settings.build_task()
    train = task.train
    test = task.test
    if settings.uses_flat_inputs:
        train = ArrayDataset(flatten_images(train.inputs), train.labels)
        test = ArrayDataset(flatten_images(test.inputs), test.labels)
    partitions = settings.build_partitions(train, iid=iid)
    devices = make_fleet(
        partitions,
        settings.fleet_spec(),
        seed=derive_seed(settings.seed, "fleet"),
    )
    return Environment(
        settings=settings,
        iid=iid,
        task=task,
        test=test,
        partitions=partitions,
        devices=devices,
    )


def _make_server(settings: ExperimentSettings, env: Environment) -> FederatedServer:
    model = settings.build_model(flattened=settings.uses_flat_inputs)
    return FederatedServer(
        model,
        test_dataset=env.test,
        payload_bits=settings.payload_bits,
    )


def build_trainer(
    name: str,
    settings: ExperimentSettings,
    environment: Environment,
    config_overrides: Optional[Dict] = None,
    backend: Optional[ExecutionBackend] = None,
    observer: Optional[RunObserver] = None,
    faults=None,
    vectorized: bool = True,
    checkpoint_path: Optional[str] = None,
) -> FederatedTrainer:
    """Assemble the :class:`FederatedTrainer` for one named scheme.

    The shared factory behind :func:`run_strategy` and the campaign
    runner (:mod:`repro.campaign`): a fresh server/model (seeded from
    the settings, so every strategy starts identically) plus the
    scheme's selection strategy and frequency policy, wired against
    ``environment``'s fleet. The ``sl`` baseline has its own loop and
    is not constructible here.

    Args:
        name: one of :data:`STRATEGY_NAMES` except ``sl``.
        settings: experiment settings.
        environment: the pre-built data + fleet environment.
        config_overrides: keyword overrides for the trainer config.
        backend: a pre-built execution backend (caller owns its
            lifetime); ``None`` runs serial.
        observer: optional observer receiving the run's events.
        faults: optional fault plan/injector.
        vectorized: use the population array paths (the default).
        checkpoint_path: where ``checkpoint_every`` snapshots land
            (see :class:`~repro.fl.trainer.FederatedTrainer`).
    """
    key = name.strip().lower()
    if key not in STRATEGY_NAMES or key == "sl":
        raise ConfigurationError(
            f"unknown trainer strategy {name!r}; expected one of "
            f"{tuple(n for n in STRATEGY_NAMES if n != 'sl')}"
        )
    server = _make_server(settings, environment)
    config = settings.trainer_config(**(config_overrides or {}))
    selection, policy = build_strategy(
        key,
        devices=environment.devices,
        fraction=settings.fraction,
        payload_bits=settings.payload_bits,
        bandwidth_hz=settings.bandwidth_hz,
        decay=settings.decay,
        seed=derive_seed(settings.seed, "selection", key),
        fedcs_target_count=settings.fedcs_target_count,
        fedcs_candidate_fraction=settings.fedcs_candidate_fraction,
        fedl_kappa=settings.fedl_kappa,
    )
    return FederatedTrainer(
        server=server,
        devices=environment.devices,
        selection=selection,
        frequency_policy=policy,
        config=config,
        label=strategy_labels()[key],
        backend=backend,
        observer=observer,
        faults=faults,
        vectorized=vectorized,
        checkpoint_path=checkpoint_path,
    )


def run_strategy(
    name: str,
    settings: ExperimentSettings,
    iid: bool,
    environment: Optional[Environment] = None,
    config_overrides: Optional[Dict] = None,
    backend: Union[ExecutionBackend, str, None] = None,
    workers: Optional[int] = None,
    observer: Optional[RunObserver] = None,
    faults=None,
    vectorized: bool = True,
) -> TrainingHistory:
    """Run one named scheme end to end.

    Every call builds a fresh server/model (same seed, hence the same
    initialization for every strategy) but reuses the environment when
    one is supplied, so all strategies compare on identical data and
    hardware.

    Args:
        name: one of :data:`STRATEGY_NAMES`.
        settings: experiment settings.
        iid: partition regime.
        environment: pre-built environment to reuse across strategies.
        config_overrides: keyword overrides for the trainer config
            (e.g. ``{"deadline_s": 600.0}``).
        backend: client-execution backend — an
            :class:`~repro.fl.execution.ExecutionBackend` instance
            (caller owns its worker lifetime) or a backend name from
            :data:`~repro.fl.execution.BACKEND_NAMES`; a name is
            instantiated here and closed when the run finishes.
            ``None`` runs serial. Ignored by the ``sl`` baseline,
            which has its own loop.
        workers: pool size when ``backend`` is given by name.
        observer: optional :class:`repro.obs.RunObserver` receiving
            the run's trace events and stage timers (caller owns the
            sink's lifetime). Ignored by the ``sl`` baseline, whose
            loop is not instrumented.
        faults: optional :class:`repro.faults.FaultPlan` (or
            pre-built :class:`repro.faults.FaultInjector`) injected
            into the run. Rejected for the ``sl`` baseline, whose loop
            has no round lifecycle to degrade.
        vectorized: schedule via the
            :class:`~repro.devices.DevicePopulation` array path (the
            default); ``False`` forces the per-device object path —
            bitwise-identical results, useful as the parity oracle and
            for benchmarking. Ignored by the ``sl`` baseline.

    Returns:
        The run's :class:`~repro.fl.history.TrainingHistory`, labelled
        with the scheme's display name.
    """
    key = name.strip().lower()
    if key not in STRATEGY_NAMES:
        raise ConfigurationError(
            f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
        )
    env = environment or build_environment(settings, iid)

    if key == "sl":
        if faults is not None:
            raise ConfigurationError(
                "fault injection is not supported by the 'sl' baseline"
            )
        runner = SeparatedLearningRunner(
            _make_server(settings, env),
            env.devices,
            config=settings.trainer_config(**(config_overrides or {})),
            eval_users=min(10, settings.num_users),
            seed=derive_seed(settings.seed, "sl-eval"),
            label=strategy_labels()[key],
        )
        return runner.run()

    owned_backend = None
    if isinstance(backend, str):
        backend = owned_backend = create_backend(backend, workers=workers)
    trainer = build_trainer(
        key,
        settings,
        env,
        config_overrides=config_overrides,
        backend=backend,
        observer=observer,
        faults=faults,
        vectorized=vectorized,
    )
    try:
        return trainer.run()
    finally:
        if owned_backend is not None:
            owned_backend.close()


def run_traced(
    name: str,
    settings: ExperimentSettings,
    iid: bool,
    trace_path: str,
    **kwargs,
):
    """Run one scheme with tracing on and return its analytics too.

    Convenience wrapper over :func:`run_strategy` for the common
    "train, then immediately analyze" flow: the run streams its events
    to ``trace_path`` (``.jsonl`` or ``.jsonl.gz``), and the trace is
    read back through :mod:`repro.obs.analysis` once the run finishes
    — so the returned stats are derived from the same artifact any
    later ``python -m repro.obs.report`` invocation would see.

    Args:
        name: one of :data:`STRATEGY_NAMES` (except ``sl``, whose loop
            is not instrumented).
        settings: experiment settings.
        iid: partition regime.
        trace_path: where the JSONL trace is written.
        **kwargs: forwarded to :func:`run_strategy` (``backend``,
            ``faults``, ...); ``observer`` is owned here and may not
            be supplied.

    Returns:
        ``(history, stats)`` — the
        :class:`~repro.fl.history.TrainingHistory` and the
        :class:`~repro.obs.analysis.RunStats` computed from the trace.
    """
    from repro.obs.analysis import compute_run_stats, load_trace, split_runs

    if "observer" in kwargs:
        raise ConfigurationError(
            "run_traced builds its own observer; pass run_strategy an "
            "observer directly instead"
        )
    observer = RunObserver.to_path(trace_path)
    try:
        history = run_strategy(
            name, settings, iid, observer=observer, **kwargs
        )
    finally:
        observer.close()
    segments = split_runs(load_trace(trace_path).events)
    stats = compute_run_stats(segments[-1], source=str(trace_path))
    return history, stats
