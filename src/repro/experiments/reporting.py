"""Text-table rendering of experiment results.

Produces the same rows the paper reports, as plain monospaced text —
the offline equivalent of its figures and tables.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.registry import strategy_labels
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.table1 import Table1Result

__all__ = ["format_fig2_table", "format_table1", "format_fig3_table"]


def _label(name: str) -> str:
    return strategy_labels().get(name, name)


def _fmt_minutes(seconds: Optional[float]) -> str:
    if seconds is None:
        return "x"
    return f"{seconds / 60.0:.2f}min"


def format_fig2_table(result: Fig2Result) -> str:
    """Render a Fig. 2 panel as a best-accuracy table plus curve stats."""
    regime = "IID" if result.iid else "Non-IID"
    lines = [f"Fig. 2 ({regime}): highest test accuracy per scheme"]
    best = result.best_accuracies()
    width = max(len(_label(n)) for n in best)
    for name, value in sorted(best.items(), key=lambda kv: -kv[1]):
        history = result.histories[name]
        lines.append(
            f"  {_label(name):<{width}}  best={100 * value:6.2f}%  "
            f"final={100 * history.final_accuracy:6.2f}%  "
            f"rounds={len(history)}"
        )
    improvements = result.improvements_over_baselines()
    gains = ", ".join(
        f"{_label(n)}: {100 * v:+.2f}pp" for n, v in sorted(improvements.items())
    )
    lines.append(f"  HELCFL gain over baselines -> {gains}")
    return "\n".join(lines)


def format_table1(result: Table1Result) -> str:
    """Render a Table I half exactly in the paper's layout."""
    regime = "IID" if result.iid else "Non-IID"
    header_targets = "  ".join(f"{100 * t:5.1f}%" for t in result.targets)
    lines = [
        f"Table I ({regime} setting): training delay to desired accuracy",
        f"  {'scheme':<18}  {header_targets}",
    ]
    for name, delays in result.rows():
        cells = "  ".join(f"{_fmt_minutes(d):>8}" for d in delays)
        lines.append(f"  {_label(name):<18}  {cells}")
    return "\n".join(lines)


def format_fig3_table(result: Fig3Result) -> str:
    """Render a Fig. 3 panel: energy with/without DVFS per target."""
    regime = "IID" if result.iid else "Non-IID"
    lines = [
        f"Fig. 3 ({regime}): training energy to desired accuracy",
        f"  {'target':>8}  {'with DVFS':>12}  {'max freq':>12}  {'saving':>8}",
    ]
    for entry in result.entries:
        with_dvfs = (
            f"{entry.energy_with_dvfs:10.3f}J"
            if entry.energy_with_dvfs is not None
            else "        x"
        )
        without = (
            f"{entry.energy_without_dvfs:10.3f}J"
            if entry.energy_without_dvfs is not None
            else "        x"
        )
        saving = (
            f"{100 * entry.reduction_fraction:6.2f}%"
            if entry.reduction_fraction is not None
            else "     x"
        )
        lines.append(
            f"  {100 * entry.target:7.2f}%  {with_dvfs:>12}  {without:>12}  "
            f"{saving:>8}"
        )
    lines.append(
        f"  whole-run energy saving: "
        f"{100 * result.total_energy_reduction:.2f}%"
    )
    return "\n".join(lines)
