"""Fig. 1 — the slack-time illustration as a reproducible artifact.

The paper's Fig. 1 is a worked example: a few users whose computations
finish while the TDMA channel is busy, accruing slack that Algorithm 3
converts into energy savings. This module generates that example
deterministically — a small fleet whose compute delays are closer
together than one upload takes — and packages the before/after
timelines with rendering, so the figure regenerates like the
quantitative artifacts do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.slack import SlackReport, analyze_slack
from repro.data.dataset import ArrayDataset
from repro.devices.cpu import DvfsCpu
from repro.devices.device import UserDevice
from repro.devices.radio import Radio
from repro.errors import ConfigurationError
from repro.viz import ascii_timeline

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """The Fig. 1 worked example.

    Attributes:
        report: slack/energy comparison of max-frequency vs
            Algorithm 3 schedules over the example fleet.
        payload_bits: the payload used.
        bandwidth_hz: the bandwidth used.
    """

    report: SlackReport
    payload_bits: float
    bandwidth_hz: float

    def render(self, width: int = 72) -> str:
        """Both timelines plus the summary, as text."""
        baseline = self.report.baseline
        optimized = self.report.optimized
        lines = [
            "Fig. 1: energy waste in traditional TDMA FL",
            "",
            "Max frequency (slack = idle wait for the channel):",
            ascii_timeline(baseline, width=width),
            (
                f"  round {baseline.round_delay:.2f}s  "
                f"energy {baseline.total_energy:.3f}J  "
                f"slack {baseline.total_slack:.2f}s"
            ),
            "",
            "Algorithm 3 (slack converted into lower frequencies):",
            ascii_timeline(optimized, width=width),
            (
                f"  round {optimized.round_delay:.2f}s  "
                f"energy {optimized.total_energy:.3f}J  "
                f"slack {optimized.total_slack:.2f}s"
            ),
            "",
            (
                f"  energy saving {100 * self.report.energy_saving_fraction:.1f}%"
                f", delay overhead {self.report.delay_overhead:+.4f}s"
            ),
        ]
        return "\n".join(lines)


def run_fig1(
    f_max_ghz: Sequence[float] = (2.0, 1.9, 1.8, 1.7),
    samples_per_user: int = 40,
    cycles_per_sample: float = 1.25e8,
    payload_bits: float = 5e6,
    bandwidth_hz: float = 2e6,
) -> Fig1Result:
    """Build the Fig. 1 worked example and analyze its slack.

    The default fleet's compute-delay gaps (~0.15 s between adjacent
    users) are smaller than one upload (~0.57 s), so the channel queues
    and every user after the first accrues slack — the exact situation
    the paper's Fig. 1 depicts.

    Args:
        f_max_ghz: maximum CPU frequencies of the example users, in
            GHz, fastest first.
        samples_per_user: local dataset size (drives Eq. 4).
        cycles_per_sample: the cost model's ``pi``.
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.

    Returns:
        The :class:`Fig1Result`.
    """
    if len(f_max_ghz) < 2:
        raise ConfigurationError(
            f"the Fig. 1 example needs >= 2 users, got {len(f_max_ghz)}"
        )
    if samples_per_user <= 0:
        raise ConfigurationError(
            f"samples_per_user must be positive, got {samples_per_user}"
        )
    devices = []
    template_inputs = np.zeros((samples_per_user, 1))
    template_labels = np.zeros(samples_per_user, dtype=np.int64)
    for device_id, ghz in enumerate(f_max_ghz):
        devices.append(
            UserDevice(
                device_id=device_id,
                cpu=DvfsCpu(
                    f_min=0.3e9,
                    f_max=float(ghz) * 1e9,
                    cycles_per_sample=cycles_per_sample,
                ),
                radio=Radio(
                    transmit_power=0.2, channel_gain=1.0, noise_power=1e-2
                ),
                dataset=ArrayDataset(template_inputs, template_labels),
            )
        )
    report = analyze_slack(devices, payload_bits, bandwidth_hz)
    return Fig1Result(
        report=report,
        payload_bits=payload_bits,
        bandwidth_hz=bandwidth_hz,
    )
