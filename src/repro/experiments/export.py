"""Saving and loading experiment artifacts.

Every run artifact (training histories, Fig. 2 / Table I / Fig. 3
results) serializes to a JSON document with a schema header, so result
directories survive library upgrades and can be diffed, archived, and
re-rendered without re-running experiments.

Layout convention::

    results/
      fig2_iid.json          # one document per artifact
      table1_noniid.json
      run_helcfl_iid.json

Each document carries ``{"schema": "...", "version": 1, "payload":
{...}}``; loaders validate the schema name before decoding.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from repro.errors import SerializationError
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Entry, Fig3Result
from repro.experiments.table1 import Table1Result
from repro.fl.history import TrainingHistory

__all__ = [
    "save_history",
    "load_history",
    "save_fig2",
    "load_fig2",
    "save_table1",
    "load_table1",
    "save_fig3",
    "load_fig3",
]

_VERSION = 1
PathLike = Union[str, os.PathLike]


def _write(path: PathLike, schema: str, payload: dict) -> None:
    document = {"schema": schema, "version": _VERSION, "payload": payload}
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def _read(path: PathLike, schema: str) -> dict:
    try:
        with open(os.fspath(path), encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"cannot read artifact {path!r}: {exc}"
        ) from exc
    if not isinstance(document, dict) or "schema" not in document:
        raise SerializationError(f"{path!r} is not a repro artifact document")
    if document["schema"] != schema:
        raise SerializationError(
            f"{path!r} holds schema {document['schema']!r}, expected {schema!r}"
        )
    return document["payload"]


# ----------------------------------------------------------------------
# Training histories
# ----------------------------------------------------------------------
def save_history(history: TrainingHistory, path: PathLike) -> None:
    """Write one training history to ``path``."""
    _write(path, "repro.history", history.to_dict())


def load_history(path: PathLike) -> TrainingHistory:
    """Load a history saved by :func:`save_history`."""
    return TrainingHistory.from_dict(_read(path, "repro.history"))


# ----------------------------------------------------------------------
# Fig. 2
# ----------------------------------------------------------------------
def save_fig2(result: Fig2Result, path: PathLike) -> None:
    """Write a Fig. 2 panel (all strategy histories) to ``path``."""
    payload = {
        "iid": result.iid,
        "histories": {
            name: history.to_dict()
            for name, history in result.histories.items()
        },
    }
    _write(path, "repro.fig2", payload)


def load_fig2(path: PathLike) -> Fig2Result:
    """Load a Fig. 2 panel saved by :func:`save_fig2`."""
    payload = _read(path, "repro.fig2")
    return Fig2Result(
        iid=bool(payload["iid"]),
        histories={
            name: TrainingHistory.from_dict(raw)
            for name, raw in payload["histories"].items()
        },
    )


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def save_table1(result: Table1Result, path: PathLike) -> None:
    """Write a Table I half to ``path``."""
    payload = {
        "iid": result.iid,
        "targets": list(result.targets),
        "delays": {
            name: {str(t): v for t, v in per_target.items()}
            for name, per_target in result.delays.items()
        },
    }
    _write(path, "repro.table1", payload)


def load_table1(path: PathLike) -> Table1Result:
    """Load a Table I half saved by :func:`save_table1`."""
    payload = _read(path, "repro.table1")
    targets = tuple(float(t) for t in payload["targets"])
    delays: Dict[str, Dict[float, Optional[float]]] = {}
    for name, per_target in payload["delays"].items():
        delays[name] = {
            float(t): (None if v is None else float(v))
            for t, v in per_target.items()
        }
    return Table1Result(iid=bool(payload["iid"]), targets=targets, delays=delays)


# ----------------------------------------------------------------------
# Fig. 3
# ----------------------------------------------------------------------
def save_fig3(result: Fig3Result, path: PathLike) -> None:
    """Write a Fig. 3 panel to ``path``."""
    payload = {
        "iid": result.iid,
        "entries": [
            {
                "target": entry.target,
                "energy_with_dvfs": entry.energy_with_dvfs,
                "energy_without_dvfs": entry.energy_without_dvfs,
                "reduction_fraction": entry.reduction_fraction,
            }
            for entry in result.entries
        ],
        "dvfs_history": result.dvfs_history.to_dict(),
        "max_frequency_history": result.max_frequency_history.to_dict(),
    }
    _write(path, "repro.fig3", payload)


def load_fig3(path: PathLike) -> Fig3Result:
    """Load a Fig. 3 panel saved by :func:`save_fig3`."""
    payload = _read(path, "repro.fig3")
    entries = [
        Fig3Entry(
            target=float(raw["target"]),
            energy_with_dvfs=raw["energy_with_dvfs"],
            energy_without_dvfs=raw["energy_without_dvfs"],
            reduction_fraction=raw["reduction_fraction"],
        )
        for raw in payload["entries"]
    ]
    return Fig3Result(
        iid=bool(payload["iid"]),
        entries=entries,
        dvfs_history=TrainingHistory.from_dict(payload["dvfs_history"]),
        max_frequency_history=TrainingHistory.from_dict(
            payload["max_frequency_history"]
        ),
    )
