"""Generic parameter sweeps over :class:`ExperimentSettings`.

The ablation benches each hand-roll a loop over one knob; this utility
generalizes that: declare a grid over any settings fields, run a
strategy at every grid point, and collect a tidy results table. Used
for exploratory studies ("how does the eta/fraction plane look?")
without writing a new runner each time.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome.

    Attributes:
        overrides: the settings fields that define this point.
        history: the training run at this point.
    """

    overrides: Tuple[Tuple[str, object], ...]
    history: TrainingHistory

    def override_dict(self) -> Dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.overrides)


@dataclass
class SweepResult:
    """All grid points of one sweep, with tabulation helpers."""

    strategy: str
    iid: bool
    points: List[SweepPoint]

    def table(
        self, metrics: Sequence[str] = ("best_accuracy", "total_time", "total_energy")
    ) -> List[Dict[str, object]]:
        """Rows of ``{knob: value, ..., metric: value, ...}``."""
        rows = []
        for point in self.points:
            row: Dict[str, object] = dict(point.overrides)
            for metric in metrics:
                row[metric] = getattr(point.history, metric)
            rows.append(row)
        return rows

    def best_point(self, metric: str = "best_accuracy") -> SweepPoint:
        """The grid point maximizing ``metric``."""
        if not self.points:
            raise ConfigurationError("sweep produced no points")
        return max(self.points, key=lambda p: getattr(p.history, metric))


def run_sweep(
    grid: Mapping[str, Iterable],
    strategy: str = "helcfl",
    base: Optional[ExperimentSettings] = None,
    iid: bool = True,
    reuse_environment: bool = True,
) -> SweepResult:
    """Run ``strategy`` at every point of a settings grid.

    Args:
        grid: mapping from :class:`ExperimentSettings` field names to
            the values to sweep; the cartesian product is evaluated.
        strategy: the scheme to run at every point.
        base: base settings (quick profile recommended).
        iid: partition regime.
        reuse_environment: when True and no swept field affects the
            environment (data, partition, fleet), build it once. Fields
            affecting the environment force a rebuild per point.

    Returns:
        The assembled :class:`SweepResult` in grid order.

    Raises:
        ConfigurationError: for an empty grid or unknown field names.
    """
    if not grid:
        raise ConfigurationError("grid must name at least one field")
    base = base or ExperimentSettings.quick()
    valid_fields = {f.name for f in dataclasses.fields(ExperimentSettings)}
    for name in grid:
        if name not in valid_fields:
            raise ConfigurationError(
                f"unknown settings field {name!r}; valid fields: "
                f"{sorted(valid_fields)}"
            )

    # Fields that change the generated environment.
    environment_fields = {
        "num_users",
        "train_size",
        "test_size",
        "num_classes",
        "image_shape",
        "class_separation",
        "within_class_std",
        "noise_std",
        "shards_per_user",
        "seed",
        "f_min_hz",
        "f_max_low_hz",
        "f_max_high_hz",
        "cycles_per_sample",
        "switched_capacitance",
        "transmit_power_w",
        "channel_gain",
        "noise_power_w",
        "model",
    }
    environment_static = reuse_environment and not (
        set(grid) & environment_fields
    )
    shared_environment = (
        build_environment(base, iid=iid) if environment_static else None
    )

    names = list(grid)
    points: List[SweepPoint] = []
    for combination in itertools.product(*(list(grid[n]) for n in names)):
        overrides = dict(zip(names, combination))
        settings = replace(base, **overrides)
        environment = shared_environment
        if environment is None:
            environment = build_environment(settings, iid=iid)
        history = run_strategy(
            strategy, settings, iid=iid, environment=environment
        )
        points.append(
            SweepPoint(
                overrides=tuple(sorted(overrides.items())),
                history=history,
            )
        )
    return SweepResult(strategy=strategy, iid=iid, points=points)
