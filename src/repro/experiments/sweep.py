"""Generic parameter sweeps over :class:`ExperimentSettings`.

The ablation benches each hand-roll a loop over one knob; this utility
generalizes that: declare a grid over any settings fields, run a
strategy at every grid point, and collect a tidy results table. Used
for exploratory studies ("how does the eta/fraction plane look?")
without writing a new runner each time.

Passing ``campaign_dir`` routes the grid through the crash-recoverable
campaign orchestrator (:mod:`repro.campaign`): every grid point
becomes one checkpointed campaign run, a killed sweep resumes with
``resume=True``, and the assembled :class:`SweepResult` is bitwise
identical to the in-process path.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome.

    Attributes:
        overrides: the settings fields that define this point.
        history: the training run at this point.
    """

    overrides: Tuple[Tuple[str, object], ...]
    history: TrainingHistory

    def override_dict(self) -> Dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.overrides)


@dataclass
class SweepResult:
    """All grid points of one sweep, with tabulation helpers."""

    strategy: str
    iid: bool
    points: List[SweepPoint]

    def table(
        self, metrics: Sequence[str] = ("best_accuracy", "total_time", "total_energy")
    ) -> List[Dict[str, object]]:
        """Rows of ``{knob: value, ..., metric: value, ...}``."""
        rows = []
        for point in self.points:
            row: Dict[str, object] = dict(point.overrides)
            for metric in metrics:
                row[metric] = getattr(point.history, metric)
            rows.append(row)
        return rows

    def best_point(self, metric: str = "best_accuracy") -> SweepPoint:
        """The grid point maximizing ``metric``."""
        if not self.points:
            raise ConfigurationError("sweep produced no points")
        return max(self.points, key=lambda p: getattr(p.history, metric))


def _run_sweep_campaign(
    grid_points: List[Dict[str, object]],
    strategy: str,
    base: ExperimentSettings,
    iid: bool,
    campaign_dir: str,
    resume: bool,
    pool_workers: Optional[int],
) -> SweepResult:
    """Execute the grid through the campaign pool, one run per point."""
    import json
    import os

    from repro.campaign import (
        CampaignManifest,
        CampaignPool,
        CampaignSpec,
        settings_to_overrides,
        write_aggregate,
    )
    from repro.campaign.runner import HISTORY_FILE

    base_diff = settings_to_overrides(base)
    variants = []
    for overrides in grid_points:
        merged = dict(base_diff)
        for name, value in overrides.items():
            merged[name] = list(value) if isinstance(value, tuple) else value
        variants.append({"settings": merged})
    spec = CampaignSpec(
        name="sweep",
        profile="default",
        iid=iid,
        seeds=(int(base.seed),),
        strategies=(strategy,),
        overrides=tuple(variants),
    )
    manifest = CampaignManifest.create(campaign_dir, spec)
    pool = CampaignPool(manifest, pool_workers=pool_workers)
    statuses = pool.run(resume=resume)
    unfinished = [r for r, s in statuses.items() if s != "done"]
    if unfinished:
        raise ConfigurationError(
            f"sweep campaign left {len(unfinished)} run(s) unfinished: "
            f"{', '.join(sorted(unfinished))}"
        )
    write_aggregate(manifest)
    points: List[SweepPoint] = []
    for index, overrides in enumerate(grid_points):
        run_id = f"s{base.seed}-{strategy}-c{index}-f0"
        path = os.path.join(manifest.run_dir(run_id), HISTORY_FILE)
        with open(path, "r", encoding="utf-8") as handle:
            history = TrainingHistory.from_dict(json.load(handle))
        points.append(
            SweepPoint(
                overrides=tuple(sorted(overrides.items())),
                history=history,
            )
        )
    return SweepResult(strategy=strategy, iid=iid, points=points)


def run_sweep(
    grid: Mapping[str, Iterable],
    strategy: str = "helcfl",
    base: Optional[ExperimentSettings] = None,
    iid: bool = True,
    reuse_environment: bool = True,
    campaign_dir: Optional[str] = None,
    resume: bool = False,
    pool_workers: Optional[int] = None,
) -> SweepResult:
    """Run ``strategy`` at every point of a settings grid.

    Args:
        grid: mapping from :class:`ExperimentSettings` field names to
            the values to sweep; the cartesian product is evaluated.
        strategy: the scheme to run at every point.
        base: base settings (quick profile recommended).
        iid: partition regime.
        reuse_environment: when True and no swept field affects the
            environment (data, partition, fleet), build it once. Fields
            affecting the environment force a rebuild per point.
        campaign_dir: when set, execute through the crash-recoverable
            campaign orchestrator in this directory — one checkpointed
            worker-process run per grid point, with ``resume`` support
            and bitwise-identical histories.
        resume: (campaign mode) continue an interrupted sweep instead
            of starting over.
        pool_workers: (campaign mode) worker-process count override.

    Returns:
        The assembled :class:`SweepResult` in grid order.

    Raises:
        ConfigurationError: for an empty grid, unknown field names, or
            a campaign-routed sweep over ``seed`` (use
            :func:`repro.experiments.multiseed.run_multiseed`).
    """
    if not grid:
        raise ConfigurationError("grid must name at least one field")
    base = base or ExperimentSettings.quick()
    valid_fields = {f.name for f in dataclasses.fields(ExperimentSettings)}
    for name in grid:
        if name not in valid_fields:
            raise ConfigurationError(
                f"unknown settings field {name!r}; valid fields: "
                f"{sorted(valid_fields)}"
            )
    if campaign_dir is not None:
        if "seed" in grid:
            raise ConfigurationError(
                "a campaign-routed sweep cannot sweep 'seed' (seeds are "
                "a campaign matrix axis); use run_multiseed instead"
            )
        names = list(grid)
        grid_points = [
            dict(zip(names, combination))
            for combination in itertools.product(
                *(list(grid[n]) for n in names)
            )
        ]
        return _run_sweep_campaign(
            grid_points,
            strategy,
            base,
            iid,
            campaign_dir,
            resume,
            pool_workers,
        )

    # Fields that change the generated environment.
    environment_fields = {
        "num_users",
        "train_size",
        "test_size",
        "num_classes",
        "image_shape",
        "class_separation",
        "within_class_std",
        "noise_std",
        "shards_per_user",
        "seed",
        "f_min_hz",
        "f_max_low_hz",
        "f_max_high_hz",
        "cycles_per_sample",
        "switched_capacitance",
        "transmit_power_w",
        "channel_gain",
        "noise_power_w",
        "model",
    }
    environment_static = reuse_environment and not (
        set(grid) & environment_fields
    )
    shared_environment = (
        build_environment(base, iid=iid) if environment_static else None
    )

    names = list(grid)
    points: List[SweepPoint] = []
    for combination in itertools.product(*(list(grid[n]) for n in names)):
        overrides = dict(zip(names, combination))
        settings = replace(base, **overrides)
        environment = shared_environment
        if environment is None:
            environment = build_environment(settings, iid=iid)
        history = run_strategy(
            strategy, settings, iid=iid, environment=environment
        )
        points.append(
            SweepPoint(
                overrides=tuple(sorted(overrides.items())),
                history=history,
            )
        )
    return SweepResult(strategy=strategy, iid=iid, points=points)
