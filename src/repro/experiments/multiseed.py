"""Multi-seed experiment runs with statistical summaries.

Single runs of Fig. 2-style comparisons can land inside evaluation
noise. This runner repeats a set of strategies over several master
seeds (each seed re-derives the task, partition, fleet, model init,
and selection streams) and reports per-metric means, standard
deviations, and paired per-seed gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import mean_std, paired_gap
from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["MultiSeedResult", "run_multiseed"]


@dataclass
class MultiSeedResult:
    """Histories and summaries of a multi-seed sweep.

    Attributes:
        iid: partition regime.
        seeds: master seeds, in run order.
        histories: ``histories[strategy][i]`` is the run for
            ``seeds[i]``.
    """

    iid: bool
    seeds: Tuple[int, ...]
    histories: Dict[str, List[TrainingHistory]] = field(default_factory=dict)

    def metric(self, strategy: str, name: str) -> List[float]:
        """Per-seed values of a metric for one strategy.

        Supported metrics: ``best_accuracy``, ``final_accuracy``,
        ``total_time``, ``total_energy``.
        """
        if strategy not in self.histories:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; have {list(self.histories)}"
            )
        if name not in (
            "best_accuracy",
            "final_accuracy",
            "total_time",
            "total_energy",
        ):
            raise ConfigurationError(f"unknown metric {name!r}")
        return [getattr(h, name) for h in self.histories[strategy]]

    def summary(self, name: str = "best_accuracy") -> Dict[str, Tuple[float, float]]:
        """``(mean, std)`` of a metric for every strategy."""
        return {
            strategy: mean_std(self.metric(strategy, name))
            for strategy in self.histories
        }

    def gap(
        self, a: str, b: str, name: str = "best_accuracy"
    ) -> Tuple[float, float, Optional[float]]:
        """Paired per-seed gap of metric ``name`` between strategies.

        Returns ``(mean gap, std, fraction of seeds where a wins)``.
        """
        return paired_gap(self.metric(a, name), self.metric(b, name))

    def time_to_accuracy(self, strategy: str, target: float) -> List[Optional[float]]:
        """Per-seed time-to-accuracy (None where unreachable)."""
        if strategy not in self.histories:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        return [h.time_to_accuracy(target) for h in self.histories[strategy]]


def run_multiseed(
    strategies: Sequence[str],
    settings: Optional[ExperimentSettings] = None,
    iid: bool = True,
    seeds: Sequence[int] = (0, 1, 2),
) -> MultiSeedResult:
    """Run each strategy once per seed on seed-matched environments.

    For every seed, all strategies share the identical environment
    (data, partition, fleet, model init), so per-seed gaps are paired
    comparisons.

    Args:
        strategies: strategy names (see
            :data:`repro.experiments.runner.STRATEGY_NAMES`).
        settings: base settings; each run replaces only ``seed``.
        iid: partition regime.
        seeds: master seeds.

    Returns:
        The assembled :class:`MultiSeedResult`.
    """
    if not strategies:
        raise ConfigurationError("need at least one strategy")
    if not seeds:
        raise ConfigurationError("need at least one seed")
    settings = settings or ExperimentSettings()
    result = MultiSeedResult(iid=iid, seeds=tuple(int(s) for s in seeds))
    for strategy in strategies:
        result.histories[strategy] = []
    for seed in result.seeds:
        seeded = replace(settings, seed=seed)
        environment = build_environment(seeded, iid=iid)
        for strategy in strategies:
            history = run_strategy(
                strategy, seeded, iid=iid, environment=environment
            )
            result.histories[strategy].append(history)
    return result
