"""Multi-seed experiment runs with statistical summaries.

Single runs of Fig. 2-style comparisons can land inside evaluation
noise. This runner repeats a set of strategies over several master
seeds (each seed re-derives the task, partition, fleet, model init,
and selection streams) and reports per-metric means, standard
deviations, and paired per-seed gaps.

Passing ``campaign_dir`` routes the same matrix through the
crash-recoverable campaign orchestrator (:mod:`repro.campaign`):
runs execute in parallel worker processes with checkpointing on, a
killed invocation resumes with ``resume=True``, and the assembled
:class:`MultiSeedResult` is bitwise identical to the in-process path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import mean_std, paired_gap
from repro.errors import ConfigurationError
from repro.experiments.runner import build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.fl.history import TrainingHistory

__all__ = ["MultiSeedResult", "run_multiseed"]


@dataclass
class MultiSeedResult:
    """Histories and summaries of a multi-seed sweep.

    Attributes:
        iid: partition regime.
        seeds: master seeds, in run order.
        histories: ``histories[strategy][i]`` is the run for
            ``seeds[i]``.
    """

    iid: bool
    seeds: Tuple[int, ...]
    histories: Dict[str, List[TrainingHistory]] = field(default_factory=dict)

    def metric(self, strategy: str, name: str) -> List[float]:
        """Per-seed values of a metric for one strategy.

        Supported metrics: ``best_accuracy``, ``final_accuracy``,
        ``total_time``, ``total_energy``.
        """
        if strategy not in self.histories:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; have {list(self.histories)}"
            )
        if name not in (
            "best_accuracy",
            "final_accuracy",
            "total_time",
            "total_energy",
        ):
            raise ConfigurationError(f"unknown metric {name!r}")
        return [getattr(h, name) for h in self.histories[strategy]]

    def summary(self, name: str = "best_accuracy") -> Dict[str, Tuple[float, float]]:
        """``(mean, std)`` of a metric for every strategy."""
        return {
            strategy: mean_std(self.metric(strategy, name))
            for strategy in self.histories
        }

    def gap(
        self, a: str, b: str, name: str = "best_accuracy"
    ) -> Tuple[float, float, Optional[float]]:
        """Paired per-seed gap of metric ``name`` between strategies.

        Returns ``(mean gap, std, fraction of seeds where a wins)``.
        """
        return paired_gap(self.metric(a, name), self.metric(b, name))

    def time_to_accuracy(self, strategy: str, target: float) -> List[Optional[float]]:
        """Per-seed time-to-accuracy (None where unreachable)."""
        if strategy not in self.histories:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        return [h.time_to_accuracy(target) for h in self.histories[strategy]]


def _run_multiseed_campaign(
    strategies: Sequence[str],
    settings: ExperimentSettings,
    iid: bool,
    seeds: Tuple[int, ...],
    campaign_dir: str,
    resume: bool,
    pool_workers: Optional[int],
) -> MultiSeedResult:
    """Execute the multi-seed matrix through the campaign pool."""
    import json
    import os

    from repro.campaign import (
        CampaignManifest,
        CampaignPool,
        CampaignSpec,
        settings_to_overrides,
        write_aggregate,
    )
    from repro.campaign.runner import HISTORY_FILE

    spec = CampaignSpec(
        name="multiseed",
        profile="default",
        iid=iid,
        seeds=seeds,
        strategies=tuple(strategies),
        overrides=({"settings": settings_to_overrides(settings)},),
    )
    manifest = CampaignManifest.create(campaign_dir, spec)
    pool = CampaignPool(manifest, pool_workers=pool_workers)
    statuses = pool.run(resume=resume)
    unfinished = [r for r, s in statuses.items() if s != "done"]
    if unfinished:
        raise ConfigurationError(
            f"multi-seed campaign left {len(unfinished)} run(s) "
            f"unfinished: {', '.join(sorted(unfinished))}"
        )
    write_aggregate(manifest)
    result = MultiSeedResult(iid=iid, seeds=seeds)
    for strategy in strategies:
        result.histories[strategy] = []
    for seed in seeds:
        for strategy in strategies:
            run_id = f"s{seed}-{strategy}-c0-f0"
            path = os.path.join(manifest.run_dir(run_id), HISTORY_FILE)
            with open(path, "r", encoding="utf-8") as handle:
                history = TrainingHistory.from_dict(json.load(handle))
            result.histories[strategy].append(history)
    return result


def run_multiseed(
    strategies: Sequence[str],
    settings: Optional[ExperimentSettings] = None,
    iid: bool = True,
    seeds: Sequence[int] = (0, 1, 2),
    campaign_dir: Optional[str] = None,
    resume: bool = False,
    pool_workers: Optional[int] = None,
) -> MultiSeedResult:
    """Run each strategy once per seed on seed-matched environments.

    For every seed, all strategies share the identical environment
    (data, partition, fleet, model init), so per-seed gaps are paired
    comparisons.

    Args:
        strategies: strategy names (see
            :data:`repro.experiments.runner.STRATEGY_NAMES`).
        settings: base settings; each run replaces only ``seed``.
        iid: partition regime.
        seeds: master seeds.
        campaign_dir: when set, execute through the crash-recoverable
            campaign orchestrator in this directory — parallel worker
            processes, checkpointing, and ``resume`` support — with
            bitwise-identical histories.
        resume: (campaign mode) continue an interrupted campaign
            instead of starting over.
        pool_workers: (campaign mode) worker-process count override.

    Returns:
        The assembled :class:`MultiSeedResult`.
    """
    if not strategies:
        raise ConfigurationError("need at least one strategy")
    if not seeds:
        raise ConfigurationError("need at least one seed")
    settings = settings or ExperimentSettings()
    if campaign_dir is not None:
        return _run_multiseed_campaign(
            strategies,
            settings,
            iid,
            tuple(int(s) for s in seeds),
            campaign_dir,
            resume,
            pool_workers,
        )
    result = MultiSeedResult(iid=iid, seeds=tuple(int(s) for s in seeds))
    for strategy in strategies:
        result.histories[strategy] = []
    for seed in result.seeds:
        seeded = replace(settings, seed=seed)
        environment = build_environment(seeded, iid=iid)
        for strategy in strategies:
            history = run_strategy(
                strategy, seeded, iid=iid, environment=environment
            )
            result.histories[strategy].append(history)
    return result
