"""Experiment harness reproducing the paper's evaluation (Section VII).

* :mod:`repro.experiments.settings` — the paper's simulation settings
  and the scaled profile this offline reproduction runs at.
* :mod:`repro.experiments.runner` — builds and runs any scheme
  (HELCFL + the four baselines) on IID or non-IID partitions.
* :mod:`repro.experiments.fig2` — accuracy curves (Fig. 2).
* :mod:`repro.experiments.table1` — training delay to desired accuracy
  (Table I).
* :mod:`repro.experiments.fig3` — DVFS energy reduction (Fig. 3).
* :mod:`repro.experiments.reporting` — text tables mirroring the
  paper's presentation.
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.reporting import (
    format_fig2_table,
    format_fig3_table,
    format_table1,
)
from repro.experiments.runner import STRATEGY_NAMES, build_environment, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "ExperimentSettings",
    "STRATEGY_NAMES",
    "build_environment",
    "run_strategy",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Table1Result",
    "run_table1",
    "Fig3Result",
    "run_fig3",
    "format_fig2_table",
    "format_table1",
    "format_fig3_table",
]
