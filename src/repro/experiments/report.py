"""One-command reproduction report.

:func:`generate_report` runs the paper's complete evaluation — Fig. 2,
Table I, and Fig. 3 for both partition regimes — on one shared
environment per regime and renders everything as a single text
document, the programmatic equivalent of EXPERIMENTS.md's measured
sections. Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.reporting import (
    format_fig2_table,
    format_fig3_table,
    format_table1,
)
from repro.experiments.settings import ExperimentSettings
from repro.experiments.table1 import run_table1
from repro.version import PAPER_TITLE, PAPER_VENUE, __version__

__all__ = ["generate_report"]

_REPORT_STRATEGIES = (
    "helcfl",
    "helcfl-nodvfs",
    "classic",
    "fedcs",
    "fedl",
    "sl",
)


def generate_report(
    settings: Optional[ExperimentSettings] = None,
    regimes: Sequence[bool] = (True, False),
) -> str:
    """Run the full evaluation and return the text report.

    Args:
        settings: experiment settings (paper-scale defaults when None).
        regimes: partition regimes to include (True = IID).

    Returns:
        A multi-line report containing every artifact, speedup lines,
        and the run's configuration header.
    """
    settings = settings or ExperimentSettings()
    lines: List[str] = [
        f"{PAPER_TITLE} ({PAPER_VENUE})",
        f"reproduction report - repro {__version__}",
        (
            f"settings: Q={settings.num_users}, C={settings.fraction}, "
            f"eta={settings.decay}, rounds={settings.rounds}, "
            f"seed={settings.seed}, model={settings.model}"
        ),
        "=" * 72,
    ]
    for iid in regimes:
        regime = "IID" if iid else "Non-IID"
        lines.append("")
        lines.append(f"--- {regime} setting ---")

        sweep = run_fig2(settings, iid=iid, strategies=_REPORT_STRATEGIES)
        lines.append("")
        lines.append(format_fig2_table(sweep))

        table = run_table1(settings, iid=iid, fig2=sweep)
        lines.append("")
        lines.append(format_table1(table))
        for target in table.targets:
            speedups = []
            for versus in ("classic", "fedcs", "fedl"):
                value = table.speedup(target, versus=versus)
                speedups.append(
                    f"{versus}: "
                    + (f"{value:.0f}%" if value is not None else "x")
                )
            lines.append(
                f"  HELCFL speedup @ {100 * target:.1f}%  "
                + "  ".join(speedups)
            )

        fig3 = run_fig3(
            settings,
            iid=iid,
            histories={
                "helcfl": sweep.histories["helcfl"],
                "helcfl-nodvfs": sweep.histories["helcfl-nodvfs"],
            },
        )
        lines.append("")
        lines.append(format_fig3_table(fig3))
    lines.append("")
    lines.append("=" * 72)
    lines.append("see EXPERIMENTS.md for the paper-vs-measured reading guide")
    return "\n".join(lines)
