"""Table I — training delay to obtain desired accuracy.

For each desired accuracy level, reports each scheme's simulated
training delay until its test accuracy first reached the level, with
``None`` standing for the paper's "✗" (never reached). Accuracy levels
default to fractions of HELCFL's achieved ceiling, because the
synthetic task's absolute accuracy scale differs from CIFAR-10 (see
EXPERIMENTS.md); explicit absolute targets can be passed instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.fig2 import DEFAULT_FIG2_STRATEGIES, Fig2Result, run_fig2
from repro.experiments.settings import ExperimentSettings

__all__ = ["Table1Result", "run_table1", "DEFAULT_TARGET_FRACTIONS"]

# Fractions of the reference (HELCFL) ceiling standing in for the
# paper's absolute levels (60/70/80% IID; 40/50/60% non-IID).
DEFAULT_TARGET_FRACTIONS: Tuple[float, ...] = (0.75, 0.85, 0.95)


@dataclass
class Table1Result:
    """Delay-to-accuracy table for one partition regime.

    Attributes:
        iid: partition regime.
        targets: absolute accuracy levels of the columns.
        delays: ``delays[strategy][target]`` — simulated seconds to
            first reach ``target``, or ``None`` for the paper's "✗".
    """

    iid: bool
    targets: Tuple[float, ...]
    delays: Dict[str, Dict[float, Optional[float]]]

    def speedup(
        self, target: float, reference: str = "helcfl", versus: str = "classic"
    ) -> Optional[float]:
        """Paper-style speedup of ``reference`` versus ``versus``.

        The paper reports speedup as ``T_baseline / T_helcfl`` expressed
        in percent (e.g. 275.03%). Returns ``None`` when either scheme
        never reached the target.
        """
        if target not in self.targets:
            raise ConfigurationError(
                f"target {target} not among computed targets {self.targets}"
            )
        ref = self.delays.get(reference, {}).get(target)
        base = self.delays.get(versus, {}).get(target)
        if ref is None or base is None or ref <= 0:
            return None
        return 100.0 * base / ref

    def rows(self) -> List[Tuple[str, List[Optional[float]]]]:
        """Table rows: ``(strategy, [delay per target])``."""
        return [
            (name, [self.delays[name][t] for t in self.targets])
            for name in self.delays
        ]


def run_table1(
    settings: Optional[ExperimentSettings] = None,
    iid: bool = True,
    targets: Optional[Sequence[float]] = None,
    target_fractions: Sequence[float] = DEFAULT_TARGET_FRACTIONS,
    fig2: Optional[Fig2Result] = None,
    strategies: Sequence[str] = DEFAULT_FIG2_STRATEGIES,
    backend=None,
    workers: Optional[int] = None,
    observer=None,
    faults=None,
    config_overrides: Optional[Dict] = None,
) -> Table1Result:
    """Reproduce one half of Table I.

    Args:
        settings: experiment settings (paper defaults when None).
        iid: IID (top half) or non-IID (bottom half).
        targets: explicit absolute accuracy levels; when None they are
            derived as ``target_fractions`` of HELCFL's best accuracy.
        target_fractions: ceiling fractions used when ``targets`` is
            None.
        fig2: an existing Fig. 2 result to reuse (the table needs the
            same runs; passing it avoids retraining).
        strategies: schemes to include when running fresh.
        backend: client-execution backend (instance or name) for fresh
            runs (see :func:`~repro.experiments.fig2.run_fig2`).
        workers: pool size when ``backend`` is given by name.
        observer: optional :class:`repro.obs.RunObserver` forwarded to
            the fresh Fig. 2 runs.
        faults: optional :class:`repro.faults.FaultPlan` forwarded to
            the fresh Fig. 2 runs (ignored when ``fig2`` is supplied).
        config_overrides: trainer-config overrides forwarded to the
            fresh Fig. 2 runs (ignored when ``fig2`` is supplied).

    Returns:
        The :class:`Table1Result` for this regime.
    """
    settings = settings or ExperimentSettings()
    if fig2 is None:
        fig2 = run_fig2(
            settings, iid=iid, strategies=strategies, backend=backend,
            workers=workers, observer=observer, faults=faults,
            config_overrides=config_overrides,
        )
    histories = fig2.histories
    if "helcfl" not in histories:
        raise ConfigurationError("table 1 requires a 'helcfl' run as reference")

    if targets is None:
        ceiling = histories["helcfl"].best_accuracy
        targets = tuple(round(f * ceiling, 4) for f in target_fractions)
    else:
        targets = tuple(float(t) for t in targets)

    delays: Dict[str, Dict[float, Optional[float]]] = {}
    for name, history in histories.items():
        delays[name] = {
            target: history.time_to_accuracy(target) for target in targets
        }
    return Table1Result(iid=iid, targets=targets, delays=delays)
