"""Wireless-network substrate: channel models and TDMA scheduling.

The paper's MEC system grants its ``Z`` resource blocks to one uploader
at a time (TDMA). :mod:`repro.network.tdma` simulates the resulting
per-round timeline — compute in parallel, upload sequentially — and
measures the slack time that HELCFL's Algorithm 3 converts into energy
savings.
"""

from repro.network.channel import (
    FixedChannel,
    PathLossChannel,
    RayleighFadingChannel,
)
from repro.network.ofdma import simulate_ofdma_round
from repro.network.tdma import RoundTimeline, UserTimeline, simulate_tdma_round

__all__ = [
    "FixedChannel",
    "PathLossChannel",
    "RayleighFadingChannel",
    "UserTimeline",
    "RoundTimeline",
    "simulate_tdma_round",
    "simulate_ofdma_round",
]
