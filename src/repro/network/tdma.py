"""TDMA round-timeline simulation.

In the paper's TDMA FL (Fig. 1), all selected users compute their local
updates in parallel, but the MEC uplink serves one uploader at a time:
when a user finishes computing it must wait for the channel to free up
before uploading. The waiting interval is that user's *slack time* —
the quantity HELCFL's Algorithm 3 converts into energy savings by
slowing the CPU so the update finishes exactly when the channel frees.

:func:`simulate_tdma_round` reproduces this timeline exactly for any
assignment of operating frequencies, yielding per-user compute/upload
windows, slack, and energies, plus the synchronized round delay
(Eq. 10) and round energy (Eq. 11). It is both the execution engine of
the FL trainer and the independent oracle the tests use to verify
Algorithm 3.

The simulator also accepts the per-device *perturbations* the fault
layer (:mod:`repro.faults`) resolves — straggler compute-delay
multipliers, during-compute deaths, channel outages/degradations, and
a hard round deadline. Each perturbed user carries an ``outcome``
(``"ok"``, ``"dropped"``, ``"timeout"``) and only the energy it
actually spent; with no perturbations the timeline is bitwise
identical to the unperturbed simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import NetworkError

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_DROPPED",
    "OUTCOME_TIMEOUT",
    "CLIENT_OUTCOMES",
    "UserTimeline",
    "RoundTimeline",
    "simulate_tdma_round",
]

OUTCOME_OK = "ok"
OUTCOME_DROPPED = "dropped"
OUTCOME_TIMEOUT = "timeout"
CLIENT_OUTCOMES: Tuple[str, ...] = (OUTCOME_OK, OUTCOME_DROPPED, OUTCOME_TIMEOUT)
"""The per-user round outcomes shared with ``ClientUpdate.status``."""


@dataclass(frozen=True)
class UserTimeline:
    """One user's schedule within a TDMA round (all times from round start).

    Attributes:
        device_id: the user's id.
        frequency: CPU operating frequency used for the local update.
        compute_delay: Eq. (4) at ``frequency``.
        compute_end: when the local update finishes (= compute_delay).
        upload_start: when the channel is granted to this user.
        upload_end: when the model upload completes.
        upload_delay: Eq. (7).
        slack: idle wait between compute end and upload start.
        compute_energy: Eq. (5) at ``frequency``.
        upload_energy: Eq. (8).
        outcome: ``"ok"`` for a completed upload, ``"dropped"`` for a
            device lost to a fault (during-compute death or channel
            outage), ``"timeout"`` for one cut off by the round
            deadline. For non-``"ok"`` users the delay/energy fields
            cover only the portion actually executed (a user dead at
            40% of its compute shows 40% of the delay and energy, and
            zero upload cost).
    """

    device_id: int
    frequency: float
    compute_delay: float
    compute_end: float
    upload_start: float
    upload_end: float
    upload_delay: float
    slack: float
    compute_energy: float
    upload_energy: float
    outcome: str = OUTCOME_OK

    @property
    def total_energy(self) -> float:
        """Per-user round energy ``E_cal + E_com``."""
        return self.compute_energy + self.upload_energy

    @property
    def total_delay(self) -> float:
        """Eq. (9) including queueing: time until this user is done."""
        return self.upload_end


@dataclass(frozen=True)
class RoundTimeline:
    """The complete schedule of one TDMA FL round.

    Attributes:
        users: per-user timelines, in upload (channel-grant) order.
        round_delay: Eq. (10) — when the last upload completes.
        total_energy: Eq. (11) — sum of all users' energies.
        total_compute_energy: compute share of ``total_energy``.
        total_upload_energy: upload share of ``total_energy``.
        total_slack: summed idle wait across users.
    """

    users: Tuple[UserTimeline, ...]
    round_delay: float
    total_energy: float
    total_compute_energy: float
    total_upload_energy: float
    total_slack: float

    def by_device(self) -> Dict[int, UserTimeline]:
        """Index the per-user timelines by device id."""
        return {entry.device_id: entry for entry in self.users}

    def outcomes(self) -> Dict[int, str]:
        """Map each device id to its round outcome."""
        return {entry.device_id: entry.outcome for entry in self.users}

    def ids_with_outcome(self, outcome: str) -> Tuple[int, ...]:
        """Device ids with the given outcome, in timeline order."""
        return tuple(
            entry.device_id
            for entry in self.users
            if entry.outcome == outcome
        )

    @property
    def completed_ids(self) -> Tuple[int, ...]:
        """Devices whose upload reached the server, in grant order."""
        return self.ids_with_outcome(OUTCOME_OK)


def _stage_population(
    population: DevicePopulation,
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Dict[int, float],
    payloads: Dict[int, float],
) -> Tuple[List[int], List[float], List[float], List[float], List[float], List[float]]:
    """Vectorized per-device staging quantities, in population order."""
    ids = population.device_ids.tolist()
    if frequencies:
        freqs = np.fromiter(
            (
                frequencies.get(device_id, f_max)
                for device_id, f_max in zip(ids, population.f_max.tolist())
            ),
            dtype=np.float64,
            count=len(population),
        )
    else:
        freqs = population.f_max
    freqs = population.validate_frequencies(freqs)
    compute_delay = population.cycles / freqs
    compute_energy = population.compute_energy(freqs)
    if payloads:
        payload = np.fromiter(
            (payloads.get(device_id, payload_bits) for device_id in ids),
            dtype=np.float64,
            count=len(population),
        )
    else:
        payload = np.float64(payload_bits)
    upload_delay = population.upload_delay(payload, bandwidth_hz)
    upload_energy = population.transmit_power * upload_delay
    return (
        ids,
        freqs.tolist(),
        compute_delay.tolist(),
        compute_energy.tolist(),
        upload_delay.tolist(),
        upload_energy.tolist(),
    )


def _stage_objects(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Dict[int, float],
    payloads: Dict[int, float],
) -> Tuple[List[int], List[float], List[float], List[float], List[float], List[float]]:
    """Scalar per-device staging quantities (object-path oracle)."""
    ids: List[int] = []
    freqs: List[float] = []
    compute_delay: List[float] = []
    compute_energy: List[float] = []
    upload_delay: List[float] = []
    upload_energy: List[float] = []
    for device in devices:  # repro: allow[REP006] scalar oracle for runs without a population snapshot
        freq = frequencies.get(device.device_id, device.cpu.f_max)
        freq = device.cpu.validate_frequency(freq)
        payload = payloads.get(device.device_id, payload_bits)
        ids.append(device.device_id)
        freqs.append(freq)
        compute_delay.append(device.compute_delay(freq))
        compute_energy.append(device.compute_energy(freq))
        upload_delay.append(device.upload_delay(payload, bandwidth_hz))
        upload_energy.append(device.upload_energy(payload, bandwidth_hz))
    return ids, freqs, compute_delay, compute_energy, upload_delay, upload_energy


def simulate_tdma_round(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Optional[Dict[int, float]] = None,
    payloads: Optional[Dict[int, float]] = None,
    *,
    population: Optional[DevicePopulation] = None,
    compute_scale: Optional[Dict[int, float]] = None,
    drop_during: Optional[Dict[int, float]] = None,
    upload_outage: Optional[AbstractSet[int]] = None,
    upload_scale: Optional[Dict[int, float]] = None,
    round_deadline: Optional[float] = None,
) -> RoundTimeline:
    """Simulate one synchronous TDMA round.

    Users compute in parallel at their assigned frequencies, then
    upload one at a time in the order their computations finish (ties
    broken by device id, matching a FIFO channel queue). A user whose
    computation finishes while the channel is busy waits (slack).

    Args:
        devices: the selected user set ``Gamma_j``.
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: the MEC system's resource blocks ``Z`` in Hz.
        frequencies: mapping from device id to operating frequency;
            missing devices run at their ``f_max``. Frequencies are
            validated against each device's range.
        payloads: optional per-device payload override in bits (e.g.
            compressed updates); missing devices use ``payload_bits``.
        population: the selected set as a
            :class:`~repro.devices.DevicePopulation` slice aligned with
            ``devices``. When given, per-device staging (frequency
            validation, Eq. 4/5/7/8) runs as array expressions instead
            of object calls — bitwise identical, O(N) numpy instead of
            O(N) Python — and ``devices`` is not touched.
        compute_scale: straggler multipliers ``>= 1`` per device id;
            the device's compute delay *and* energy stretch by the
            factor (the CPU stays busy at the operating frequency for
            the contended window).
        drop_during: per-device compute progress in ``(0, 1]`` at which
            the device dies: it spends that fraction of its (possibly
            stretched) compute delay and energy, never uploads, and
            never contends for the channel.
        upload_outage: devices whose upload fails at their channel
            grant — full compute energy and slack are spent, no upload
            energy, and the channel is not occupied.
        upload_scale: channel-degradation multipliers ``>= 1`` per
            device id applied to upload delay and energy (the inverse
            of the achieved rate fraction).
        round_deadline: hard per-round deadline in seconds. Users whose
            upload cannot complete by it are cut off with outcome
            ``"timeout"``, charged only the energy of the work executed
            before the cut, and the synchronous round lasts exactly
            until the deadline whenever anyone was cut.

    Returns:
        The full :class:`RoundTimeline`. Perturbed users appear with a
        non-``"ok"`` :attr:`UserTimeline.outcome`; users dead before
        reaching the channel queue are listed after the queued users.
        With every perturbation argument at its default the result is
        bitwise identical to the unperturbed simulation.

    Raises:
        NetworkError: for an empty selection or a non-positive
            ``round_deadline``.
        FrequencyRangeError: if an assigned frequency is out of range.
    """
    if population is None and not devices:
        raise NetworkError("cannot simulate a round with no selected devices")
    if round_deadline is not None and round_deadline <= 0:
        raise NetworkError(
            f"round_deadline must be positive when set, got {round_deadline}"
        )
    frequencies = frequencies or {}
    payloads = payloads or {}
    compute_scale = compute_scale or {}
    drop_during = drop_during or {}
    upload_outage = upload_outage or frozenset()
    upload_scale = upload_scale or {}

    # Stage every device's base quantities — Eq. (4)/(5) at the
    # validated frequency and Eq. (7)/(8) at its payload — as parallel
    # scalar lists. With a population snapshot the staging is one set
    # of array expressions; without one, the object-path loop produces
    # bitwise-identical values. The event loop below never touches a
    # device object either way.
    if population is not None:
        staged_arrays = _stage_population(
            population, payload_bits, bandwidth_hz, frequencies, payloads
        )
    else:
        staged_arrays = _stage_objects(
            devices, payload_bits, bandwidth_hz, frequencies, payloads
        )
    (
        staged_ids,
        staged_freqs,
        staged_compute_delay,
        staged_compute_energy,
        staged_upload_delay,
        staged_upload_energy,
    ) = staged_arrays
    if compute_scale:
        for position, device_id in enumerate(staged_ids):
            slowdown = compute_scale.get(device_id)
            if slowdown is not None:
                staged_compute_delay[position] *= slowdown

    # Channel-grant order: first-come first-served on compute finish.
    order = sorted(
        range(len(staged_ids)),
        key=lambda position: (
            staged_compute_delay[position],
            staged_ids[position],
        ),
    )

    entries: List[UserTimeline] = []
    lost_entries: List[UserTimeline] = []
    channel_free_at = 0.0
    deadline_hit = False
    for position in order:
        device_id = staged_ids[position]
        freq = staged_freqs[position]
        compute_delay = staged_compute_delay[position]
        compute_energy = staged_compute_energy[position]
        slowdown = compute_scale.get(device_id)
        if slowdown is not None:
            compute_energy *= slowdown

        progress = drop_during.get(device_id)
        if progress is not None:
            # Death mid-compute: partial compute cost, no channel use.
            spent = progress * compute_delay
            lost_entries.append(
                UserTimeline(
                    device_id=device_id,
                    frequency=freq,
                    compute_delay=spent,
                    compute_end=spent,
                    upload_start=spent,
                    upload_end=spent,
                    upload_delay=0.0,
                    slack=0.0,
                    compute_energy=progress * compute_energy,
                    upload_energy=0.0,
                    outcome=OUTCOME_DROPPED,
                )
            )
            continue

        if round_deadline is not None and compute_delay >= round_deadline:
            # Still computing when the server cut the round off.
            fraction = round_deadline / compute_delay
            lost_entries.append(
                UserTimeline(
                    device_id=device_id,
                    frequency=freq,
                    compute_delay=round_deadline,
                    compute_end=round_deadline,
                    upload_start=round_deadline,
                    upload_end=round_deadline,
                    upload_delay=0.0,
                    slack=0.0,
                    compute_energy=fraction * compute_energy,
                    upload_energy=0.0,
                    outcome=OUTCOME_TIMEOUT,
                )
            )
            deadline_hit = True
            continue

        upload_start = max(compute_delay, channel_free_at)
        if device_id in upload_outage:
            # The link dies at the grant: no upload cost, channel free.
            entries.append(
                UserTimeline(
                    device_id=device_id,
                    frequency=freq,
                    compute_delay=compute_delay,
                    compute_end=compute_delay,
                    upload_start=upload_start,
                    upload_end=upload_start,
                    upload_delay=0.0,
                    slack=upload_start - compute_delay,
                    compute_energy=compute_energy,
                    upload_energy=0.0,
                    outcome=OUTCOME_DROPPED,
                )
            )
            continue

        if round_deadline is not None and upload_start >= round_deadline:
            # Queued behind the channel until the deadline passed.
            entries.append(
                UserTimeline(
                    device_id=device_id,
                    frequency=freq,
                    compute_delay=compute_delay,
                    compute_end=compute_delay,
                    upload_start=round_deadline,
                    upload_end=round_deadline,
                    upload_delay=0.0,
                    slack=round_deadline - compute_delay,
                    compute_energy=compute_energy,
                    upload_energy=0.0,
                    outcome=OUTCOME_TIMEOUT,
                )
            )
            deadline_hit = True
            continue

        upload_delay = staged_upload_delay[position]
        upload_energy = staged_upload_energy[position]
        degradation = upload_scale.get(device_id)
        if degradation is not None:
            upload_delay *= degradation
            upload_energy *= degradation
        upload_end = upload_start + upload_delay

        if round_deadline is not None and upload_end > round_deadline:
            # Cut off mid-upload: the channel was held until the cut.
            fraction = (round_deadline - upload_start) / upload_delay
            entries.append(
                UserTimeline(
                    device_id=device_id,
                    frequency=freq,
                    compute_delay=compute_delay,
                    compute_end=compute_delay,
                    upload_start=upload_start,
                    upload_end=round_deadline,
                    upload_delay=round_deadline - upload_start,
                    slack=upload_start - compute_delay,
                    compute_energy=compute_energy,
                    upload_energy=fraction * upload_energy,
                    outcome=OUTCOME_TIMEOUT,
                )
            )
            channel_free_at = round_deadline
            deadline_hit = True
            continue

        channel_free_at = upload_end
        entries.append(
            UserTimeline(
                device_id=device_id,
                frequency=freq,
                compute_delay=compute_delay,
                compute_end=compute_delay,
                upload_start=upload_start,
                upload_end=upload_end,
                upload_delay=upload_delay,
                slack=upload_start - compute_delay,
                compute_energy=compute_energy,
                upload_energy=upload_energy,
            )
        )

    entries.extend(lost_entries)
    # The synchronous round lasts until the last successful upload —
    # or exactly until the deadline whenever the server cut anyone off.
    # Devices lost to faults do not gate the round (the FLCC observes
    # the disconnect); if *nothing* survived, the round's window is the
    # time the last doomed device was still spending energy.
    completed_ends = [
        e.upload_end for e in entries if e.outcome == OUTCOME_OK
    ]
    if deadline_hit:
        round_delay = round_deadline
    elif completed_ends:
        round_delay = max(completed_ends)
    else:
        round_delay = max(e.upload_end for e in entries)

    total_compute = sum(e.compute_energy for e in entries)
    total_upload = sum(e.upload_energy for e in entries)
    return RoundTimeline(
        users=tuple(entries),
        round_delay=round_delay,
        total_energy=total_compute + total_upload,
        total_compute_energy=total_compute,
        total_upload_energy=total_upload,
        total_slack=sum(e.slack for e in entries),
    )
