"""TDMA round-timeline simulation.

In the paper's TDMA FL (Fig. 1), all selected users compute their local
updates in parallel, but the MEC uplink serves one uploader at a time:
when a user finishes computing it must wait for the channel to free up
before uploading. The waiting interval is that user's *slack time* —
the quantity HELCFL's Algorithm 3 converts into energy savings by
slowing the CPU so the update finishes exactly when the channel frees.

:func:`simulate_tdma_round` reproduces this timeline exactly for any
assignment of operating frequencies, yielding per-user compute/upload
windows, slack, and energies, plus the synchronized round delay
(Eq. 10) and round energy (Eq. 11). It is both the execution engine of
the FL trainer and the independent oracle the tests use to verify
Algorithm 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.device import UserDevice
from repro.errors import NetworkError

__all__ = ["UserTimeline", "RoundTimeline", "simulate_tdma_round"]


@dataclass(frozen=True)
class UserTimeline:
    """One user's schedule within a TDMA round (all times from round start).

    Attributes:
        device_id: the user's id.
        frequency: CPU operating frequency used for the local update.
        compute_delay: Eq. (4) at ``frequency``.
        compute_end: when the local update finishes (= compute_delay).
        upload_start: when the channel is granted to this user.
        upload_end: when the model upload completes.
        upload_delay: Eq. (7).
        slack: idle wait between compute end and upload start.
        compute_energy: Eq. (5) at ``frequency``.
        upload_energy: Eq. (8).
    """

    device_id: int
    frequency: float
    compute_delay: float
    compute_end: float
    upload_start: float
    upload_end: float
    upload_delay: float
    slack: float
    compute_energy: float
    upload_energy: float

    @property
    def total_energy(self) -> float:
        """Per-user round energy ``E_cal + E_com``."""
        return self.compute_energy + self.upload_energy

    @property
    def total_delay(self) -> float:
        """Eq. (9) including queueing: time until this user is done."""
        return self.upload_end


@dataclass(frozen=True)
class RoundTimeline:
    """The complete schedule of one TDMA FL round.

    Attributes:
        users: per-user timelines, in upload (channel-grant) order.
        round_delay: Eq. (10) — when the last upload completes.
        total_energy: Eq. (11) — sum of all users' energies.
        total_compute_energy: compute share of ``total_energy``.
        total_upload_energy: upload share of ``total_energy``.
        total_slack: summed idle wait across users.
    """

    users: Tuple[UserTimeline, ...]
    round_delay: float
    total_energy: float
    total_compute_energy: float
    total_upload_energy: float
    total_slack: float

    def by_device(self) -> Dict[int, UserTimeline]:
        """Index the per-user timelines by device id."""
        return {entry.device_id: entry for entry in self.users}


def simulate_tdma_round(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Optional[Dict[int, float]] = None,
    payloads: Optional[Dict[int, float]] = None,
) -> RoundTimeline:
    """Simulate one synchronous TDMA round.

    Users compute in parallel at their assigned frequencies, then
    upload one at a time in the order their computations finish (ties
    broken by device id, matching a FIFO channel queue). A user whose
    computation finishes while the channel is busy waits (slack).

    Args:
        devices: the selected user set ``Gamma_j``.
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: the MEC system's resource blocks ``Z`` in Hz.
        frequencies: mapping from device id to operating frequency;
            missing devices run at their ``f_max``. Frequencies are
            validated against each device's range.
        payloads: optional per-device payload override in bits (e.g.
            compressed updates); missing devices use ``payload_bits``.

    Returns:
        The full :class:`RoundTimeline`.

    Raises:
        NetworkError: for an empty selection.
        FrequencyRangeError: if an assigned frequency is out of range.
    """
    if not devices:
        raise NetworkError("cannot simulate a round with no selected devices")
    frequencies = frequencies or {}
    payloads = payloads or {}

    staged: List[Tuple[float, int, UserDevice, float]] = []
    for device in devices:
        freq = frequencies.get(device.device_id, device.cpu.f_max)
        freq = device.cpu.validate_frequency(freq)
        compute_delay = device.compute_delay(freq)
        staged.append((compute_delay, device.device_id, device, freq))

    # Channel-grant order: first-come first-served on compute finish.
    staged.sort(key=lambda item: (item[0], item[1]))

    entries: List[UserTimeline] = []
    channel_free_at = 0.0
    for compute_delay, device_id, device, freq in staged:
        device_payload = payloads.get(device_id, payload_bits)
        upload_delay = device.upload_delay(device_payload, bandwidth_hz)
        upload_start = max(compute_delay, channel_free_at)
        upload_end = upload_start + upload_delay
        channel_free_at = upload_end
        entries.append(
            UserTimeline(
                device_id=device_id,
                frequency=freq,
                compute_delay=compute_delay,
                compute_end=compute_delay,
                upload_start=upload_start,
                upload_end=upload_end,
                upload_delay=upload_delay,
                slack=upload_start - compute_delay,
                compute_energy=device.compute_energy(freq),
                upload_energy=device.upload_energy(
                    device_payload, bandwidth_hz
                ),
            )
        )

    total_compute = sum(e.compute_energy for e in entries)
    total_upload = sum(e.upload_energy for e in entries)
    return RoundTimeline(
        users=tuple(entries),
        round_delay=max(e.upload_end for e in entries),
        total_energy=total_compute + total_upload,
        total_compute_energy=total_compute,
        total_upload_energy=total_upload,
        total_slack=sum(e.slack for e in entries),
    )
