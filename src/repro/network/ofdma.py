"""OFDMA round-timeline simulation (counterfactual to the paper's TDMA).

The paper's MEC system is TDMA: the full ``Z`` resource blocks serve
one uploader at a time, producing the queueing slack Algorithm 3
exploits. The natural counterfactual is OFDMA: the ``Z`` Hz are split
into equal sub-bands, every selected user uploads *simultaneously* the
moment its computation finishes, and nobody waits.

Under OFDMA there is no slack, so HELCFL's frequency determination has
nothing to reclaim — the ablation bench
``benchmarks/bench_ext_ofdma.py`` quantifies exactly that, validating
that the paper's energy mechanism is a property of TDMA scheduling,
not of DVFS in general.

The simulator reuses :class:`~repro.network.tdma.RoundTimeline` so
TDMA and OFDMA rounds are directly comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.devices.device import UserDevice
from repro.errors import NetworkError
from repro.network.tdma import RoundTimeline, UserTimeline

__all__ = ["simulate_ofdma_round"]


def simulate_ofdma_round(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    frequencies: Optional[Dict[int, float]] = None,
    payloads: Optional[Dict[int, float]] = None,
) -> RoundTimeline:
    """Simulate one synchronous round over an OFDMA uplink.

    The bandwidth is divided into ``len(devices)`` equal sub-bands for
    the whole round; each user computes at its assigned frequency and
    uploads on its own sub-band immediately afterwards (zero slack by
    construction, but each upload is ``len(devices)`` times slower than
    a full-band TDMA upload).

    Args:
        devices: the selected user set.
        payload_bits: nominal model payload ``C_model`` in bits.
        bandwidth_hz: total uplink bandwidth ``Z`` in Hz.
        frequencies: per-device CPU frequency (default ``f_max``).
        payloads: optional per-device payload override in bits.

    Returns:
        A :class:`~repro.network.tdma.RoundTimeline`; ``slack`` is 0
        for every user.
    """
    if not devices:
        raise NetworkError("cannot simulate a round with no selected devices")
    frequencies = frequencies or {}
    payloads = payloads or {}
    subband_hz = bandwidth_hz / len(devices)

    entries: List[UserTimeline] = []
    for device in devices:
        freq = frequencies.get(device.device_id, device.cpu.f_max)
        freq = device.cpu.validate_frequency(freq)
        compute_delay = device.compute_delay(freq)
        device_payload = payloads.get(device.device_id, payload_bits)
        upload_delay = device.upload_delay(device_payload, subband_hz)
        entries.append(
            UserTimeline(
                device_id=device.device_id,
                frequency=freq,
                compute_delay=compute_delay,
                compute_end=compute_delay,
                upload_start=compute_delay,
                upload_end=compute_delay + upload_delay,
                upload_delay=upload_delay,
                slack=0.0,
                compute_energy=device.compute_energy(freq),
                upload_energy=device.upload_energy(device_payload, subband_hz),
            )
        )

    entries.sort(key=lambda e: (e.compute_end, e.device_id))
    total_compute = sum(e.compute_energy for e in entries)
    total_upload = sum(e.upload_energy for e in entries)
    return RoundTimeline(
        users=tuple(entries),
        round_delay=max(e.upload_end for e in entries),
        total_energy=total_compute + total_upload,
        total_compute_energy=total_compute,
        total_upload_energy=total_upload,
        total_slack=0.0,
    )
