"""Channel-gain models.

The paper treats each user's channel gain ``h_q`` as a constant inside
Eq. (6). These models generate such gains: a fixed value (the paper's
implicit setting), a log-distance path-loss model for
position-dependent heterogeneity, and Rayleigh fading for per-round
variation (extension experiments).
"""

from __future__ import annotations

import math

from repro.errors import NetworkError
from repro.rng import SeedLike, ensure_generator

__all__ = ["FixedChannel", "PathLossChannel", "RayleighFadingChannel"]


class FixedChannel:
    """A constant channel gain."""

    def __init__(self, gain: float = 1.0) -> None:
        if gain <= 0:
            raise NetworkError(f"gain must be positive, got {gain}")
        self.gain = float(gain)

    def sample_gain(self) -> float:
        """Return the (constant) amplitude gain ``h``."""
        return self.gain


class PathLossChannel:
    """Log-distance path loss: ``h = (d0 / d)^(exponent / 2)``.

    The square root appears because the paper's Eq. (6) squares the
    amplitude gain ``h``; power attenuation follows ``(d0/d)^exponent``.

    Args:
        distance_m: transmitter-receiver distance; must be positive.
        reference_distance_m: distance at which the gain is 1.
        exponent: path-loss exponent (2 free space, 3-4 urban).
    """

    def __init__(
        self,
        distance_m: float,
        reference_distance_m: float = 1.0,
        exponent: float = 3.0,
    ) -> None:
        if distance_m <= 0 or reference_distance_m <= 0:
            raise NetworkError(
                f"distances must be positive, got d={distance_m}, "
                f"d0={reference_distance_m}"
            )
        if exponent <= 0:
            raise NetworkError(f"exponent must be positive, got {exponent}")
        self.distance_m = float(distance_m)
        self.reference_distance_m = float(reference_distance_m)
        self.exponent = float(exponent)

    def sample_gain(self) -> float:
        """Return the deterministic path-loss amplitude gain."""
        ratio = self.reference_distance_m / self.distance_m
        return math.pow(ratio, self.exponent / 2.0)


class RayleighFadingChannel:
    """Rayleigh-faded gain around a mean amplitude (extension).

    Each :meth:`sample_gain` call draws a fresh fade, modelling
    per-round small-scale fading on top of a mean gain.

    Args:
        mean_gain: average amplitude gain.
        seed: fade-draw seed.
    """

    def __init__(self, mean_gain: float = 1.0, seed: SeedLike = None) -> None:
        if mean_gain <= 0:
            raise NetworkError(f"mean_gain must be positive, got {mean_gain}")
        self.mean_gain = float(mean_gain)
        self._rng = ensure_generator(seed)
        # Rayleigh(scale) has mean scale * sqrt(pi / 2).
        self._scale = self.mean_gain / math.sqrt(math.pi / 2.0)

    def sample_gain(self) -> float:
        """Draw one Rayleigh-faded amplitude gain (never exactly 0)."""
        return max(float(self._rng.rayleigh(self._scale)), 1e-12)
