"""The runtime engine turning a :class:`FaultPlan` into per-round effects.

:class:`FaultInjector` is consulted by the trainer once per round with
the selected device ids and returns a :class:`RoundFaults` — the
resolved, composed set of perturbations the round must suffer. The
resolution is *pure*: decisions depend only on ``(plan seed, spec
position, round index, device id)``, never on evaluation order or on
prior rounds, so the same plan and seed reproduce the same chaos under
every execution backend and across resumed runs.

Composition rules when several specs hit one device in one round:

* straggler slowdowns multiply (two independent 2x contentions make a
  4x one);
* channel degradations multiply on the delay axis the same way;
* terminal compute faults dominate: a before-compute dropout shadows
  everything else, a during-compute dropout shadows upload faults
  (the device never reaches the channel);
* a channel outage shadows a degradation on the same upload;
* battery death composes with everything (the battery empties at the
  round's end regardless of what else happened).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import (
    MODE_DEGRADE,
    MODE_OUTAGE,
    PHASE_BEFORE_COMPUTE,
    BatteryDeathFault,
    ChannelFault,
    DropoutFault,
    FaultPlan,
    StragglerFault,
)
from repro.rng import derive_seed, ensure_generator

__all__ = ["InjectedFault", "RoundFaults", "FaultInjector"]


@dataclass(frozen=True)
class InjectedFault:
    """One fault that fired: the payload of a ``fault_injected`` event.

    Attributes:
        device_id: the victim device.
        fault: the spec ``kind`` (``"dropout"``, ``"straggler"``,
            ``"channel"``, ``"battery_death"``).
        detail: the phase/mode qualifier (e.g. ``"before_compute"``,
            ``"degrade"``); empty for battery death.
        magnitude: the fault's scalar — dropout progress, straggler
            slowdown, channel rate scale; 1.0 where meaningless.
        spec_index: position of the firing spec inside the plan.
    """

    device_id: int
    fault: str
    detail: str
    magnitude: float
    spec_index: int


@dataclass(frozen=True)
class RoundFaults:
    """The composed fault effects of one round.

    Attributes:
        round_index: the 1-based round these effects apply to.
        injected: every fault that fired, in (spec, device) order.
        drop_before: devices that never start their local update.
        drop_during: device id to compute-progress fraction at death.
        compute_scale: device id to composed straggler slowdown.
        upload_outage: devices whose upload the channel kills.
        upload_scale: device id to composed upload-delay multiplier
            (``1 / rate_scale``; always ``> 1``).
        battery_death: devices whose battery empties this round.
    """

    round_index: int
    injected: Tuple[InjectedFault, ...] = ()
    drop_before: FrozenSet[int] = frozenset()
    drop_during: Dict[int, float] = field(default_factory=dict)
    compute_scale: Dict[int, float] = field(default_factory=dict)
    upload_outage: FrozenSet[int] = frozenset()
    upload_scale: Dict[int, float] = field(default_factory=dict)
    battery_death: FrozenSet[int] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.injected)

    @property
    def lost_before_upload(self) -> FrozenSet[int]:
        """Devices whose update cannot reach the server this round."""
        return (
            self.drop_before
            | frozenset(self.drop_during)
            | self.upload_outage
        )


class FaultInjector:
    """Resolves a :class:`FaultPlan` round by round.

    Args:
        plan: the fault plan to execute. An empty plan resolves every
            round to an empty :class:`RoundFaults`, and the trainer
            guarantees that path is bitwise identical to running with
            no injector at all.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"plan must be a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan

    def _fires(self, spec_index: int, round_index: int, device_id: int) -> bool:
        """Deterministic coin flip for one armed (spec, round, device)."""
        probability = self.plan.faults[spec_index].probability
        if probability >= 1.0:
            return True
        rng = ensure_generator(
            derive_seed(
                self.plan.seed,
                "fault",
                str(spec_index),
                str(round_index),
                str(device_id),
            )
        )
        return float(rng.random()) < probability

    def plan_round(
        self, round_index: int, selected_ids: Sequence[int]
    ) -> RoundFaults:
        """Resolve the faults striking ``round_index``.

        Args:
            round_index: 1-based FL round index ``j``.
            selected_ids: ids of the round's selected devices, in
                selection order (untargeted specs strike any of them).
        """
        if round_index <= 0:
            raise ConfigurationError(
                f"round_index must be positive, got {round_index}"
            )
        if self.plan.is_empty:
            return RoundFaults(round_index=round_index)

        selected = list(selected_ids)
        selected_set = set(selected)
        injected = []
        drop_before = set()
        drop_during: Dict[int, float] = {}
        compute_scale: Dict[int, float] = {}
        upload_outage = set()
        upload_scale: Dict[int, float] = {}
        battery_death = set()

        for spec_index, spec in enumerate(self.plan.faults):
            if not spec.armed_in_round(round_index):
                continue
            if spec.device_id is not None:
                if spec.device_id not in selected_set:
                    continue
                targets = [spec.device_id]
            else:
                targets = selected
            for device_id in targets:
                if not self._fires(spec_index, round_index, device_id):
                    continue
                if isinstance(spec, DropoutFault):
                    if spec.phase == PHASE_BEFORE_COMPUTE:
                        drop_before.add(device_id)
                    else:
                        drop_during.setdefault(device_id, spec.progress)
                    detail, magnitude = spec.phase, spec.progress
                elif isinstance(spec, StragglerFault):
                    compute_scale[device_id] = (
                        compute_scale.get(device_id, 1.0) * spec.slowdown
                    )
                    detail, magnitude = "slowdown", spec.slowdown
                elif isinstance(spec, ChannelFault):
                    if spec.mode == MODE_OUTAGE:
                        upload_outage.add(device_id)
                    else:
                        upload_scale[device_id] = (
                            upload_scale.get(device_id, 1.0)
                            / spec.rate_scale
                        )
                    detail, magnitude = spec.mode, spec.rate_scale
                elif isinstance(spec, BatteryDeathFault):
                    battery_death.add(device_id)
                    detail, magnitude = "", 1.0
                else:  # pragma: no cover - registry and branches agree
                    raise ConfigurationError(
                        f"unhandled fault type {type(spec).__name__}"
                    )
                injected.append(
                    InjectedFault(
                        device_id=device_id,
                        fault=spec.kind,
                        detail=detail,
                        magnitude=float(magnitude),
                        spec_index=spec_index,
                    )
                )

        # Precedence: a device that never computes has no other effects;
        # a device that dies computing never reaches the channel; an
        # upload outage shadows a degradation.
        for dead in drop_before:
            drop_during.pop(dead, None)
            compute_scale.pop(dead, None)
            upload_outage.discard(dead)
            upload_scale.pop(dead, None)
        for dying in drop_during:
            upload_outage.discard(dying)
            upload_scale.pop(dying, None)
        for out in upload_outage:
            upload_scale.pop(out, None)

        return RoundFaults(
            round_index=round_index,
            injected=tuple(injected),
            drop_before=frozenset(drop_before),
            drop_during=drop_during,
            compute_scale=compute_scale,
            upload_outage=frozenset(upload_outage),
            upload_scale=upload_scale,
            battery_death=frozenset(battery_death),
        )
