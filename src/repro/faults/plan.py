"""Composable, declarative fault plans.

A :class:`FaultPlan` describes *what can go wrong* in a training run:
which devices drop out (before or during their local update), which
ones straggle (compute-delay multipliers), which uploads the channel
kills or degrades, and which batteries die mid-round. Plans are pure
data — frozen dataclasses with a JSON round-trip — so a chaos scenario
can live in version control next to the experiment that runs it and
two runs of the same plan are comparable line by line.

Each :class:`FaultSpec` targets either one device (``device_id``) or
every selected device (``device_id=None``), either specific rounds
(``rounds``) or every round (``rounds=None``), and fires either always
(``probability=1``) or per-``(spec, round, device)`` with a
deterministic seeded coin flip (see
:class:`~repro.faults.injector.FaultInjector`). An empty plan is a
strict no-op: the trainer's outputs are bitwise identical to running
without a plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FaultSpec",
    "DropoutFault",
    "StragglerFault",
    "ChannelFault",
    "BatteryDeathFault",
    "FaultPlan",
    "FAULT_TYPES",
    "PHASE_BEFORE_COMPUTE",
    "PHASE_DURING_COMPUTE",
    "MODE_OUTAGE",
    "MODE_DEGRADE",
]

PHASE_BEFORE_COMPUTE = "before_compute"
PHASE_DURING_COMPUTE = "during_compute"
MODE_OUTAGE = "outage"
MODE_DEGRADE = "degrade"


@dataclass(frozen=True)
class FaultSpec:
    """Common targeting knobs shared by every fault type.

    Attributes:
        device_id: target device; ``None`` targets every selected
            device of the matching rounds.
        rounds: 1-based round indices the fault is armed in; ``None``
            arms it every round.
        probability: chance the armed fault actually fires for one
            ``(round, device)`` pair. Draws come from a generator
            derived from the plan seed, the spec's position, the round,
            and the device id, so firing is deterministic and
            independent of evaluation order.
    """

    kind: ClassVar[str] = "fault"

    device_id: Optional[int] = None
    rounds: Optional[Tuple[int, ...]] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.device_id is not None and self.device_id < 0:
            raise ConfigurationError(
                f"device_id must be non-negative, got {self.device_id}"
            )
        if self.rounds is not None:
            object.__setattr__(
                self, "rounds", tuple(int(r) for r in self.rounds)
            )
            if not self.rounds:
                raise ConfigurationError(
                    "rounds must be None (every round) or non-empty"
                )
            if any(r <= 0 for r in self.rounds):
                raise ConfigurationError(
                    f"rounds must be positive, got {self.rounds}"
                )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability}"
            )

    def armed_in_round(self, round_index: int) -> bool:
        """Whether this spec is armed in 1-based round ``round_index``."""
        return self.rounds is None or round_index in self.rounds

    def to_dict(self) -> dict:
        """JSON-friendly form: ``{"type": kind, **non-default fields}``."""
        payload: dict = {"type": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = list(value) if isinstance(value, tuple) else value
        return payload


@dataclass(frozen=True)
class DropoutFault(FaultSpec):
    """A device vanishes from the round.

    Attributes:
        phase: ``"before_compute"`` — the device never starts its local
            update (no compute energy, and the FLCC re-plans the DVFS
            slack schedule over the survivors); ``"during_compute"`` —
            the device dies partway through training (it burns
            ``progress`` of its compute energy, never uploads, and
            never contends for the channel).
        progress: fraction of the local update completed before a
            during-compute death, in ``(0, 1]``.
    """

    kind = "dropout"

    phase: str = PHASE_BEFORE_COMPUTE
    progress: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.phase not in (PHASE_BEFORE_COMPUTE, PHASE_DURING_COMPUTE):
            raise ConfigurationError(
                f"phase must be {PHASE_BEFORE_COMPUTE!r} or "
                f"{PHASE_DURING_COMPUTE!r}, got {self.phase!r}"
            )
        if not 0.0 < self.progress <= 1.0:
            raise ConfigurationError(
                f"progress must be in (0, 1], got {self.progress}"
            )


@dataclass(frozen=True)
class StragglerFault(FaultSpec):
    """A device's local update takes ``slowdown`` times longer.

    Models background load / thermal throttling: the CPU stays busy at
    the operating frequency for the stretched window, so both the
    compute delay (Eq. 4) and the compute energy (Eq. 5) scale by the
    factor. A straggler first eats its own DVFS slack; past that it
    delays its channel grant and every successor's (the Algorithm 3
    schedule was planned without knowing about the slowdown).

    Attributes:
        slowdown: compute-delay multiplier, ``>= 1``.
    """

    kind = "straggler"

    slowdown: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown must be >= 1, got {self.slowdown}"
            )


@dataclass(frozen=True)
class ChannelFault(FaultSpec):
    """The TDMA upload path fails or degrades for a device.

    Attributes:
        mode: ``"outage"`` — the upload fails at the device's channel
            grant (full compute energy spent, no upload energy, the
            channel is not occupied, the update is lost);
            ``"degrade"`` — the achieved uplink rate drops to
            ``rate_scale`` of nominal, stretching the upload delay and
            energy (Eqs. 7–8) by ``1 / rate_scale``.
        rate_scale: achieved fraction of the nominal uplink rate for
            ``"degrade"``, in ``(0, 1]``; ignored for ``"outage"``.
    """

    kind = "channel"

    mode: str = MODE_OUTAGE
    rate_scale: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in (MODE_OUTAGE, MODE_DEGRADE):
            raise ConfigurationError(
                f"mode must be {MODE_OUTAGE!r} or {MODE_DEGRADE!r}, "
                f"got {self.mode!r}"
            )
        if not 0.0 < self.rate_scale <= 1.0:
            raise ConfigurationError(
                f"rate_scale must be in (0, 1], got {self.rate_scale}"
            )


@dataclass(frozen=True)
class BatteryDeathFault(FaultSpec):
    """A device's battery dies mid-round.

    The device completes its round work, but its battery empties at
    the end of the round (``Battery.kill``), so its update is dropped
    from aggregation — and with ``enforce_battery`` it stays dead for
    the rest of the run. Devices without a battery still lose the
    round's update (sudden shutdown).
    """

    kind = "battery_death"


FAULT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (DropoutFault, StragglerFault, ChannelFault, BatteryDeathFault)
}
"""Registry mapping each fault ``kind`` to its dataclass."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault specs.

    Attributes:
        seed: roots every probabilistic firing decision (specs with
            ``probability=1`` never consult it).
        faults: the specs, in declaration order. Effects on one device
            compose: straggler slowdowns multiply, channel degradations
            multiply, and terminal faults (dropout, outage) take
            precedence over degradations.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"faults must be FaultSpec instances, got "
                    f"{type(spec).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (a guaranteed no-op)."""
        return not self.faults

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly form: ``{"seed": ..., "faults": [...]}``."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> FaultPlan:
        """Rebuild a plan from :meth:`to_dict` output.

        Raises:
            ConfigurationError: for an unknown fault ``type`` or
                unexpected spec fields.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        specs = []
        for index, raw in enumerate(payload.get("faults", [])):
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"fault #{index} must be a JSON object, got "
                    f"{type(raw).__name__}"
                )
            raw = dict(raw)
            kind = raw.pop("type", None)
            if kind not in FAULT_TYPES:
                raise ConfigurationError(
                    f"fault #{index} has unknown type {kind!r}; expected "
                    f"one of {tuple(FAULT_TYPES)}"
                )
            spec_cls = FAULT_TYPES[kind]
            known = {f.name for f in fields(spec_cls)}
            unknown = set(raw) - known
            if unknown:
                raise ConfigurationError(
                    f"fault #{index} ({kind}) has unknown fields "
                    f"{sorted(unknown)}; expected a subset of {sorted(known)}"
                )
            if raw.get("rounds") is not None:
                raw["rounds"] = tuple(raw["rounds"])
            specs.append(spec_cls(**raw))
        return cls(seed=int(payload.get("seed", 0)), faults=tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        """Rebuild a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> FaultPlan:
        """Read a plan from a JSON file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        """Write the plan to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
