"""Deterministic fault injection for chaos experiments.

HELCFL assumes battery-powered heterogeneous devices in an MEC system,
yet an idealized reproduction lets every selected device finish every
round. This package models what real deployments must survive —
dropouts, stragglers, channel outages and degradations, and batteries
dying mid-round — as declarative, seeded :class:`FaultPlan` data
resolved round by round through a :class:`FaultInjector`.

All randomness flows through :mod:`repro.rng` from the plan seed, so a
chaos run is exactly as reproducible as a clean one: the same plan and
seed produce the identical degraded
:class:`~repro.fl.history.TrainingHistory` under every execution
backend. An *empty* plan is a strict no-op — the trainer's outputs are
bitwise identical to running without fault injection at all.

Typical use::

    from repro.faults import DropoutFault, FaultPlan

    plan = FaultPlan(seed=11, faults=(
        DropoutFault(probability=0.1),             # any device, any round
        DropoutFault(device_id=3, rounds=(5,)),    # targeted
    ))
    trainer = FederatedTrainer(..., faults=plan)

From the CLI the same is ``python -m repro run helcfl --faults
plan.json`` (see ``examples/fault_plan.json``).
"""

from repro.faults.injector import FaultInjector, InjectedFault, RoundFaults
from repro.faults.plan import (
    FAULT_TYPES,
    MODE_DEGRADE,
    MODE_OUTAGE,
    PHASE_BEFORE_COMPUTE,
    PHASE_DURING_COMPUTE,
    BatteryDeathFault,
    ChannelFault,
    DropoutFault,
    FaultPlan,
    FaultSpec,
    StragglerFault,
)

__all__ = [
    "FaultSpec",
    "DropoutFault",
    "StragglerFault",
    "ChannelFault",
    "BatteryDeathFault",
    "FaultPlan",
    "FAULT_TYPES",
    "PHASE_BEFORE_COMPUTE",
    "PHASE_DURING_COMPUTE",
    "MODE_OUTAGE",
    "MODE_DEGRADE",
    "FaultInjector",
    "InjectedFault",
    "RoundFaults",
]
