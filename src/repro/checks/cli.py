"""Command-line entry point: ``python -m repro.checks [paths]``.

Exit codes: ``0`` clean, ``1`` at least one error-severity finding,
``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.checks.engine import (
    DEFAULT_CACHE_PATH,
    CheckReport,
    check_paths,
)
from repro.checks.rules import ALL_RULES
from repro.errors import ConfigurationError

__all__ = ["main", "build_parser"]

_DEFAULT_PATHS = ["src/repro"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.checks`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "Domain-aware static analysis in two phases: per-file rules "
            "— determinism (REP001), event-schema coverage (REP002), "
            "unit discipline (REP003), wall-clock hygiene (REP004), "
            "concurrency safety (REP005), hot-path vectorization "
            "(REP006), param pickling (REP007), suppression hygiene "
            "(REP012) — then cross-file dataflow rules over a project "
            "index: buffer aliasing (REP008), shared-memory lifecycle "
            "(REP009), unit dataflow (REP010), RNG provenance (REP011). "
            "Suppress a finding inline with "
            "'# repro: allow[RULE-ID] justification' (the justification "
            "is mandatory; REP012 itself cannot be suppressed)."
        ),
        epilog=(
            "exit codes: 0 = no error-severity findings; "
            "1 = at least one error-severity finding; "
            "2 = usage or I/O error (unknown rule id, missing path, "
            "unwritable --output)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=_DEFAULT_PATHS,
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help=(
            "report format (default: human); 'github' emits workflow "
            "commands that surface as inline PR annotations"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_CACHE_PATH,
        default=None,
        help=(
            "incremental cache file (default when given without an "
            f"argument: {DEFAULT_CACHE_PATH}); unchanged files are "
            "served from the cache, and warm runs reproduce cold-run "
            "reports byte for byte"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title, and rationale, then exit",
    )
    return parser


def _list_rules() -> str:
    lines: List[str] = []
    for rule_id, rule_cls in ALL_RULES.items():
        lines.append(f"{rule_id}  {rule_cls.title}")
        lines.append(f"        {rule_cls.rationale}")
    return "\n".join(lines)


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _render(report: CheckReport, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if fmt == "github":
        lines = [f.render_github() for f in report.findings]
        lines.append(
            f"{len(report.findings)} finding"
            f"{'' if len(report.findings) == 1 else 's'} in "
            f"{report.files_checked} files"
        )
        return "\n".join(lines)
    return "\n".join(report.render_lines())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the checker; return the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rule_ids = (
        [r for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        report = check_paths(
            args.paths, rules=rule_ids, cache_path=args.cache
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        _emit(_render(report, args.format), args.output)
    except OSError as exc:
        print(f"error: cannot write report: {exc}", file=sys.stderr)
        return 2
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
