"""Structured findings produced by the static-analysis rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SEVERITIES", "Finding"]

SEVERITIES = ("error", "warning")
"""Recognized severities, most severe first. Only ``error`` findings
fail the run; ``warning`` findings are reported but exit 0."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, rule_id)`` so reports are stable
    regardless of rule execution order.

    Attributes:
        path: the checked file, as given on the command line.
        line: 1-based source line of the violation.
        col: 0-based column offset.
        rule_id: the rule that fired (e.g. ``"REP001"``).
        message: human-readable description of the violation.
        severity: one of :data:`SEVERITIES`.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.line < 0:
            raise ConfigurationError(f"line must be non-negative, got {self.line}")

    def to_dict(self) -> dict:
        """JSON-friendly form used by ``--format json`` and the cache."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (incremental-cache rehydration)."""
        return cls(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            rule_id=data["rule"],
            message=data["message"],
            severity=data["severity"],
        )

    def render(self) -> str:
        """One-line human form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command form (inline PR annotations)."""
        command = "error" if self.severity == "error" else "warning"
        return (
            f"::{command} file={self.path},line={self.line},"
            f"col={self.col + 1},title={self.rule_id}::{self.message}"
        )
