"""Per-file context handed to every rule: AST, module identity, scope.

The rules are *domain* rules — most only make sense inside the
``repro`` package proper, not in tests or benchmarks (a benchmark may
legitimately read the wall clock; a test may legitimately compare a
float for equality in an assertion). :func:`build_context` therefore
classifies each file:

* ``module`` — the dotted module name when the file sits inside an
  importable ``repro`` package tree (walking up through ``__init__.py``
  parents), else ``None``;
* ``is_test`` — true for anything under a ``tests``/``benchmarks``
  directory or named ``test_*.py``/``bench_*.py``/``conftest.py``.

Tests of the checker itself override both via :func:`build_context`'s
keyword arguments, so fixture snippets can impersonate in-domain
modules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = ["ModuleContext", "build_context", "parse_suppressions"]

_TEST_DIRS = frozenset({"tests", "benchmarks"})
_TEST_PREFIXES = ("test_", "bench_")

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to inspect one source file.

    Attributes:
        path: the file path as reported in findings.
        source: the file's text.
        tree: the parsed :class:`ast.Module`.
        module: dotted module name (``"repro.fl.trainer"``) when the
            file belongs to a ``repro`` package tree, else ``None``.
        is_test: whether the file is test/benchmark code (domain rules
            skip those).
        suppressions: mapping from line number to the rule ids allowed
            on that line (``"*"`` allows every rule).
        file_dir: directory containing the file (cross-module rules
            resolve siblings against it).
    """

    path: str
    source: str
    tree: ast.Module
    module: Optional[str] = None
    is_test: bool = False
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_dir: Optional[Path] = None
    index: Optional[object] = None
    """Phase-2 :class:`repro.checks.project.ProjectIndex`; ``None``
    while phase-1 (per-file) rules run."""

    @property
    def in_repro(self) -> bool:
        """True when the file belongs to the ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is allowed on ``line`` by a comment."""
        allowed = self.suppressions.get(line)
        if not allowed:
            return False
        return rule_id in allowed or "*" in allowed


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Extract ``# repro: allow[RULE-ID]`` comments, by line number.

    The bracket accepts a comma-separated list (``allow[REP001,
    REP003]``) or ``*``; anything after the closing bracket is the
    required human justification and is ignored by the parser.
    """
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = frozenset(
            token.strip().upper() if token.strip() != "*" else "*"
            for token in match.group(1).split(",")
            if token.strip()
        )
        if ids:
            table[lineno] = ids
    return table


def _resolve_module(path: Path) -> Optional[str]:
    """Best-effort dotted module name for files in a package tree."""
    if path.suffix != ".py":
        return None
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        return None
    return ".".join(parts)


def _classify_test(path: Path) -> bool:
    parts: Tuple[str, ...] = path.parts
    if any(part in _TEST_DIRS for part in parts[:-1]):
        return True
    name = path.name
    return name == "conftest.py" or name.startswith(_TEST_PREFIXES)


def build_context(
    path,
    source: Optional[str] = None,
    *,
    module: Optional[str] = None,
    is_test: Optional[bool] = None,
) -> ModuleContext:
    """Parse ``path`` (or ``source``) into a :class:`ModuleContext`.

    Args:
        path: file path; read from disk when ``source`` is ``None``.
        source: override the file contents (checker self-tests).
        module: override the dotted module classification.
        is_test: override the test/benchmark classification.

    Raises:
        SyntaxError: when the source does not parse (the engine
            converts this into a ``REP000`` finding).
    """
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    resolved_module = module if module is not None else _resolve_module(path)
    resolved_is_test = is_test if is_test is not None else _classify_test(path)
    return ModuleContext(
        path=str(path),
        source=source,
        tree=tree,
        module=resolved_module,
        is_test=resolved_is_test,
        suppressions=parse_suppressions(source),
        file_dir=path.parent if path.parent != Path("") else Path("."),
    )
