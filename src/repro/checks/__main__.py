"""``python -m repro.checks`` dispatch."""

import sys

from repro.checks.cli import main

sys.exit(main())
