"""Check engine: discover files, run rules, apply suppressions.

:func:`check_paths` is the CLI's workhorse; :func:`check_source` is
the in-memory variant the checker's own tests use (it can impersonate
any module/test classification). Unparsable files surface as ``REP000``
findings rather than crashing the run, so one syntax error doesn't
hide every other finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.checks.context import build_context
from repro.checks.findings import Finding
from repro.checks.rules import get_rules
from repro.checks.rules.base import Rule

__all__ = ["CheckReport", "check_paths", "check_source", "iter_python_files"]

_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".pytest_cache",
    ".ruff_cache",
    "dist",
    "build",
    ".eggs",
}


@dataclass(frozen=True)
class CheckReport:
    """The outcome of one checker run.

    Attributes:
        findings: surviving findings, sorted by location.
        suppressed: findings silenced by ``# repro: allow[...]``
            comments (kept for reporting).
        files_checked: number of files parsed and rule-checked.
    """

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...] = ()
    files_checked: int = 0

    @property
    def errors(self) -> Tuple[Finding, ...]:
        """The subset of findings that fail the run."""
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any error-severity finding survived."""
        return 1 if self.errors else 0

    def to_dict(self) -> dict:
        """JSON document emitted by ``--format json``."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def render_lines(self) -> List[str]:
        """Human-readable report lines."""
        lines = [f.render() for f in self.findings]
        noun = "file" if self.files_checked == 1 else "files"
        summary = (
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'} "
            f"({len(self.suppressed)} suppressed) in "
            f"{self.files_checked} {noun}"
        )
        lines.append(summary)
        return lines


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Raises:
        FileNotFoundError: when a given path does not exist.
    """
    seen = set()
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such path: {path}")
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                collected.append(candidate)
    return iter(collected)


def _run_rules(ctx, rules: Sequence[Rule]):
    kept: List[Finding] = []
    silenced: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.line, finding.rule_id):
                silenced.append(finding)
            else:
                kept.append(finding)
    return kept, silenced


def check_source(
    source: str,
    path: str = "<string>",
    *,
    module: Optional[str] = None,
    is_test: bool = False,
    rules: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Check one in-memory source blob (the checker's own test API).

    Args:
        source: Python source text.
        path: reported path for findings.
        module: dotted module name to impersonate (scopes domain
            rules); ``None`` leaves path-based classification.
        is_test: classify the blob as test/benchmark code.
        rules: restrict to these rule ids.
    """
    rule_objs = get_rules(rules)
    try:
        ctx = build_context(path, source, module=module, is_test=is_test)
    except SyntaxError as exc:
        return CheckReport(
            findings=(_syntax_finding(path, exc),), files_checked=1
        )
    kept, silenced = _run_rules(ctx, rule_objs)
    return CheckReport(
        findings=tuple(sorted(kept)),
        suppressed=tuple(sorted(silenced)),
        files_checked=1,
    )


def check_paths(
    paths: Sequence,
    *,
    rules: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Check every Python file under ``paths``; return the report."""
    rule_objs = get_rules(rules)
    kept: List[Finding] = []
    silenced: List[Finding] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        try:
            ctx = build_context(file_path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            kept.append(_syntax_finding(str(file_path), exc))
            continue
        file_kept, file_silenced = _run_rules(ctx, rule_objs)
        kept.extend(file_kept)
        silenced.extend(file_silenced)
    return CheckReport(
        findings=tuple(sorted(kept)),
        suppressed=tuple(sorted(silenced)),
        files_checked=files_checked,
    )


def _syntax_finding(path: str, exc: Exception) -> Finding:
    line = getattr(exc, "lineno", 0) or 0
    return Finding(
        path=path,
        line=line,
        col=0,
        rule_id="REP000",
        message=f"file does not parse: {exc}",
        severity="error",
    )
