"""Check engine: discover files, index the project, run rules.

The engine runs in two phases:

* **phase 1** parses every file, runs the per-file rules (the ones with
  ``needs_index = False``), and condenses each module into a
  serializable :class:`~repro.checks.project.ModuleSummary`;
* **phase 2** aggregates the summaries into a
  :class:`~repro.checks.project.ProjectIndex` and re-visits every file
  with the cross-file :class:`DataflowRule` family, the index attached
  to the context.

Both phases are incrementally cached (``cache_path``): phase-1 results
are keyed by each file's content hash, phase-2 results by the content
hash *plus* the index fingerprint — so editing one module re-analyzes
only that file unless its public summary changed, and a warm run is
guaranteed to reproduce the cold run's findings bit for bit (the
:class:`CheckReport` JSON contains no cache metadata; cache counters
live on the report object only).

:func:`check_paths` is the CLI's workhorse; :func:`check_source` is
the in-memory variant the checker's own tests use (it can impersonate
any module/test classification, and builds a single-module index so
dataflow rules run too). Unparsable files surface as ``REP000``
findings rather than crashing the run, so one syntax error doesn't
hide every other finding.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.checks.context import ModuleContext, build_context
from repro.checks.findings import Finding
from repro.checks.project import ModuleSummary, ProjectIndex, summarize_module
from repro.checks.rules import get_rules
from repro.checks.rules.base import Rule

__all__ = [
    "CheckReport",
    "DEFAULT_CACHE_PATH",
    "check_paths",
    "check_source",
    "iter_python_files",
]

_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".pytest_cache",
    ".ruff_cache",
    "dist",
    "build",
    ".eggs",
}

DEFAULT_CACHE_PATH = ".repro-checks-cache.json"
"""Where ``--cache`` (without an argument) keeps the incremental state."""

_CACHE_SCHEMA = 1


@dataclass(frozen=True)
class CheckReport:
    """The outcome of one checker run.

    Attributes:
        findings: surviving findings, sorted by location.
        suppressed: findings silenced by ``# repro: allow[...]``
            comments (kept for reporting).
        files_checked: number of files parsed and rule-checked.
        cache_hits: files whose phase-1 analysis was served from the
            incremental cache (diagnostic only — deliberately absent
            from :meth:`to_dict` so cold and warm runs emit identical
            JSON).
    """

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...] = ()
    files_checked: int = 0
    cache_hits: int = 0

    @property
    def errors(self) -> Tuple[Finding, ...]:
        """The subset of findings that fail the run."""
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any error-severity finding survived."""
        return 1 if self.errors else 0

    def to_dict(self) -> dict:
        """JSON document emitted by ``--format json``."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def render_lines(self) -> List[str]:
        """Human-readable report lines."""
        lines = [f.render() for f in self.findings]
        noun = "file" if self.files_checked == 1 else "files"
        summary = (
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'} "
            f"({len(self.suppressed)} suppressed) in "
            f"{self.files_checked} {noun}"
        )
        lines.append(summary)
        return lines


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Raises:
        FileNotFoundError: when a given path does not exist.
    """
    seen = set()
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such path: {path}")
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                collected.append(candidate)
    return iter(collected)


def _run_rules(ctx: ModuleContext, rules: Sequence[Rule]):
    kept: List[Finding] = []
    silenced: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if rule.suppressible and ctx.is_suppressed(
                finding.line, finding.rule_id
            ):
                silenced.append(finding)
            else:
                kept.append(finding)
    return kept, silenced


def check_source(
    source: str,
    path: str = "<string>",
    *,
    module: Optional[str] = None,
    is_test: bool = False,
    rules: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Check one in-memory source blob (the checker's own test API).

    The blob gets a single-module :class:`ProjectIndex` built from
    itself, so dataflow rules resolve the blob's own functions and
    classes (cross-file behavior is exercised via :func:`check_paths`
    on a temporary tree).

    Args:
        source: Python source text.
        path: reported path for findings.
        module: dotted module name to impersonate (scopes domain
            rules); ``None`` leaves path-based classification.
        is_test: classify the blob as test/benchmark code.
        rules: restrict to these rule ids.
    """
    rule_objs = get_rules(rules)
    try:
        ctx = build_context(path, source, module=module, is_test=is_test)
    except SyntaxError as exc:
        return CheckReport(
            findings=(_syntax_finding(path, exc),), files_checked=1
        )
    summary = summarize_module(
        ctx.tree, ctx.module, path, is_package=path.endswith("__init__.py")
    )
    ctx = dataclasses.replace(ctx, index=ProjectIndex([summary]))
    kept, silenced = _run_rules(ctx, rule_objs)
    return CheckReport(
        findings=tuple(sorted(kept)),
        suppressed=tuple(sorted(silenced)),
        files_checked=1,
    )


# -- incremental cache ----------------------------------------------------
def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _load_cache(cache_path, rules_key: List[str]) -> Dict[str, dict]:
    """File records from a previous run, or ``{}`` when unusable."""
    try:
        data = json.loads(Path(cache_path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("schema") != _CACHE_SCHEMA:
        return {}
    if data.get("rules") != rules_key:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(cache_path, rules_key: List[str], files: Dict[str, dict]) -> None:
    payload = {
        "schema": _CACHE_SCHEMA,
        "rules": rules_key,
        "files": files,
    }
    tmp = f"{cache_path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, cache_path)
    except OSError:
        # A read-only checkout degrades to a cold run, never a failure.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _pack(kept: Sequence[Finding], silenced: Sequence[Finding]) -> dict:
    return {
        "findings": [f.to_dict() for f in kept],
        "suppressed": [f.to_dict() for f in silenced],
    }


def _unpack(packed: dict):
    return (
        [Finding.from_dict(d) for d in packed.get("findings", [])],
        [Finding.from_dict(d) for d in packed.get("suppressed", [])],
    )


class _FileState:
    """One file's journey through the two phases."""

    def __init__(self, key: str, source: str, record: dict) -> None:
        self.key = key
        self.source = source
        self.record = record
        self.ctx: Optional[ModuleContext] = None

    def context(self) -> ModuleContext:
        """(Re)build the parse context; phase 2 calls this lazily so a
        cache-hit file is only re-parsed when the project changed."""
        if self.ctx is None:
            self.ctx = build_context(self.key, self.source)
        return self.ctx


def check_paths(
    paths: Sequence,
    *,
    rules: Optional[Sequence[str]] = None,
    cache_path: Optional[str] = None,
) -> CheckReport:
    """Check every Python file under ``paths``; return the report.

    Args:
        paths: files and/or directories to expand.
        rules: restrict to these rule ids (default: all shipped rules).
        cache_path: JSON file holding incremental state between runs;
            ``None`` disables caching. Warm runs produce reports whose
            :meth:`CheckReport.to_dict` is byte-identical to a cold run.
    """
    rule_objs = get_rules(rules)
    phase1_rules = [r for r in rule_objs if not r.needs_index]
    phase2_rules = [r for r in rule_objs if r.needs_index]
    rules_key = sorted(r.rule_id for r in rule_objs)
    cache = _load_cache(cache_path, rules_key) if cache_path else {}

    kept: List[Finding] = []
    silenced: List[Finding] = []
    states: List[_FileState] = []
    files_checked = 0
    cache_hits = 0

    # Phase 1: per-file rules + module summaries, content-hash cached.
    for file_path in iter_python_files(paths):
        files_checked += 1
        key = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            kept.append(_syntax_finding(key, exc))
            continue
        digest = _hash_source(source)
        cached = cache.get(key)
        if cached is not None and cached.get("hash") == digest:
            cache_hits += 1
            states.append(_FileState(key, source, dict(cached)))
            continue
        record = {"hash": digest, "summary": None, "phase2": None}
        state = _FileState(key, source, record)
        try:
            ctx = state.context()
        except SyntaxError as exc:
            record["phase1"] = _pack([_syntax_finding(key, exc)], [])
        else:
            record["summary"] = summarize_module(
                ctx.tree,
                ctx.module,
                key,
                is_package=file_path.name == "__init__.py",
            ).to_dict()
            record["phase1"] = _pack(*_run_rules(ctx, phase1_rules))
        states.append(state)

    # Phase 2: aggregate summaries, run the dataflow rules against the
    # project index; results are valid while the fingerprint holds.
    index = ProjectIndex(
        ModuleSummary.from_dict(state.record["summary"])
        for state in states
        if state.record["summary"] is not None
    )
    fingerprint = index.fingerprint
    for state in states:
        record = state.record
        if record["summary"] is None:
            record["phase2"] = {
                "fingerprint": fingerprint,
                "findings": [],
                "suppressed": [],
            }
        elif (
            not record.get("phase2")
            or record["phase2"].get("fingerprint") != fingerprint
        ):
            ctx = dataclasses.replace(state.context(), index=index)
            packed = _pack(*_run_rules(ctx, phase2_rules))
            packed["fingerprint"] = fingerprint
            record["phase2"] = packed
        for packed in (record["phase1"], record["phase2"]):
            file_kept, file_silenced = _unpack(packed)
            kept.extend(file_kept)
            silenced.extend(file_silenced)

    if cache_path is not None:
        _save_cache(
            cache_path,
            rules_key,
            {state.key: state.record for state in states},
        )
    return CheckReport(
        findings=tuple(sorted(kept)),
        suppressed=tuple(sorted(silenced)),
        files_checked=files_checked,
        cache_hits=cache_hits,
    )


def _syntax_finding(path: str, exc: Exception) -> Finding:
    line = getattr(exc, "lineno", 0) or 0
    return Finding(
        path=path,
        line=line,
        col=0,
        rule_id="REP000",
        message=f"file does not parse: {exc}",
        severity="error",
    )
