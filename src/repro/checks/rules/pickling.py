"""REP007 — no parameter-vector pickling in the round hot path.

The round fan-out (``repro.fl.execution``, ``repro.fl.shm``, and the
trainer's round loop) moves one flat float64 vector per client per
direction. Packing such a vector into a task or result literal hands it
to the process pool's pickler — ``2 * Q * P * 8`` serialized bytes per
round — which is exactly the copy the :class:`~repro.fl.shm.SharedArrayPool`
zero-copy transport exists to eliminate. New code must route parameter
vectors through the shared blocks; the plain process pool's deliberate
pickle fallback carries an explicit ``# repro: allow[REP007] <why>``
suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

__all__ = ["ParamPicklingRule"]

# Bare names that conventionally hold one flat parameter vector.
_PARAM_NAMES = frozenset(
    {"global_params", "flat_params", "trained_params", "param_vector"}
)

# Attribute accesses (``update.params``, ``u.params``) that read one.
_PARAM_ATTRS = frozenset({"params", "flat_params"})

_HOT_MODULES = frozenset(
    {"repro.fl.execution", "repro.fl.shm", "repro.fl.trainer"}
)

_MESSAGE = (
    "parameter vector {what!r} packed into a task/result literal in the "
    "round hot path; it will be pickled per client per round — route it "
    "through the SharedArrayPool (repro.fl.shm), or mark a deliberate "
    "pickle fallback with '# repro: allow[REP007] <why>'"
)


class ParamPicklingRule(Rule):
    """Round hot path ships scalars; parameter vectors go via shm."""

    rule_id = "REP007"
    title = "zero-copy rounds: no parameter-vector pickling in the hot path"
    rationale = (
        "the execution backends fan one flat float64 vector per client "
        "per direction out to worker processes; putting that vector "
        "into a pickled task or result tuple serializes 2*Q*P*8 bytes "
        "per round, the exact copy the shared-memory transport removes. "
        "The plain process pool's pickle fallback is the only sanctioned "
        "exception and carries an explicit suppression."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """The round fan-out modules, library code only."""
        return not ctx.is_test and ctx.module in _HOT_MODULES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag tuple/list literals carrying a parameter vector."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Tuple, ast.List)):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # unpacking targets don't pickle anything
            for element in node.elts:
                what = _param_vector_name(element)
                if what is not None:
                    yield self.finding(
                        ctx, element, _MESSAGE.format(what=what)
                    )

    # (module-level helper below keeps the rule class symmetrical with
    # the other rules)


def _param_vector_name(node: ast.AST) -> Optional[str]:
    """The offending name when ``node`` reads a parameter vector."""
    if isinstance(node, ast.Name) and node.id in _PARAM_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _PARAM_ATTRS:
        return node.attr
    return None
