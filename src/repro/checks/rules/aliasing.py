"""REP008 — scratch buffers never escape their forward/backward call.

The ``repro.nn`` hot paths route per-step temporaries through
``Layer._scratch_buffer`` and numpy ``out=`` targets so a fixed batch
shape allocates nothing (the PR-7 speedup). The contract is strict:
a scratch array's contents are unspecified the moment the next
``forward``/``backward`` runs, so any reference that outlives the call
is a silent corruption bug — the classic symptom is a loss curve that
depends on *when* a history entry is read. Three escapes are flagged:

* ``return`` of a scratch-backed array (the caller receives a view
  that the producing layer will overwrite);
* ``self.<attr> = <scratch>`` (the alias survives the call — and with
  the project index, storing the *return value of another module's*
  scratch-returning function is caught the same way);
* ``np.matmul``/``np.dot`` with ``out=`` aliasing one of its operands
  (BLAS kernels read and write the same memory — results are garbage,
  not merely stale).

Laundering through ``.copy()`` / ``np.ascontiguousarray`` clears the
taint. Deliberate same-step caches (a forward pass staging data for the
matching backward) carry an ``# repro: allow[REP008] <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.dataflow import DataflowRule

__all__ = ["BufferAliasingRule"]

_MATMUL_LEAVES = frozenset({"matmul", "dot", "einsum"})


class BufferAliasingRule(DataflowRule):
    """No scratch-buffer escapes, no aliased ``out=`` in matmul/dot."""

    rule_id = "REP008"
    title = "buffer aliasing: scratch buffers never escape their call"
    rationale = (
        "Layer._scratch_buffer and out= targets are overwritten by the "
        "next forward/backward; a returned or self-stored alias reads "
        "back unspecified data later, and matmul with out= aliasing an "
        "operand corrupts the product in place. Same-step caches need "
        "an explicit justified suppression."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Library code inside the ``repro`` package."""
        return super().applies(ctx) and ctx.in_repro

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag scratch escapes and aliased matmul ``out=`` targets."""
        index = self.index(ctx)
        for analysis, _class_name in self.analyses(ctx):
            for ret in analysis.returns:
                # Direct escapes only: re-returning another function's
                # scratch-backed result is reported at that producer.
                if ret.facts.scratch and not index.returns_scratch(
                    ret.facts.call_target
                ):
                    yield self.finding(
                        ctx,
                        ret.node,
                        "returns a _scratch_buffer-backed array; its "
                        "contents are overwritten by the next forward/"
                        "backward — return a copy, or justify with "
                        "'# repro: allow[REP008] <why>'",
                    )
            for store in analysis.stores:
                if not store.facts.scratch:
                    continue
                if store.facts.call_target is not None and index.returns_scratch(
                    store.facts.call_target
                ):
                    yield self.finding(
                        ctx,
                        store.node,
                        f"stores the result of {store.facts.call_target}() "
                        f"on self.{store.target}, but that callee returns "
                        "a layer-owned scratch buffer; copy before storing",
                    )
                else:
                    yield self.finding(
                        ctx,
                        store.node,
                        f"stores a scratch-backed array on self."
                        f"{store.target}; the buffer is reused by the next "
                        "forward/backward — store a copy, or justify a "
                        "same-step cache with '# repro: allow[REP008] <why>'",
                    )
            yield from self._check_out_aliasing(ctx, analysis)

    def _check_out_aliasing(self, ctx, analysis) -> Iterator[Finding]:
        for fact in analysis.calls:
            if fact.leaf not in _MATMUL_LEAVES:
                continue
            out = next(
                (
                    kw.value
                    for kw in fact.node.keywords
                    if kw.arg == "out"
                ),
                None,
            )
            if out is None:
                continue
            out_dump = ast.dump(out)
            for arg in fact.node.args:
                if ast.dump(arg) == out_dump:
                    yield self.finding(
                        ctx,
                        fact.node,
                        f"{fact.leaf}() with out= aliasing its operand "
                        f"{ast.unparse(arg)!r}: BLAS kernels read and "
                        "write the same memory, producing garbage — use "
                        "a distinct output buffer",
                    )
                    break
