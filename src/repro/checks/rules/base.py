"""Rule interface and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding

__all__ = ["Rule", "attribute_chain", "call_name"]


class Rule:
    """One invariant, checked file by file.

    Subclasses set :attr:`rule_id`, :attr:`title`, and
    :attr:`rationale` (surfaced by ``--list-rules``), override
    :meth:`applies` to scope themselves, and implement :meth:`check`.
    """

    rule_id: str = "REP000"
    title: str = ""
    rationale: str = ""
    severity: str = "error"
    needs_index: bool = False
    """Whether the rule consumes the phase-1 :class:`ProjectIndex`
    (dataflow rules); the engine runs index-free rules first and only
    re-analyzes a file for indexed rules when the project changed."""
    suppressible: bool = True
    """Whether ``# repro: allow[...]`` comments can silence the rule
    (the suppression-hygiene rule itself is not negotiable)."""

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` (default: library code only)."""
        return not ctx.is_test

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield one :class:`Finding` per violation in ``ctx``."""
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; ``None`` otherwise."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def call_name(node: ast.Call) -> Optional[str]:
    """The called name for ``f(...)`` / trailing attr for ``a.b.f(...)``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None
