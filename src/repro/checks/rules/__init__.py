"""Rule registry: every shipped rule, addressable by id."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.checks.rules.aliasing import BufferAliasingRule
from repro.checks.rules.base import Rule
from repro.checks.rules.concurrency import ConcurrencySafetyRule
from repro.checks.rules.determinism import DeterminismRule
from repro.checks.rules.events import EventSchemaRule
from repro.checks.rules.hotpath import HotPathLoopRule
from repro.checks.rules.pickling import ParamPicklingRule
from repro.checks.rules.rng_provenance import RngProvenanceRule
from repro.checks.rules.shm_lifecycle import ShmLifecycleRule
from repro.checks.rules.span_lifecycle import SpanLifecycleRule
from repro.checks.rules.suppression import SuppressionHygieneRule
from repro.checks.rules.units import UnitDisciplineRule
from repro.checks.rules.units_flow import UnitFlowRule
from repro.checks.rules.wallclock import WallClockRule
from repro.errors import ConfigurationError

__all__ = ["ALL_RULES", "get_rules", "Rule"]

ALL_RULES: Dict[str, type] = {
    rule_cls.rule_id: rule_cls
    for rule_cls in (
        DeterminismRule,
        EventSchemaRule,
        UnitDisciplineRule,
        WallClockRule,
        ConcurrencySafetyRule,
        HotPathLoopRule,
        ParamPicklingRule,
        BufferAliasingRule,
        ShmLifecycleRule,
        UnitFlowRule,
        RngProvenanceRule,
        SuppressionHygieneRule,
        SpanLifecycleRule,
    )
}
"""Mapping from rule id to rule class, in id order."""


def get_rules(only: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate rules, optionally restricted to the ids in ``only``.

    Raises:
        ConfigurationError: when ``only`` names an unknown rule id.
    """
    if only is None:
        return [cls() for cls in ALL_RULES.values()]
    selected: List[Rule] = []
    for rule_id in only:
        key = rule_id.strip().upper()
        if key not in ALL_RULES:
            raise ConfigurationError(
                f"unknown rule id {rule_id!r}; known: {sorted(ALL_RULES)}"
            )
        selected.append(ALL_RULES[key]())
    return selected
