"""REP009 — every shared-memory acquisition reaches close()/unlink().

``multiprocessing.shared_memory`` blocks are kernel objects: a
``SharedMemory(create=True)`` (or a ``SharedArrayPool``) that never
reaches ``close()``/``unlink()`` leaks a ``/dev/shm`` segment past
interpreter exit — the exact failure mode the PR-7 zero-copy transport
guards against with its ``atexit`` backstop. The checker enforces the
discipline structurally:

* a handle bound to a local must be closed in the same function, be
  handed off (returned, stored, passed on), or be managed by a
  ``with``/``closing(...)`` item;
* a close that only happens on *some* control-flow paths (inside an
  ``if`` while the acquisition is unconditional) is flagged — move it
  into a ``finally``;
* a handle stored on ``self`` shifts the obligation to the class: some
  teardown method (``close``/``shutdown``/``__exit__``/``__del__``/…)
  must release resources, or the class registers an ``atexit`` hook;
* with the project index, acquiring through *another module's* factory
  (any function whose chased summary returns an owned acquisition)
  carries the same obligations at the call site;
* a module-level acquisition needs a module-level ``atexit`` backstop.

Attach-only handles (``SharedMemory(name=...)`` without
``create=True``) are a mapping, not an ownership, and are exempt.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.dataflow import DataflowRule

__all__ = ["ShmLifecycleRule"]


class ShmLifecycleRule(DataflowRule):
    """Owned shared-memory handles reach close() on every path."""

    rule_id = "REP009"
    title = "shm lifecycle: acquisitions reach close()/unlink()"
    rationale = (
        "A SharedMemory(create=True) or SharedArrayPool that never "
        "reaches close()/unlink() leaks a /dev/shm segment past "
        "interpreter exit; conditional closes leak on the untaken "
        "path. Ownership may be handed off, but some owner must "
        "close, and classes holding handles need a teardown method "
        "or an atexit backstop."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag unclosed, conditionally closed, and orphaned handles."""
        class_closers = self._collect_class_teardowns(ctx)
        for analysis, class_name in self.analyses(ctx):
            closed_names = {c.name for c in analysis.closes}
            unconditional = {
                c.name
                for c in analysis.closes
                if not c.conditional or c.in_finally
            }
            returned = {
                ret.node.value.id
                for ret in analysis.returns
                if hasattr(ret.node.value, "id")
            }
            for acq in analysis.acquisitions:
                if acq.in_with:
                    continue
                if acq.attr is not None:
                    yield from self._check_attr_store(
                        ctx, acq, class_name, class_closers, analysis
                    )
                    continue
                if acq.name is None:
                    yield self.finding(
                        ctx,
                        acq.node,
                        "shared-memory acquisition is not bound to any "
                        "name; the handle can never be closed or "
                        "unlinked",
                    )
                    continue
                if acq.name in returned or acq.name in analysis.escaped:
                    continue  # ownership handed off
                if acq.name not in closed_names:
                    yield self.finding(
                        ctx,
                        acq.node,
                        f"shared-memory handle {acq.name!r} never reaches "
                        "close()/unlink() in this function and does not "
                        "escape; the /dev/shm segment leaks",
                    )
                elif acq.name not in unconditional and not acq.conditional:
                    yield self.finding(
                        ctx,
                        acq.node,
                        f"shared-memory handle {acq.name!r} is closed "
                        "only on some control-flow paths; move the "
                        "close()/unlink() into a finally block",
                    )

    def _collect_class_teardowns(self, ctx) -> dict:
        """Per-class: does any teardown method release a resource?"""
        from repro.checks.project import CLOSER_METHOD_NAMES

        closers: dict = {}
        for analysis, class_name in self.analyses(ctx):
            if class_name is None:
                continue
            info = closers.setdefault(
                class_name, {"teardown": False, "atexit": False}
            )
            if analysis.has_atexit:
                info["atexit"] = True
            if analysis.name in CLOSER_METHOD_NAMES and (
                analysis.closes
                or analysis.attr_closes
                or analysis.self_close_calls
            ):
                info["teardown"] = True
        return closers

    def _check_attr_store(
        self, ctx, acq, class_name, class_closers, analysis
    ) -> Iterator[Finding]:
        if class_name is None:
            # Module-level ``SOMETHING.attr = acquisition`` — out of
            # scope for the class obligation; require atexit.
            if not analysis.has_atexit:
                yield self.finding(
                    ctx,
                    acq.node,
                    "module-level shared-memory acquisition without an "
                    "atexit backstop; register a cleanup hook or own "
                    "the handle in a closeable object",
                )
            return
        info = class_closers.get(
            class_name, {"teardown": False, "atexit": False}
        )
        if not info["teardown"] and not info["atexit"]:
            yield self.finding(
                ctx,
                acq.node,
                f"class {class_name!r} stores a shared-memory handle on "
                f"self.{acq.attr} but defines no teardown (close/"
                "shutdown/__exit__/__del__ releasing it) and registers "
                "no atexit backstop",
            )
