"""REP003 — unit-suffixed quantities obey dimensional discipline.

The paper's physics lives in names: Eq. 5's CPU frequencies are
``*_hz``, Eq. 7's payloads are ``*_bits``, Eqs. 10–14's delays are
``*_seconds``, and Eqs. 9/11's energies are ``*_joules``. Nothing in
Python checks those dimensions, so two silent bug classes slip
through: float equality against a unit-carrying quantity (timeline
arithmetic accumulates rounding error, so ``delay_seconds == 1.5``
is a latent flake), and addition/subtraction across different units
(``compute_seconds + bandwidth_hz`` type-checks and is always wrong).
This rule flags both.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

# Canonical home is repro.checks.project (the phase-1 index shares the
# suffix table without importing the rules package); re-exported here
# for compatibility.
from repro.checks.project import UNIT_SUFFIXES, unit_suffix

__all__ = ["UnitDisciplineRule", "unit_suffix", "UNIT_SUFFIXES"]


def _node_unit(node: ast.AST) -> Optional[str]:
    """Unit suffix of a Name/Attribute expression's terminal identifier."""
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    return None


def _node_label(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return "<expr>"


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


class UnitDisciplineRule(Rule):
    """No float equality on, and no cross-unit add/sub between,
    ``_hz``/``_bits``/``_seconds``/``_joules`` quantities."""

    rule_id = "REP003"
    title = "unit discipline on _hz/_bits/_seconds/_joules names"
    rationale = (
        "The cost model's dimensions (Eq. 5 cycles/Hz, Eq. 7 bits, "
        "Eqs. 10-14 seconds, Eqs. 9/11 joules) exist only as name "
        "suffixes; float-equality on them is numerically fragile and "
        "cross-unit addition is always a physics bug."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag float equality and cross-unit add/sub on unit names."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_binop(ctx, node)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target_unit = _node_unit(node.target)
                value_unit = _node_unit(node.value)
                if (
                    target_unit
                    and value_unit
                    and target_unit != value_unit
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"augmented {_node_label(node.target)!r} "
                        f"({target_unit}) with {_node_label(node.value)!r} "
                        f"({value_unit}): different units never add",
                    )

    def _check_compare(self, ctx, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for unit_side, other in ((left, right), (right, left)):
                unit = _node_unit(unit_side)
                if unit is None:
                    continue
                if _is_float_literal(other):
                    yield self.finding(
                        ctx,
                        node,
                        f"float equality on {_node_label(unit_side)!r} "
                        f"({unit}): physical quantities accumulate "
                        "rounding error — compare with a tolerance "
                        "(math.isclose / np.isclose)",
                    )
                    break
            else:
                left_unit, right_unit = _node_unit(left), _node_unit(right)
                if left_unit and right_unit and left_unit != right_unit:
                    yield self.finding(
                        ctx,
                        node,
                        f"comparing {_node_label(left)!r} ({left_unit}) "
                        f"with {_node_label(right)!r} ({right_unit}): "
                        "different units are never comparable",
                    )

    def _check_binop(self, ctx, node: ast.BinOp) -> Iterator[Finding]:
        left_unit = _node_unit(node.left)
        right_unit = _node_unit(node.right)
        if left_unit and right_unit and left_unit != right_unit:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield self.finding(
                ctx,
                node,
                f"{_node_label(node.left)!r} ({left_unit}) {op} "
                f"{_node_label(node.right)!r} ({right_unit}): "
                "different units never add or subtract",
            )
