"""REP010 — units of measure propagate correctly across call edges.

REP003 checks unit suffixes where two *names* meet in one expression;
it cannot see a mismatch that crosses a call. The cost model is full of
such edges: Eq. 4–11 quantities are produced in ``repro.energy`` /
``repro.network`` / ``repro.devices`` (``*_seconds`` delays,
``*_joules`` energies, ``*_bits`` payloads, ``*_hz`` bandwidths) and
consumed modules away. With the project index, every resolved call
site is dimension-checked:

* an argument whose inferred unit differs from the callee's
  unit-suffixed parameter (``upload_delay(bandwidth_hz, payload_bits)``
  with the operands swapped type-checks in Python and is always wrong);
* an assignment binding a call result to a name of a different unit
  (``total_seconds = tx_energy_joules(...)``);
* a function whose name declares a unit but whose return expression
  carries another;
* addition/subtraction where at least one operand's unit arrives
  through a call or a local alias — the cases REP003's name-only view
  cannot reach.

Units are inferred from name suffixes at the source (the annotated
quantities in the cost-model modules) and propagated through local
assignments and chased function returns. Unknown units stay silent —
the rule only fires when both sides are known and disagree.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.dataflow import DataflowRule
from repro.checks.rules.units import unit_suffix

__all__ = ["UnitFlowRule"]


def _direct_unit(node: ast.AST) -> Optional[str]:
    """Unit visible from the bare terminal name (REP003's territory)."""
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    return None


class UnitFlowRule(DataflowRule):
    """Dimensional analysis over resolved call edges and local flow."""

    rule_id = "REP010"
    title = "unit dataflow: dimensions survive call edges"
    rationale = (
        "The Eq. 4-11 delay/energy budget is correct only if seconds, "
        "joules, bits, and hertz stay themselves across module "
        "boundaries; a swapped argument or a mis-united return "
        "type-checks in Python and silently rescales every downstream "
        "claim. REP003 sees one expression; this rule sees the call "
        "graph."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag unit mismatches at calls, binds, returns, and add/sub."""
        index = self.index(ctx)
        for analysis, _class_name in self.analyses(ctx):
            yield from self._check_call_args(ctx, index, analysis)
            yield from self._check_binds(ctx, analysis)
            yield from self._check_returns(ctx, analysis)
            yield from self._check_arithmetic(ctx, analysis)

    def _check_call_args(self, ctx, index, analysis) -> Iterator[Finding]:
        for fact in analysis.calls:
            summary = index.function(fact.target)
            if summary is None or not summary.param_units:
                continue
            pairs = []
            for position, arg in enumerate(fact.node.args):
                if isinstance(arg, ast.Starred):
                    break
                if position < len(summary.params):
                    pairs.append((summary.params[position], arg))
            for keyword in fact.node.keywords:
                if keyword.arg in summary.params:
                    pairs.append((keyword.arg, keyword.value))
            for param, arg in pairs:
                expected = summary.param_units.get(param)
                if expected is None:
                    continue
                got = analysis.classify(arg).unit
                if got is not None and got != expected:
                    yield self.finding(
                        ctx,
                        arg,
                        f"argument {ast.unparse(arg)!r} carries {got} but "
                        f"parameter {param!r} of {fact.target}() expects "
                        f"{expected}",
                    )

    def _check_binds(self, ctx, analysis) -> Iterator[Finding]:
        for bind in [*analysis.name_binds, *analysis.stores]:
            declared = unit_suffix(bind.target)
            got = bind.facts.unit
            if declared is None or got is None or got == declared:
                continue
            prefix = "self." if bind.is_self else ""
            yield self.finding(
                ctx,
                bind.node,
                f"binds a {got} value to {prefix}{bind.target!r} "
                f"({declared}); rename the target or convert the value",
            )

    def _check_returns(self, ctx, analysis) -> Iterator[Finding]:
        declared = unit_suffix(analysis.name)
        if declared is None:
            return
        for ret in analysis.returns:
            got = ret.facts.unit
            if got is not None and got != declared:
                yield self.finding(
                    ctx,
                    ret.node,
                    f"function {analysis.name!r} declares {declared} but "
                    f"this return carries {got}",
                )

    def _check_arithmetic(self, ctx, analysis) -> Iterator[Finding]:
        if analysis.is_module_level:
            roots = [
                stmt
                for stmt in analysis.node.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        else:
            roots = [analysis.node]
        for root in roots:
            for node in ast.walk(root):
                if not isinstance(node, ast.BinOp) or not isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    continue
                left = analysis.classify(node.left).unit
                right = analysis.classify(node.right).unit
                if left is None or right is None or left == right:
                    continue
                if (
                    _direct_unit(node.left) is not None
                    and _direct_unit(node.right) is not None
                ):
                    continue  # both visible to REP003 — one report is enough
                op = "+" if isinstance(node.op, ast.Add) else "-"
                yield self.finding(
                    ctx,
                    node,
                    f"{ast.unparse(node.left)!r} ({left}) {op} "
                    f"{ast.unparse(node.right)!r} ({right}): different "
                    "units never add or subtract (unit inferred through "
                    "assignments/calls)",
                )
