"""REP004 — simulated time never reads the wall clock.

Every second in the reproduction is *simulated*: round delays come
from Eq. 10's TDMA timeline, deadlines from constraint (14). If
library code reads the real clock (``time.time``, ``perf_counter``,
``datetime.now``), traces stop replaying deterministically and the
simulated timeline silently couples to host speed. The only sanctioned
wall-clock user is :mod:`repro.obs` (stage timers measure *our* code,
not the simulation, and are documented as observational only).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule, attribute_chain

__all__ = ["WallClockRule"]

_BANNED: Dict[str, Tuple[str, ...]] = {
    "time": (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    ),
    "datetime": ("now", "utcnow", "today"),
}

_OBS_PACKAGE = "repro.obs"


class WallClockRule(Rule):
    """No real-clock reads outside ``repro.obs``."""

    rule_id = "REP004"
    title = "wall-clock hygiene: simulated time only outside repro.obs"
    rationale = (
        "Round delays are Eq. 10's simulated TDMA timeline; reading "
        "the host clock in library code couples results to machine "
        "speed and breaks deterministic trace replay. repro.obs stage "
        "timers are the one sanctioned (observational) exception."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Library code outside the ``repro.obs`` package."""
        if ctx.is_test:
            return False
        module = ctx.module or ""
        return not (
            module == _OBS_PACKAGE or module.startswith(_OBS_PACKAGE + ".")
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag real-clock imports and calls."""
        time_aliases = {"time"}
        datetime_roots = {"datetime"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" and alias.asname:
                        time_aliases.add(alias.asname)
                    if alias.name == "datetime" and alias.asname:
                        datetime_roots.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, time_aliases, datetime_roots
                )

    def _check_import_from(self, ctx, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED["time"]:
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock import time.{alias.name}: simulated "
                        "time must come from the timeline model (Eq. 10); "
                        "only repro.obs may time real execution",
                    )

    def _check_call(
        self, ctx, node: ast.Call, time_aliases, datetime_roots
    ) -> Iterator[Finding]:
        chain = attribute_chain(node.func)
        if not chain or len(chain) < 2:
            return
        root, leaf = chain[0], chain[-1]
        if root in time_aliases and len(chain) == 2 and leaf in _BANNED["time"]:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {'.'.join(chain)}(): simulated time "
                "must come from the timeline model (Eq. 10); only "
                "repro.obs may time real execution",
            )
        elif root in datetime_roots and leaf in _BANNED["datetime"]:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {'.'.join(chain)}(): traces must "
                "replay deterministically; derive timestamps from the "
                "simulated clock",
            )
