"""REP013 — every opened span reaches end() on all paths.

A :meth:`repro.obs.observer.RunObserver.span` that is opened but never
closed leaves a dangling ``span_start`` in the trace: the analyzer
reports it unclosed, the Chrome export renders it running forever, and
a resumed attempt cannot tell it from a genuine crash cut. The
discipline is structural and this rule enforces it per function:

* a span opened as a ``with`` item is closed by the context manager —
  always fine;
* a span bound to a local must reach an *unconditional* ``.end()`` in
  the same function: either at the same ``if``/``while`` nesting depth
  as the open, or inside a ``finally`` block (the trainer's
  crash-handler pattern — an extra ``.end()`` in an ``except`` arm is
  welcome but does not count on its own);
* a span result that is neither bound, managed, nor immediately
  ``.end()``-chained is discarded and can never be closed;
* handing the span off (returning it, passing it to a call, storing it
  in a container or attribute) transfers the obligation to the new
  owner and is accepted here — the campaign pool parks attempt spans
  in its ``active`` table and closes them in its ``finally``.

``Span.end()`` is idempotent by contract, so defense-in-depth closes
on multiple paths are encouraged, never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

__all__ = ["SpanLifecycleRule"]


def _is_span_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``<something>.span(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "span"
    )


@dataclass
class _Open:
    name: str
    node: ast.AST
    depth: int


@dataclass
class _ScopeState:
    """Span facts for one function (or the module body)."""

    opens: List[_Open] = field(default_factory=list)
    discarded: List[ast.AST] = field(default_factory=list)
    ends: Dict[str, List[Tuple[int, bool]]] = field(default_factory=dict)
    with_managed: Set[str] = field(default_factory=set)
    escaped: Set[str] = field(default_factory=set)


def _scan_expr(expr: ast.AST, state, tracked, depth, in_finally) -> None:
    """Record ``name.end()`` calls and escapes of tracked names."""
    end_receivers = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "end"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in tracked
        ):
            state.ends.setdefault(node.func.value.id, []).append(
                (depth, in_finally)
            )
            end_receivers.add(id(node.func.value))
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in tracked
            and id(node) not in end_receivers
        ):
            # Any non-.end() read — returned, passed on, aliased,
            # stored — is an ownership handoff; the new owner closes.
            state.escaped.add(node.id)


def _scan_stmts(stmts, state, tracked, depth, in_finally) -> None:
    for stmt in stmts:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested scopes are scanned on their own
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_span_call(stmt.value)
        ):
            name = stmt.targets[0].id
            state.opens.append(_Open(name=name, node=stmt, depth=depth))
            tracked.add(name)
            continue
        if isinstance(stmt, ast.Expr) and _is_span_call(stmt.value):
            state.discarded.append(stmt)
            continue
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                if _is_span_call(item.context_expr):
                    continue  # managed open — nothing to track
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id in tracked
                ):
                    state.with_managed.add(item.context_expr.id)
                else:
                    _scan_expr(
                        item.context_expr, state, tracked, depth, in_finally
                    )
            _scan_stmts(stmt.body, state, tracked, depth, in_finally)
            continue
        if isinstance(stmt, (ast.If, ast.While)):
            _scan_expr(stmt.test, state, tracked, depth, in_finally)
            _scan_stmts(stmt.body, state, tracked, depth + 1, in_finally)
            _scan_stmts(stmt.orelse, state, tracked, depth + 1, in_finally)
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # A loop body is not an *extra* condition for this rule:
            # the idiomatic per-iteration span opens and closes inside
            # the same body (the trainer's round span).
            _scan_expr(stmt.iter, state, tracked, depth, in_finally)
            _scan_stmts(stmt.body, state, tracked, depth, in_finally)
            _scan_stmts(stmt.orelse, state, tracked, depth, in_finally)
            continue
        if isinstance(stmt, ast.Try):
            _scan_stmts(stmt.body, state, tracked, depth, in_finally)
            for handler in stmt.handlers:
                _scan_stmts(
                    handler.body, state, tracked, depth + 1, in_finally
                )
            _scan_stmts(stmt.orelse, state, tracked, depth, in_finally)
            _scan_stmts(stmt.finalbody, state, tracked, depth, True)
            continue
        _scan_expr(stmt, state, tracked, depth, in_finally)


def _scope_bodies(tree: ast.Module):
    """Every function body (plus the module body) to scan separately."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


class SpanLifecycleRule(Rule):
    """Spans opened outside ``with`` reach an unconditional end()."""

    rule_id = "REP013"
    title = "span lifecycle: opened spans reach end() on all paths"
    rationale = (
        "A span opened via observer.span() but never closed leaves a "
        "dangling span_start in the trace: analysis reports it "
        "unclosed and the Chrome export renders it running forever. "
        "Bind-and-end spans must close at the open's if/while depth "
        "or in a finally; an end only inside a branch or except arm "
        "misses the other paths. Handing the span to another owner "
        "(return, call, container) transfers the obligation."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag discarded, never-ended, and conditionally ended spans."""
        for body in _scope_bodies(ctx.tree):
            state = _ScopeState()
            _scan_stmts(body, state, set(), 0, False)
            for node in state.discarded:
                yield self.finding(
                    ctx,
                    node,
                    "span is opened and immediately discarded; use "
                    "`with observer.span(...)`, bind it and call "
                    ".end(), or chain .end() directly",
                )
            reported: Set[str] = set()
            for open_ in state.opens:
                name = open_.name
                if name in reported:
                    continue
                if name in state.with_managed or name in state.escaped:
                    continue
                ends = state.ends.get(name, [])
                if not ends:
                    reported.add(name)
                    yield self.finding(
                        ctx,
                        open_.node,
                        f"span {name!r} is opened outside `with` but "
                        "never reaches .end() in this function and is "
                        "not handed off; the trace keeps a dangling "
                        "span_start",
                    )
                    continue
                reliable = any(
                    in_finally or depth <= open_.depth
                    for depth, in_finally in ends
                )
                if not reliable:
                    reported.add(name)
                    yield self.finding(
                        ctx,
                        open_.node,
                        f"span {name!r} is closed only under extra "
                        "conditions relative to its open; move .end() "
                        "into a finally block or the open's own path",
                    )
