"""REP002 — every trace event is frozen, serializable, and registered.

The JSONL trace format is a cross-module contract: each ``*Event``
dataclass in :mod:`repro.obs.events` must be ``frozen=True`` (events
describe the run and must never mutate after emission), carry only
JSON-serializable field types (``to_dict`` feeds straight into
``json.dumps``), appear in the ``EVENT_TYPES`` registry, and have its
``kind`` covered by ``EVENT_SCHEMAS`` in the sibling
:mod:`repro.obs.schema` module. A class that misses any leg of that
square produces traces the validator rejects — or worse, accepts
without checking.

The rule runs on ``events.py`` files that have a ``schema.py``
sibling, and parses both.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule, attribute_chain

__all__ = ["EventSchemaRule"]

_SCALARS = {"int", "float", "str", "bool", "None", "NoneType"}
_CONTAINERS = {
    "Tuple",
    "tuple",
    "List",
    "list",
    "Dict",
    "dict",
    "Sequence",
    "Mapping",
    "Optional",
    "Union",
    "ClassVar",
}


def _annotation_serializable(node: ast.AST) -> bool:
    """Whether a field annotation maps onto JSON via ``Event.to_dict``."""
    if isinstance(node, ast.Constant):
        # `...` inside Tuple[int, ...]; None in Optional unions; string
        # annotations are re-parsed.
        if node.value is Ellipsis or node.value is None:
            return True
        if isinstance(node.value, str):
            try:
                return _annotation_serializable(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return False
        return False
    if isinstance(node, ast.Name):
        return node.id in _SCALARS
    if isinstance(node, ast.Attribute):
        chain = attribute_chain(node)
        return chain is not None and chain[-1] in _SCALARS
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name not in _CONTAINERS:
            return False
        inner = node.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_serializable(e) for e in elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: `int | None`.
        return _annotation_serializable(node.left) and _annotation_serializable(
            node.right
        )
    return False


def _dataclass_frozen(cls: ast.ClassDef) -> Optional[bool]:
    """``True``/``False`` for a dataclass's frozen flag, ``None`` if not
    a dataclass at all."""
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = attribute_chain(target)
        name = chain[-1] if chain else None
        if name != "dataclass":
            continue
        if not isinstance(deco, ast.Call):
            return False
        for kw in deco.keywords:
            if kw.arg == "frozen":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
        return False
    return None


def _class_kind(cls: ast.ClassDef) -> Optional[str]:
    """The string value of the class-level ``kind = "..."`` assignment."""
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "kind":
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
    return None


def _registry_class_names(tree: ast.Module) -> Optional[Set[str]]:
    """Class names registered in ``EVENT_TYPES`` (comprehension or dict)."""
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == "EVENT_TYPES"):
            continue
        if isinstance(value, ast.DictComp):
            iterable = value.generators[0].iter
            if isinstance(iterable, (ast.Tuple, ast.List)):
                return {
                    elt.id
                    for elt in iterable.elts
                    if isinstance(elt, ast.Name)
                }
        if isinstance(value, ast.Dict):
            return {
                v.id for v in value.values if isinstance(v, ast.Name)
            }
    return None


def _schema_kinds(tree: ast.Module) -> Optional[Set[str]]:
    """The literal string keys of ``EVENT_SCHEMAS`` in schema.py."""
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == "EVENT_SCHEMAS"):
            continue
        if isinstance(value, ast.Dict):
            return {
                k.value
                for k in value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
    return None


class EventSchemaRule(Rule):
    """``*Event`` dataclasses: frozen, serializable, registered, schema'd."""

    rule_id = "REP002"
    title = "event-schema coverage: frozen, serializable, registered events"
    rationale = (
        "The JSONL trace contract (repro.obs.schema validates every "
        "line) only holds when each *Event dataclass is frozen=True, "
        "JSON-serializable, in EVENT_TYPES, and covered by "
        "EVENT_SCHEMAS; an unregistered or mutable event silently "
        "corrupts replayable traces."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Run on ``events.py`` modules that have a ``schema.py`` sibling."""
        if ctx.is_test:
            return False
        if Path(ctx.path).name != "events.py" or ctx.file_dir is None:
            return False
        return (ctx.file_dir / "schema.py").exists()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Check every ``*Event`` class against the four-legged contract."""
        schema_path = Path(ctx.file_dir) / "schema.py"
        try:
            schema_tree = ast.parse(
                schema_path.read_text(encoding="utf-8"),
                filename=str(schema_path),
            )
        except (OSError, SyntaxError) as exc:
            yield self.finding(
                ctx, ctx.tree, f"cannot parse sibling schema module: {exc}"
            )
            return
        schema_kinds = _schema_kinds(schema_tree)
        registered = _registry_class_names(ctx.tree)
        event_classes = [
            node
            for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
            and node.name.endswith("Event")
            and node.name != "Event"
        ]
        if registered is None and event_classes:
            yield self.finding(
                ctx,
                ctx.tree,
                "no parseable EVENT_TYPES registry found; every event "
                "class must be registered",
            )
            registered = set()
        if schema_kinds is None and event_classes:
            yield self.finding(
                ctx,
                ctx.tree,
                f"no parseable EVENT_SCHEMAS table in {schema_path}; "
                "every event kind needs a schema entry",
            )
            schema_kinds = set()

        kinds_seen: Dict[str, str] = {}
        for cls in event_classes:
            yield from self._check_class(
                ctx, cls, registered, schema_kinds, schema_path, kinds_seen
            )
        # Reverse direction: schema entries no event class produces.
        orphan = (schema_kinds or set()) - set(kinds_seen)
        if orphan and event_classes:
            yield self.finding(
                ctx,
                ctx.tree,
                f"EVENT_SCHEMAS in {schema_path} covers kinds with no "
                f"event class here: {sorted(orphan)}",
            )

    def _check_class(
        self, ctx, cls, registered, schema_kinds, schema_path, kinds_seen
    ) -> Iterator[Finding]:
        frozen = _dataclass_frozen(cls)
        if frozen is None:
            yield self.finding(
                ctx, cls, f"{cls.name} must be a @dataclass(frozen=True)"
            )
        elif frozen is not True:
            yield self.finding(
                ctx,
                cls,
                f"{cls.name} must set frozen=True — emitted events are "
                "immutable by contract",
            )
        kind = _class_kind(cls)
        if kind is None:
            yield self.finding(
                ctx,
                cls,
                f"{cls.name} has no class-level string `kind` — the wire "
                "discriminator every trace line carries",
            )
        else:
            kinds_seen[kind] = cls.name
            if schema_kinds is not None and kind not in schema_kinds:
                yield self.finding(
                    ctx,
                    cls,
                    f"{cls.name} kind {kind!r} has no EVENT_SCHEMAS entry "
                    f"in {schema_path} — the validator would reject its "
                    "traces",
                )
        if registered is not None and cls.name not in registered:
            yield self.finding(
                ctx,
                cls,
                f"{cls.name} is not registered in EVENT_TYPES",
            )
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            annotation = stmt.annotation
            chain = attribute_chain(annotation)
            if chain and chain[-1] == "ClassVar":
                continue
            if isinstance(annotation, ast.Subscript):
                base_chain = attribute_chain(annotation.value)
                if base_chain and base_chain[-1] == "ClassVar":
                    continue
            if not _annotation_serializable(annotation):
                yield self.finding(
                    ctx,
                    stmt,
                    f"{cls.name}.{stmt.target.id} annotation is not "
                    "JSON-serializable (allowed: int/float/str/bool and "
                    "Tuple/List/Dict/Optional compositions thereof)",
                )
