"""REP011 — generators reaching stochastic sinks trace to repro.rng.

REP001 flags the *call sites* that construct ad-hoc generators; it
cannot see a generator built two modules away and handed down a call
chain. The provenance rule closes that gap with the project index:
every generator-typed value that reaches a stochastic *sink* —
client selection (``repro.core``), fault injection (``repro.faults``),
stochastic quantization (``repro.compression``) — must chase back to
:func:`repro.rng.ensure_generator` / :func:`repro.rng.spawn_generators`
(or to a caller-supplied parameter, whose own call sites are then
checked the same way). Three violations:

* an argument bound to an rng-like parameter (``rng``, ``generator``,
  ``*_rng``) of a sink-module function whose chased origin is a raw
  numpy construction;
* inside a sink module, binding or returning a raw-origin generator —
  including the call-graph case where the rawness lives in a helper in
  *another* module;
* ``np.random.Generator(BitGen(...))`` built directly inside a sink
  module — the one construction REP001 deliberately whitelists as
  "Generator machinery", which is still a seed-universe fork when a
  sink does it.

``repro.rng`` itself is the sanctioned constructor and is exempt.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.dataflow import DataflowRule

__all__ = ["RngProvenanceRule", "SINK_PREFIXES"]

# Dotted prefixes of the stochastic decision points (paper Secs. 4-5:
# participant selection, failure injection, update quantization).
SINK_PREFIXES = ("repro.core", "repro.faults", "repro.compression")

_BLESSED_MODULE = "repro.rng"


def _is_sink(dotted: str) -> bool:
    return any(
        dotted == prefix or dotted.startswith(prefix + ".")
        for prefix in SINK_PREFIXES
    )


def _rng_like(name: str) -> bool:
    return name in ("rng", "generator") or name.endswith("_rng")


class RngProvenanceRule(DataflowRule):
    """Sink-bound generators originate in ``repro.rng``, provably."""

    rule_id = "REP011"
    title = "rng provenance: sink generators trace to repro.rng"
    rationale = (
        "Client selection, fault injection, and stochastic quantization "
        "are the runs' randomness budget; a generator whose chased "
        "origin is an ad-hoc numpy construction forks the seed universe "
        "and the trace stops replaying. REP001 sees construction sites; "
        "this rule follows the generator across call edges to where it "
        "is actually consumed."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Repro library code, minus the sanctioned constructor module."""
        return (
            super().applies(ctx)
            and ctx.in_repro
            and ctx.module != _BLESSED_MODULE
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag raw-origin generators at sink call sites and inside sinks."""
        index = self.index(ctx)
        in_sink = ctx.module is not None and _is_sink(ctx.module)
        for analysis, _class_name in self.analyses(ctx):
            yield from self._check_sink_calls(ctx, index, analysis)
            if in_sink:
                yield from self._check_sink_module(ctx, analysis)

    def _check_sink_calls(self, ctx, index, analysis) -> Iterator[Finding]:
        """Arguments to rng-like params of sink-module functions."""
        for fact in analysis.calls:
            if fact.target is None or not _is_sink(fact.target):
                continue
            summary = index.function(fact.target)
            if summary is None:
                continue
            pairs = []
            for position, arg in enumerate(fact.node.args):
                if position < len(summary.params):
                    pairs.append((summary.params[position], arg))
            for keyword in fact.node.keywords:
                if keyword.arg is not None:
                    pairs.append((keyword.arg, keyword.value))
            for param, arg in pairs:
                if not _rng_like(param):
                    continue
                facts = analysis.classify(arg)
                if facts.rng == "raw":
                    origin = (
                        f"{facts.call_target}()"
                        if facts.call_target
                        else "an ad-hoc numpy construction"
                    )
                    yield self.finding(
                        ctx,
                        arg,
                        f"generator passed to {param!r} of {fact.target}() "
                        f"traces to {origin}, not to repro.rng."
                        "ensure_generator; the sink's draws fork the seed "
                        "universe",
                    )

    def _check_sink_module(self, ctx, analysis) -> Iterator[Finding]:
        """Raw-origin generators born or kept inside a sink module."""
        for bind in [*analysis.name_binds, *analysis.stores]:
            if bind.facts.rng != "raw":
                continue
            if not (_rng_like(bind.target) or bind.is_self):
                continue
            via = (
                f" via {bind.facts.call_target}()"
                if bind.facts.call_target
                else ""
            )
            prefix = "self." if bind.is_self else ""
            yield self.finding(
                ctx,
                bind.node,
                f"{prefix}{bind.target!r} holds a generator of raw numpy "
                f"origin{via}; stochastic sinks must draw from "
                "repro.rng.ensure_generator(seed)",
            )
        for ret in analysis.returns:
            if ret.facts.rng != "raw":
                continue
            via = (
                f" via {ret.facts.call_target}()"
                if ret.facts.call_target
                else ""
            )
            yield self.finding(
                ctx,
                ret.node,
                f"returns a generator of raw numpy origin{via} from a "
                "stochastic sink module; route construction through "
                "repro.rng.ensure_generator",
            )
