"""REP005 — pool-dispatched workers never assign module-level globals.

:class:`~repro.fl.execution.ThreadPoolBackend` runs client tasks
concurrently in one interpreter: a worker function that writes a
module-level global races against its siblings, and — worse for this
repo — makes results depend on scheduling order, destroying the
bitwise backend-parity guarantee. Process pools hide the same bug
differently (each process mutates its own copy, so state silently
diverges from the parent).

The rule finds dispatch sites (``pool.map(fn, ...)``,
``pool.submit(fn, ...)``, ``Executor(initializer=fn)``), resolves the
dispatched names to function definitions in the same module (including
one level of helper calls), and flags ``global``-declared assignments
and subscript/attribute stores whose root is a module-level binding.
Deliberate per-process worker state (the process-pool initializer
pattern) must carry an explicit ``# repro: allow[REP005]``
justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule, attribute_chain

__all__ = ["ConcurrencySafetyRule"]

_DISPATCH_ATTRS = {"map", "submit"}


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _all_function_defs(tree: ast.Module) -> Dict[str, List[ast.FunctionDef]]:
    defs: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


def _dispatched_names(tree: ast.Module) -> Set[str]:
    """Function names handed to pool ``map``/``submit``/``initializer``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_ATTRS
            and node.args
        ):
            chain = attribute_chain(node.func.value)
            rooted_in_pool = chain is not None and any(
                "pool" in part.lower() or "executor" in part.lower()
                for part in chain
            )
            if rooted_in_pool and isinstance(node.args[0], ast.Name):
                names.add(node.args[0].id)
        for kw in node.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                names.add(kw.value.id)
    return names


def _root_name(node: ast.AST):
    """The base ``Name`` of a Subscript/Attribute store target."""
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    return current if isinstance(current, ast.Name) else None


class ConcurrencySafetyRule(Rule):
    """Worker functions dispatched to execution pools stay pure of
    module-global writes."""

    rule_id = "REP005"
    title = "concurrency safety: no global writes in pool workers"
    rationale = (
        "ThreadPoolBackend workers share one interpreter; a global "
        "write races and makes results scheduling-dependent, breaking "
        "bitwise backend parity. Intentional per-process initializer "
        "state needs an explicit # repro: allow[REP005] justification."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag module-global writes reachable from dispatched workers."""
        dispatched = _dispatched_names(ctx.tree)
        if not dispatched:
            return
        module_names = _module_level_names(ctx.tree)
        defs = _all_function_defs(ctx.tree)

        # Expand one transitive layer at a time: a worker that calls a
        # module helper taints that helper too.
        worklist = sorted(dispatched)
        seen: Set[str] = set()
        while worklist:
            name = worklist.pop()
            if name in seen or name not in defs:
                continue
            seen.add(name)
            for fn in defs[name]:
                yield from self._check_worker(ctx, fn, module_names)
                for callee in self._called_names(fn):
                    if callee in defs and callee not in seen:
                        worklist.append(callee)

    @staticmethod
    def _called_names(fn: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                names.add(node.func.id)
        return names

    def _check_worker(
        self, ctx, fn: ast.FunctionDef, module_names: Set[str]
    ) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        for node in ast.walk(fn):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                yield from self._check_target(
                    ctx, fn, node, target, module_names, declared_global
                )

    def _check_target(
        self, ctx, fn, stmt, target, module_names, declared_global
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                yield self.finding(
                    ctx,
                    stmt,
                    f"pool worker {fn.name!r} assigns global "
                    f"{target.id!r}: concurrent workers race and results "
                    "become scheduling-dependent",
                )
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root is not None and root.id in module_names:
                yield self.finding(
                    ctx,
                    stmt,
                    f"pool worker {fn.name!r} mutates module-level "
                    f"{root.id!r}: thread workers race on it and process "
                    "workers silently diverge from the parent",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(
                    ctx, fn, stmt, elt, module_names, declared_global
                )
