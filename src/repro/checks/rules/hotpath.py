"""REP006 — no per-device Python loops in population-scale hot paths.

The scheduler core (``repro.core``) and the TDMA timeline simulator
are the per-round inner loops: everything in them runs once per round
for fleets the :class:`~repro.devices.DevicePopulation` API sizes at
Q ≈ 10⁵–10⁶ users. A Python ``for device in devices`` loop there turns
an O(Q) numpy expression back into O(Q) interpreter dispatch and
silently undoes the struct-of-arrays redesign — the cost only shows up
at population scale, which unit tests never reach.

The vectorized paths iterate positions (``for rank in range(n)``) only
where the math is inherently sequential (Algorithm 3's finish-time
recursion); those are O(selected), not O(Q), and don't bind device
objects. Deliberate scalar loops — the object-path oracles the parity
tests diff the array paths against — carry an explicit
``# repro: allow[REP006] <why>`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

__all__ = ["HotPathLoopRule"]

# Loop variables that conventionally bind one device object.
_DEVICE_TARGETS = frozenset({"device", "dev", "user"})

# Bare names that conventionally hold device sequences.
_DEVICE_SEQUENCES = frozenset(
    {"devices", "selected", "fleet", "users", "population", "ordered"}
)

# Wrappers that iterate their first argument unchanged.
_TRANSPARENT_CALLS = frozenset(
    {"sorted", "enumerate", "list", "tuple", "reversed"}
)

_HOT_MODULES_EXACT = frozenset({"repro.core", "repro.network.tdma"})
_HOT_MODULE_PREFIX = "repro.core."

_MESSAGE = (
    "per-device Python loop over {what!r} in a population-scale hot "
    "path; evaluate over DevicePopulation arrays instead, or mark a "
    "deliberate scalar oracle with '# repro: allow[REP006] <why>'"
)


class HotPathLoopRule(Rule):
    """Hot paths stay array-based; scalar device loops need a waiver."""

    rule_id = "REP006"
    title = "population scale: no per-device loops in scheduler hot paths"
    rationale = (
        "repro.core and the TDMA simulator run once per round over the "
        "whole fleet; a Python for-loop over devices there is O(Q) "
        "interpreter dispatch that defeats the DevicePopulation "
        "struct-of-arrays design at Q ~ 1e5-1e6. Scalar parity oracles "
        "must carry an explicit justified suppression."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Scheduler core and the TDMA simulator, library code only."""
        if ctx.is_test or ctx.module is None:
            return False
        return (
            ctx.module in _HOT_MODULES_EXACT
            or ctx.module.startswith(_HOT_MODULE_PREFIX)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag for-loops and comprehensions iterating device objects."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                what = self._loop_offence(node.target, node.iter)
                if what is not None:
                    yield self.finding(ctx, node, _MESSAGE.format(what=what))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for comp in node.generators:
                    what = self._loop_offence(comp.target, comp.iter)
                    if what is not None:
                        yield self.finding(
                            ctx, node, _MESSAGE.format(what=what)
                        )
                        break

    def _loop_offence(
        self, target: ast.AST, iterable: ast.AST
    ) -> Optional[str]:
        """The offending name when the loop binds devices, else None."""
        sequence = _device_sequence_name(iterable)
        if sequence is not None:
            return sequence
        bound = _target_names(target) & _DEVICE_TARGETS
        if bound:
            return sorted(bound)[0]
        return None


def _target_names(target: ast.AST) -> Set[str]:
    """All plain names a loop target binds (handles tuple unpacking)."""
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _device_sequence_name(iterable: ast.AST) -> Optional[str]:
    """The device-sequence name ``iterable`` walks, unwrapping
    ``sorted``/``enumerate``/``list``/``tuple``/``reversed``."""
    node = iterable
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT_CALLS
        and node.args
    ):
        node = node.args[0]
    if isinstance(node, ast.Name) and node.id in _DEVICE_SEQUENCES:
        return node.id
    return None
