"""REP012 — every suppression comment carries a human justification.

``# repro: allow[REP00x] <why>`` is the escape hatch for deliberate
rule violations (a same-step scratch cache, a benchmark that really
wants the wall clock). The hatch only works as documentation if the
``<why>`` is actually there: a bare ``allow[...]`` silences a checker
error while telling the next reader nothing. This rule makes the bare
form itself a finding — and is the one rule that cannot be suppressed,
since ``allow[REP012] because I said so`` would defeat the point
(a justified REP012 suppression is a contradiction in terms: writing
the justification *is* the fix).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

__all__ = ["SuppressionHygieneRule"]

# The full suppression comment: bracket ids, then the justification.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s-]+)\]\s*(?P<why>.*)$"
)


class SuppressionHygieneRule(Rule):
    """``# repro: allow[...]`` requires a justification after the bracket."""

    rule_id = "REP012"
    title = "suppression hygiene: allow[] comments carry a justification"
    rationale = (
        "A suppression is a documented exception; with no justification "
        "it is just a silenced error. The text after the bracket is the "
        "record of why the violation is intentional, so its absence is "
        "itself a violation — and not a suppressible one."
    )
    suppressible = False

    def applies(self, ctx: ModuleContext) -> bool:
        """Everywhere suppressions work — including tests and benchmarks."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag ``allow[...]`` comments with an empty justification."""
        for lineno, line in enumerate(ctx.source.splitlines(), start=1):
            match = _ALLOW_RE.search(line)
            if match is None:
                continue
            ids = match.group(1).strip()
            if not match.group("why").strip():
                yield Finding(
                    path=ctx.path,
                    line=lineno,
                    col=match.start(),
                    rule_id=self.rule_id,
                    message=(
                        f"suppression 'allow[{ids}]' has no justification; "
                        "state why the violation is intentional after the "
                        "closing bracket"
                    ),
                    severity=self.severity,
                )
