"""REP001 — all randomness flows through seeded generators.

Bitwise backend parity (serial/thread/process producing identical
histories) holds only because every stochastic component draws from a
``numpy.random.Generator`` rooted in the experiment's master seed via
:mod:`repro.rng`. Three constructs silently break that chain:

* the stdlib ``random`` module (process-global state, seeded — if at
  all — independently of the experiment seed);
* legacy ``np.random.<fn>`` module-level calls (``np.random.normal``,
  ``np.random.seed``, …), which share one hidden global
  ``RandomState``;
* ad-hoc ``np.random.default_rng(...)`` construction outside
  :mod:`repro.rng`, which bypasses the uniform ``SeedLike`` handling
  (an unseeded call draws OS entropy; a seeded one forks the seed
  universe).

Oort (Lai et al.) and FedCS (arXiv:1804.08333) reimplementations both
failed to reproduce published numbers because of exactly this kind of
RNG drift.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules.base import Rule, attribute_chain

__all__ = ["DeterminismRule"]

_NUMPY_MODULES = {"numpy", "np"}

# np.random attributes that are legitimate Generator machinery rather
# than hidden-global legacy functions.
_GENERATOR_API = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # flagged separately: constructing it is legacy too
}

_LEGACY_MESSAGE = (
    "legacy module-level numpy RNG call np.random.{name}() uses hidden "
    "global state; draw from a seeded np.random.Generator (see repro.rng)"
)

_BLESSED_MODULE = "repro.rng"


class DeterminismRule(Rule):
    """No stdlib ``random``, no legacy numpy RNG, seeded generators only."""

    rule_id = "REP001"
    title = "determinism: all RNG flows through seeded generators"
    rationale = (
        "Bitwise backend parity and run reproducibility require every "
        "random draw to descend from the master seed via repro.rng; "
        "stdlib random, legacy np.random.<fn> globals, and ad-hoc "
        "default_rng() calls break that chain."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        """Library code only; ``repro.rng`` itself is the sanctioned home."""
        return not ctx.is_test and ctx.module != _BLESSED_MODULE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag stdlib random, legacy numpy RNG, and ad-hoc default_rng."""
        numpy_aliases = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, numpy_aliases)

    def _check_import(self, ctx, node: ast.Import) -> Iterator[Finding]:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib 'random' is process-global and unseeded by the "
                    "experiment; use a numpy Generator from repro.rng",
                )

    def _check_import_from(self, ctx, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module is None:
            return
        root = node.module.split(".")[0]
        if root == "random":
            yield self.finding(
                ctx,
                node,
                "stdlib 'random' is process-global and unseeded by the "
                "experiment; use a numpy Generator from repro.rng",
            )
        elif node.module in {"numpy.random", "np.random"}:
            for alias in node.names:
                if alias.name == "default_rng":
                    yield self.finding(
                        ctx,
                        node,
                        "import default_rng via repro.rng.ensure_generator "
                        "so SeedLike handling stays uniform",
                    )
                elif alias.name not in _GENERATOR_API:
                    yield self.finding(
                        ctx,
                        node,
                        _LEGACY_MESSAGE.format(name=alias.name),
                    )

    def _check_call(
        self, ctx, node: ast.Call, numpy_aliases: Set[str]
    ) -> Iterator[Finding]:
        chain = attribute_chain(node.func)
        if not chain or len(chain) < 3:
            return
        root, second, leaf = chain[0], chain[1], chain[-1]
        if root not in numpy_aliases or second != "random":
            return
        if leaf == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "unseeded np.random.default_rng() draws OS entropy and "
                    "is unreproducible; accept a SeedLike and call "
                    "repro.rng.ensure_generator(seed)",
                )
            else:
                yield self.finding(
                    ctx,
                    node,
                    "construct generators via repro.rng.ensure_generator / "
                    "spawn_generators instead of calling default_rng "
                    "directly, so seed handling stays uniform",
                )
        elif leaf == "RandomState":
            yield self.finding(
                ctx,
                node,
                "np.random.RandomState is the legacy RNG; use a seeded "
                "np.random.Generator from repro.rng",
            )
        elif leaf not in _GENERATOR_API and len(chain) == 3:
            yield self.finding(ctx, node, _LEGACY_MESSAGE.format(name=leaf))


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``import numpy as np``)."""
    aliases = set(_NUMPY_MODULES)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" and alias.asname:
                    aliases.add(alias.asname)
    return aliases
