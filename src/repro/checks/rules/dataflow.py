"""Shared base for the cross-file dataflow rules (REP008–REP011).

A :class:`DataflowRule` runs in phase 2 of the engine: it still reports
against one file at a time (findings need a path and a line), but its
:meth:`analyses` see the whole project through the
:class:`~repro.checks.project.ProjectIndex` attached to the context —
resolved imports, callee signatures, and chased return facts. That is
what lets a rule connect a scratch buffer produced in ``repro.nn`` to a
store in ``repro.fl``, or a unit-suffixed parameter in
``repro.network`` to a mismatched argument in ``repro.energy``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.checks.context import ModuleContext
from repro.checks.project import (
    FunctionAnalysis,
    ProjectIndex,
    build_resolver,
    iter_function_analyses,
)
from repro.checks.rules.base import Rule

__all__ = ["DataflowRule"]


class DataflowRule(Rule):
    """A rule that consumes the phase-1 project index.

    Subclasses implement :meth:`check` as usual and iterate
    :meth:`analyses` for the per-function dataflow facts.
    """

    needs_index = True

    def applies(self, ctx: ModuleContext) -> bool:
        """Library code only, and only once an index is attached."""
        return not ctx.is_test and ctx.index is not None

    def index(self, ctx: ModuleContext) -> ProjectIndex:
        """The project index the engine attached to ``ctx``."""
        return ctx.index

    def analyses(
        self, ctx: ModuleContext
    ) -> Iterator[Tuple[FunctionAnalysis, Optional[str]]]:
        """Yield ``(analysis, class_name)`` per function, then the
        module-level statement analysis as ``("<module>", None)``."""
        key = ctx.module or f"<file:{ctx.path}>"
        resolver = build_resolver(
            ctx.tree, key, is_package=ctx.path.endswith("__init__.py")
        )
        yield from iter_function_analyses(ctx.tree, resolver, index=ctx.index)
        yield FunctionAnalysis(ctx.tree, resolver, index=ctx.index), None
