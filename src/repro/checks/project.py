"""Phase 1 of the two-phase checker: the project-wide semantic index.

Per-file AST rules (REP001–REP007) see one module at a time, which is
exactly the blind spot the PR-6/7 refactors opened: hot-path state now
crosses module boundaries (population arrays, ``out=`` scratch buffers,
``SharedArrayPool`` lifecycle), so a unit mix-up or a leaked
shared-memory block can sit on a call edge between two files that are
each individually clean.

This module builds the cross-file facts the :class:`DataflowRule`
family (REP008–REP011) consumes:

* :func:`summarize_module` condenses one parsed file into a
  serializable :class:`ModuleSummary` — import resolution, per-function
  signatures, and derived dataflow facts (return units, scratch-buffer
  escapes, shared-memory ownership, RNG provenance);
* :class:`ProjectIndex` aggregates summaries into a project-wide symbol
  table with a lightweight call graph, chased lazily (``return_unit``,
  ``returns_scratch``, … follow ``return f(...)`` edges with a cycle
  guard);
* :class:`FunctionAnalysis` is the single-pass, order-aware local
  dataflow walk both the summarizer and the rules share (the rules keep
  the AST nodes for findings; the summary keeps only JSON-able facts).

Summaries are content-addressed: :attr:`ProjectIndex.fingerprint`
hashes every summary, so the engine's incremental cache can prove that
a warm run sees the very same project the cold run saw.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "UNIT_SUFFIXES",
    "unit_suffix",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectIndex",
    "FunctionAnalysis",
    "Facts",
    "iter_function_analyses",
    "summarize_module",
]

UNIT_SUFFIXES = ("_hz", "_bits", "_seconds", "_joules")
"""Recognized unit-of-measure name suffixes (the cost model's physics)."""


def unit_suffix(name: str) -> Optional[str]:
    """The unit suffix carried by ``name``, or ``None``."""
    lowered = name.lower()
    for suffix in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix
    return None


# Sanctioned generator factories (REP011's only blessed origins).
BLESSED_RNG = frozenset(
    {"repro.rng.ensure_generator", "repro.rng.spawn_generators"}
)

# Raw numpy generator constructions REP001 cannot see (Generator over an
# explicit BitGenerator parses as legitimate "Generator machinery").
_RAW_RNG_LEAVES = frozenset({"Generator", "RandomState", "default_rng"})

# The one true shared-memory acquisition primitive.
_SHM_TARGET = "multiprocessing.shared_memory.SharedMemory"

# Method names whose call closes/releases a shared-memory handle.
CLOSE_METHODS = frozenset({"close", "unlink", "shutdown", "terminate"})

# Methods a resource-owning class may hold its teardown in.
CLOSER_METHOD_NAMES = frozenset(
    {"close", "shutdown", "stop", "terminate", "unlink", "__exit__", "__del__"}
)

# Calls that return a *new* array (or scalar) and therefore launder a
# scratch-buffer taint while preserving the unit of their first arg.
_LAUNDER_CALLS = frozenset(
    {"copy", "ascontiguousarray", "array", "tolist", "copyto"}
)

# Thin numeric wrappers that pass their first argument's unit through.
_UNIT_TRANSPARENT_CALLS = frozenset(
    {"float", "int", "abs", "float64", "float32", "asarray", "round"}
)


@dataclass(frozen=True)
class Facts:
    """Dataflow classification of one expression (or local binding).

    Attributes:
        unit: unit suffix (``"_seconds"``, …) carried by the value.
        scratch: value aliases a layer-owned ``_scratch_buffer``.
        shm: value owns a live shared-memory acquisition.
        rng: generator provenance — ``"blessed"`` (repro.rng),
            ``"raw"`` (ad-hoc numpy construction), ``"param"``
            (caller's obligation), or ``None`` (not a generator /
            unknown).
        call_target: resolved dotted callee when the value is a direct
            call result, else ``None``.
    """

    unit: Optional[str] = None
    scratch: bool = False
    shm: bool = False
    rng: Optional[str] = None
    call_target: Optional[str] = None


_NO_FACTS = Facts()


@dataclass(frozen=True)
class FunctionSummary:
    """Serializable cross-file facts about one function or method.

    Attributes:
        qualname: name within the module (``"Pool.close"`` for methods).
        lineno: definition line.
        params: positional-or-keyword parameter names, ``self`` removed.
        param_units: unit suffix per unit-suffixed parameter.
        return_unit: unit of the returned value — the name's own suffix
            when present, else the consistently inferred unit of its
            return expressions.
        return_calls: resolved callees whose result the function
            returns (the call-graph edges the index chases).
        returns_scratch: some return aliases a ``_scratch_buffer``.
        returns_shm: some return hands the caller an owned
            shared-memory acquisition.
        rng_origin: provenance of a returned generator (see
            :class:`Facts`).
    """

    qualname: str
    lineno: int
    params: Tuple[str, ...] = ()
    param_units: Dict[str, str] = field(default_factory=dict)
    return_unit: Optional[str] = None
    return_calls: Tuple[str, ...] = ()
    returns_scratch: bool = False
    returns_shm: bool = False
    rng_origin: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-able form (cache representation)."""
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "params": list(self.params),
            "param_units": dict(self.param_units),
            "return_unit": self.return_unit,
            "return_calls": list(self.return_calls),
            "returns_scratch": self.returns_scratch,
            "returns_shm": self.returns_shm,
            "rng_origin": self.rng_origin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            qualname=data["qualname"],
            lineno=data["lineno"],
            params=tuple(data["params"]),
            param_units=dict(data["param_units"]),
            return_unit=data["return_unit"],
            return_calls=tuple(data["return_calls"]),
            returns_scratch=data["returns_scratch"],
            returns_shm=data["returns_shm"],
            rng_origin=data["rng_origin"],
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Phase-1 facts for one module: symbols, imports, function summaries.

    Attributes:
        module: dotted module name, or a ``<file:...>`` pseudo-name for
            files outside any package (examples, scripts).
        path: source path the summary was built from.
        imports: local name → resolved dotted target.
        functions: qualname → :class:`FunctionSummary`.
        classes: class name → method-name tuple.
        shm_owner_classes: classes whose methods acquire shared memory
            (constructing one is itself an acquisition).
    """

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    shm_owner_classes: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-able form (cache representation)."""
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "functions": {
                name: fn.to_dict() for name, fn in self.functions.items()
            },
            "classes": {name: list(m) for name, m in self.classes.items()},
            "shm_owner_classes": list(self.shm_owner_classes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={
                name: FunctionSummary.from_dict(fn)
                for name, fn in data["functions"].items()
            },
            classes={
                name: tuple(m) for name, m in data["classes"].items()
            },
            shm_owner_classes=tuple(data["shm_owner_classes"]),
        )


def _collect_imports(tree: ast.Module, module: str, is_package: bool) -> Dict[str, str]:
    """Local binding → dotted target, for top-level and nested imports."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".") if module else []
                # A regular module's own name is not part of its package.
                anchor = parts if is_package else parts[:-1]
                up = node.level - 1
                anchor = anchor[: len(anchor) - up] if up else anchor
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


class _Resolver:
    """Resolve a local attribute chain to a project-wide dotted name."""

    def __init__(
        self,
        module: str,
        imports: Dict[str, str],
        module_defs: Set[str],
        class_methods: Dict[str, Set[str]],
    ) -> None:
        self.module = module
        self.imports = imports
        self.module_defs = module_defs
        self.class_methods = class_methods

    def resolve(
        self, chain: Sequence[str], class_name: Optional[str] = None
    ) -> Optional[str]:
        """Dotted target for ``chain`` (``["np","random","Generator"]``)."""
        if not chain:
            return None
        head = chain[0]
        rest = chain[1:]
        if head == "self" and class_name is not None:
            if len(rest) == 1 and rest[0] in self.class_methods.get(
                class_name, set()
            ):
                return f"{self.module}.{class_name}.{rest[0]}"
            return None
        if head in self.imports:
            target = self.imports[head]
            return ".".join([target, *rest]) if rest else target
        if head in self.module_defs:
            return ".".join([self.module, head, *rest])
        return None


def _chain(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into parts; ``None`` for non-name chains."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def _is_raw_rng_target(dotted: str) -> bool:
    parts = dotted.split(".")
    return (
        len(parts) >= 3
        and parts[0] in ("numpy", "np")
        and parts[1] == "random"
        and parts[-1] in _RAW_RNG_LEAVES
    )


@dataclass
class ReturnFact:
    """One ``return`` statement and the classification of its value."""

    node: ast.Return
    facts: Facts


@dataclass
class AcquisitionFact:
    """One shared-memory acquisition site.

    Attributes:
        node: the acquiring call (finding anchor).
        name: local variable bound to the handle, if any.
        attr: ``self.<attr>`` the handle was stored to, if any.
        in_with: acquisition happened inside a ``with`` item (a
            ``closing(...)``-style guard owns the teardown).
        conditional: acquisition sits inside a conditional branch.
    """

    node: ast.Call
    name: Optional[str] = None
    attr: Optional[str] = None
    in_with: bool = False
    conditional: bool = False


@dataclass
class CloseFact:
    """A ``<name>.close()``-style call and its control-flow context."""

    name: str
    conditional: bool
    in_finally: bool


@dataclass
class StoreFact:
    """A persisting store (``self.attr = ...`` or module global)."""

    node: ast.stmt
    target: str
    facts: Facts
    is_self: bool
    value_name: Optional[str] = None


@dataclass
class CallFact:
    """One call site with enough structure to type-check its arguments.

    Attributes:
        node: the :class:`ast.Call`.
        target: resolved dotted callee, or ``None``.
        leaf: last identifier of the callee chain (name-suffix fallback).
    """

    node: ast.Call
    target: Optional[str]
    leaf: Optional[str]


class FunctionAnalysis:
    """Single-pass, statement-ordered local dataflow over one function.

    Both consumers share this walk: :func:`summarize_module` keeps the
    serializable facts, the REP008–REP011 rules keep the AST nodes.

    Args:
        node: the function definition (or an :class:`ast.Module` for
            module-level statements, with ``name="<module>"``).
        resolver: chain resolver for the enclosing module.
        class_name: enclosing class for methods (``self`` resolution).
    """

    def __init__(
        self,
        node,
        resolver: _Resolver,
        class_name: Optional[str] = None,
        index: Optional["ProjectIndex"] = None,
    ) -> None:
        self.node = node
        self.resolver = resolver
        self.class_name = class_name
        self.index = index
        self.is_module_level = isinstance(node, ast.Module)
        self.name = "<module>" if self.is_module_level else node.name
        self.params: List[str] = []
        self.param_units: Dict[str, str] = {}
        self.env: Dict[str, Facts] = {}
        self.returns: List[ReturnFact] = []
        self.acquisitions: List[AcquisitionFact] = []
        self.closes: List[CloseFact] = []
        self.attr_closes: Set[str] = set()
        self.self_close_calls: Set[str] = set()
        self.stores: List[StoreFact] = []
        self.name_binds: List[StoreFact] = []
        self.calls: List[CallFact] = []
        self.escaped: Set[str] = set()
        self.has_atexit = False
        self._with_depth = 0
        self._cond_depth = 0
        self._finally_depth = 0
        if not self.is_module_level:
            self._bind_params(node.args)
        body = node.body
        for stmt in body:
            self._visit(stmt)

    # -- setup ----------------------------------------------------------
    def _bind_params(self, args: ast.arguments) -> None:
        every = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        names = [a.arg for a in every]
        if self.class_name is not None and names and names[0] in (
            "self",
            "cls",
        ):
            names = names[1:]
        self.params = names
        for name in names:
            unit = unit_suffix(name)
            rng = (
                "param"
                if name in ("rng", "generator") or name.endswith("_rng")
                else None
            )
            if unit:
                self.param_units[name] = unit
            self.env[name] = Facts(unit=unit, rng=rng)

    # -- classification -------------------------------------------------
    def classify(self, expr: ast.AST) -> Facts:
        """Dataflow facts of one expression (see :class:`Facts`)."""
        if isinstance(expr, ast.Name):
            known = self.env.get(expr.id)
            if known is not None:
                return known
            return Facts(unit=unit_suffix(expr.id))
        if isinstance(expr, ast.Attribute):
            return Facts(unit=unit_suffix(expr.attr))
        if isinstance(expr, ast.Await):
            return self.classify(expr.value)
        if isinstance(expr, ast.IfExp):
            left = self.classify(expr.body)
            right = self.classify(expr.orelse)
            return Facts(
                unit=left.unit if left.unit == right.unit else None,
                scratch=left.scratch or right.scratch,
                shm=left.shm or right.shm,
            )
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Add, ast.Sub)
        ):
            left = self.classify(expr.left)
            right = self.classify(expr.right)
            unit = left.unit if left.unit == right.unit else None
            return Facts(unit=unit)
        if isinstance(expr, ast.UnaryOp):
            return Facts(unit=self.classify(expr.operand).unit)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr)
        return _NO_FACTS

    def _classify_call(self, call: ast.Call) -> Facts:
        chain = _chain(call.func)
        leaf = chain[-1] if chain else None
        if leaf in _LAUNDER_CALLS:
            if call.args:
                inner = self.classify(call.args[0])
            elif isinstance(call.func, ast.Attribute):
                inner = self.classify(call.func.value)
            else:
                inner = _NO_FACTS
            return Facts(unit=inner.unit)
        if leaf in _UNIT_TRANSPARENT_CALLS and call.args:
            return Facts(unit=self.classify(call.args[0]).unit)
        scratch = leaf == "_scratch_buffer"
        for kw in call.keywords:
            if kw.arg in ("out", "padded_out") and self.classify(kw.value).scratch:
                scratch = True
        target = (
            self.resolver.resolve(chain, self.class_name) if chain else None
        )
        shm = False
        rng: Optional[str] = None
        unit: Optional[str] = None
        if target is not None:
            if target == _SHM_TARGET:
                shm = any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                )
            elif target in BLESSED_RNG:
                rng = "blessed"
            elif _is_raw_rng_target(target):
                rng = "raw"
        if self.index is not None and target is not None:
            # Cross-file facts: fold the callee's chased summary in.
            scratch = scratch or self.index.returns_scratch(target)
            shm = shm or self.index.returns_shm(target)
            rng = rng or self.index.rng_origin(target)
            unit = unit or self.index.return_unit(target)
        if leaf is not None and unit is None:
            unit = unit_suffix(leaf)
        return Facts(
            unit=unit,
            scratch=scratch,
            shm=shm,
            rng=rng,
            call_target=target,
        )

    # -- statement walk -------------------------------------------------
    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes analyzed separately
        if isinstance(stmt, ast.Return):
            self._scan_expressions(stmt)
            if stmt.value is not None:
                self.returns.append(
                    ReturnFact(node=stmt, facts=self.classify(stmt.value))
                )
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._scan_expressions(stmt)
            self._visit_assign(stmt)
            return
        if isinstance(stmt, ast.If):
            self._scan_expressions(stmt.test)
            self._visit_block(stmt.body, conditional=True)
            self._visit_block(stmt.orelse, conditional=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expressions(stmt.iter)
            self._visit_block(stmt.body, conditional=True)
            self._visit_block(stmt.orelse, conditional=True)
            return
        if isinstance(stmt, ast.While):
            self._scan_expressions(stmt.test)
            self._visit_block(stmt.body, conditional=True)
            self._visit_block(stmt.orelse, conditional=True)
            return
        if isinstance(stmt, ast.Try):
            self._visit_block(stmt.body, conditional=False)
            for handler in stmt.handlers:
                self._visit_block(handler.body, conditional=True)
            self._visit_block(stmt.orelse, conditional=True)
            self._finally_depth += 1
            self._visit_block(stmt.finalbody, conditional=False)
            self._finally_depth -= 1
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expressions(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    # ``with closing(acquire())`` — the context manager
                    # owns the teardown, so the binding is not an
                    # unmanaged acquisition.
                    facts = self.classify(item.context_expr)
                    self.env[item.optional_vars.id] = facts
            self._visit_block(stmt.body, conditional=False)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expressions(stmt)
            facts = self.classify(stmt.value)
            if facts.shm and isinstance(stmt.value, ast.Call):
                # Acquisition whose handle is immediately dropped: it
                # can never be closed.
                self.acquisitions.append(
                    AcquisitionFact(
                        node=stmt.value,
                        conditional=self._cond_depth > 0,
                    )
                )
            return
        self._scan_expressions(stmt)

    def _visit_block(self, body, conditional: bool) -> None:
        if conditional:
            self._cond_depth += 1
        for stmt in body:
            self._visit(stmt)
        if conditional:
            self._cond_depth -= 1

    def _visit_assign(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        facts = self.classify(value)
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            self._bind_target(stmt, target, facts, value)

    def _bind_target(self, stmt, target, facts: Facts, value) -> None:
        if isinstance(target, ast.Name):
            if isinstance(stmt, ast.AugAssign):
                return  # unit checks on AugAssign are REP003's job
            self.env[target.id] = facts
            self.name_binds.append(
                StoreFact(
                    node=stmt, target=target.id, facts=facts, is_self=False
                )
            )
            if facts.shm:
                self.acquisitions.append(
                    AcquisitionFact(
                        node=value if isinstance(value, ast.Call) else stmt,
                        name=target.id,
                        in_with=self._with_depth > 0,
                        conditional=self._cond_depth > 0,
                    )
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # Tuple unpacking of a scratch-producing call taints every
            # bound name (``cols, h, w = im2col(..., out=scratch)``).
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = Facts(
                        unit=unit_suffix(element.id), scratch=facts.scratch
                    )
            return
        if isinstance(target, ast.Attribute):
            chain = _chain(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                self.stores.append(
                    StoreFact(
                        node=stmt,
                        target=chain[1],
                        facts=facts,
                        is_self=True,
                        value_name=(
                            value.id if isinstance(value, ast.Name) else None
                        ),
                    )
                )
                if isinstance(value, ast.Name):
                    self.escaped.add(value.id)
                if facts.shm:
                    self.acquisitions.append(
                        AcquisitionFact(
                            node=value if isinstance(value, ast.Call) else stmt,
                            attr=chain[1],
                            in_with=self._with_depth > 0,
                            conditional=self._cond_depth > 0,
                        )
                    )
            return
        if isinstance(target, ast.Subscript):
            # d[k] = v escapes v into a container.
            for name in ast.walk(value):
                if isinstance(name, ast.Name):
                    self.escaped.add(name.id)

    def _scan_expressions(self, root: ast.AST) -> None:
        """Record calls, closes, escapes inside one simple statement or
        one compound-statement header expression."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            chain = _chain(node.func)
            leaf = chain[-1] if chain else None
            target = (
                self.resolver.resolve(chain, self.class_name)
                if chain
                else None
            )
            self.calls.append(CallFact(node=node, target=target, leaf=leaf))
            if chain and leaf in CLOSE_METHODS:
                if len(chain) == 2 and chain[0] == "self":
                    self.self_close_calls.add(leaf)
                elif len(chain) == 2:
                    self.closes.append(
                        CloseFact(
                            name=chain[0],
                            conditional=self._cond_depth > 0,
                            in_finally=self._finally_depth > 0,
                        )
                    )
                elif len(chain) == 3 and chain[0] == "self":
                    self.attr_closes.add(chain[1])
            if target == "atexit.register" or (
                chain and chain[0] == "atexit" and leaf == "register"
            ):
                self.has_atexit = True
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.escaped.add(arg.id)
                else:
                    # ``atexit.register(pool.close)`` — passing a bound
                    # close method hands the teardown to the callee.
                    arg_chain = _chain(arg)
                    if (
                        arg_chain
                        and len(arg_chain) == 2
                        and arg_chain[-1] in CLOSE_METHODS
                    ):
                        self.closes.append(
                            CloseFact(
                                name=arg_chain[0],
                                conditional=self._cond_depth > 0,
                                in_finally=self._finally_depth > 0,
                            )
                        )
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name):
                    self.escaped.add(kw.value.id)


def iter_function_analyses(
    tree: ast.Module, resolver: _Resolver, index: Optional["ProjectIndex"] = None
):
    """Yield ``(analysis, class_name)`` for every function and method."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionAnalysis(node, resolver, index=index), None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield (
                        FunctionAnalysis(
                            item, resolver, class_name=node.name, index=index
                        ),
                        node.name,
                    )


def build_resolver(
    tree: ast.Module, module: str, is_package: bool = False
) -> _Resolver:
    """Build the chain resolver for one parsed module."""
    imports = _collect_imports(tree, module, is_package)
    module_defs: Set[str] = set()
    class_methods: Dict[str, Set[str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_defs.add(node.name)
        elif isinstance(node, ast.ClassDef):
            module_defs.add(node.name)
            class_methods[node.name] = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return _Resolver(module, imports, module_defs, class_methods)


def _summarize_function(
    analysis: FunctionAnalysis, class_name: Optional[str]
) -> FunctionSummary:
    node = analysis.node
    qualname = (
        f"{class_name}.{analysis.name}" if class_name else analysis.name
    )
    declared = unit_suffix(analysis.name)
    inferred: Optional[str] = None
    consistent = True
    return_calls: List[str] = []
    returns_scratch = False
    returns_shm = False
    rng_origin: Optional[str] = None
    for ret in analysis.returns:
        facts = ret.facts
        if facts.unit is not None:
            if inferred is None:
                inferred = facts.unit
            elif inferred != facts.unit:
                consistent = False
        if facts.scratch:
            returns_scratch = True
        if facts.shm:
            returns_shm = True
        if facts.rng == "raw":
            rng_origin = "raw"
        elif facts.rng in ("blessed", "param") and rng_origin is None:
            rng_origin = facts.rng
        if facts.call_target is not None:
            return_calls.append(facts.call_target)
    return FunctionSummary(
        qualname=qualname,
        lineno=node.lineno,
        params=tuple(analysis.params),
        param_units=dict(analysis.param_units),
        return_unit=declared or (inferred if consistent else None),
        return_calls=tuple(dict.fromkeys(return_calls)),
        returns_scratch=returns_scratch,
        returns_shm=returns_shm,
        rng_origin=rng_origin,
    )


def summarize_module(
    tree: ast.Module,
    module: Optional[str],
    path: str,
    is_package: bool = False,
) -> ModuleSummary:
    """Condense one parsed file into its :class:`ModuleSummary`.

    Args:
        tree: parsed module.
        module: dotted module name; ``None`` files get a stable
            ``<file:path>`` pseudo-name so their local symbols still
            resolve.
        path: source path (reported in findings and the cache).
        is_package: whether the file is a package ``__init__``.
    """
    key = module if module is not None else f"<file:{path}>"
    resolver = build_resolver(tree, key, is_package)
    functions: Dict[str, FunctionSummary] = {}
    classes: Dict[str, Tuple[str, ...]] = {}
    shm_owners: List[str] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            classes[node.name] = tuple(
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
    for analysis, class_name in iter_function_analyses(tree, resolver):
        summary = _summarize_function(analysis, class_name)
        functions[summary.qualname] = summary
        if class_name is not None and any(
            acq.node is not None for acq in analysis.acquisitions
        ):
            if class_name not in shm_owners:
                shm_owners.append(class_name)
    return ModuleSummary(
        module=key,
        path=path,
        imports=resolver.imports,
        functions=functions,
        classes=classes,
        shm_owner_classes=tuple(shm_owners),
    )


class ProjectIndex:
    """Project-wide symbol table with lazily chased call-graph facts.

    Args:
        summaries: one :class:`ModuleSummary` per indexed file.
    """

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self._functions: Dict[str, FunctionSummary] = {}
        self._classes: Dict[str, str] = {}
        self._shm_owners: Set[str] = set()
        for summary in summaries:
            self.modules[summary.module] = summary
            for qualname, fn in summary.functions.items():
                self._functions[f"{summary.module}.{qualname}"] = fn
            for class_name in summary.classes:
                self._classes[f"{summary.module}.{class_name}"] = (
                    summary.module
                )
            for class_name in summary.shm_owner_classes:
                self._shm_owners.add(f"{summary.module}.{class_name}")

    # -- lookups --------------------------------------------------------
    def function(self, dotted: Optional[str]) -> Optional[FunctionSummary]:
        """Function summary for a resolved dotted name, if indexed."""
        if dotted is None:
            return None
        found = self._functions.get(dotted)
        if found is not None:
            return found
        # A bare class call is its constructor.
        if dotted in self._classes:
            return self._functions.get(f"{dotted}.__init__")
        return None

    def is_shm_owner_class(self, dotted: Optional[str]) -> bool:
        """Whether ``dotted`` names a class that acquires shared memory."""
        return dotted is not None and dotted in self._shm_owners

    # -- chased facts ---------------------------------------------------
    def _chase(self, dotted: Optional[str], fact, seen=None):
        if dotted is None:
            return None
        seen = seen or set()
        if dotted in seen:
            return None
        seen.add(dotted)
        summary = self.function(dotted)
        if summary is None:
            return None
        direct = fact(summary)
        if direct:
            return direct
        for callee in summary.return_calls:
            chased = self._chase(callee, fact, seen)
            if chased:
                return chased
        return None

    def return_unit(self, dotted: Optional[str]) -> Optional[str]:
        """Unit of ``dotted``'s return value, chasing return-call edges."""
        return self._chase(dotted, lambda s: s.return_unit)

    def returns_scratch(self, dotted: Optional[str]) -> bool:
        """Whether ``dotted`` hands back a scratch-buffer alias."""
        return bool(self._chase(dotted, lambda s: s.returns_scratch))

    def returns_shm(self, dotted: Optional[str]) -> bool:
        """Whether ``dotted`` hands back an owned shm acquisition."""
        if self.is_shm_owner_class(dotted):
            return True
        return bool(self._chase(dotted, lambda s: s.returns_shm))

    def rng_origin(
        self, dotted: Optional[str], _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Provenance of a generator returned by ``dotted``.

        The blessed factories themselves construct generators with raw
        numpy calls — that is their job — so they short-circuit to
        ``"blessed"`` before any summary is consulted.
        """
        if dotted is None:
            return None
        if dotted in BLESSED_RNG:
            return "blessed"
        seen = _seen or set()
        if dotted in seen:
            return None
        seen.add(dotted)
        summary = self.function(dotted)
        if summary is None:
            return None
        if summary.rng_origin:
            return summary.rng_origin
        for callee in summary.return_calls:
            origin = self.rng_origin(callee, seen)
            if origin:
                return origin
        return None

    # -- identity -------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash over every summary (cache validity token).

        Line numbers are excluded: shifting a definition down a line
        changes no cross-file fact, so comment-only edits must not
        invalidate every other file's phase-2 results.
        """

        def _strip(summary: ModuleSummary) -> dict:
            data = summary.to_dict()
            for fn in data["functions"].values():
                fn.pop("lineno", None)
            return data

        payload = json.dumps(
            {
                module: _strip(summary)
                for module, summary in self.modules.items()
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
