"""Domain-aware static analysis for the reproduction's invariants.

The repo's correctness guarantees — bitwise backend parity, the typed
trace-event contract, the paper's units (Hz, bits, seconds, Joules) —
are conventions a generic linter cannot see. :mod:`repro.checks` makes
them machine-checked, in two phases: per-file AST rules run first,
then :mod:`repro.checks.project` condenses every file into a
:class:`~repro.checks.project.ModuleSummary`, aggregates them into a
:class:`~repro.checks.project.ProjectIndex` (symbols, imports, a
lightweight call graph), and the cross-file dataflow rules re-visit
each file with the whole project in view. Runnable as
``python -m repro.checks [paths]`` with JSON, human, and GitHub-
annotation output, an incremental content-hash cache (``--cache``),
and inline ``# repro: allow[RULE-ID] justification`` suppressions.

Shipped rules:

========  ==============================================================
REP001    determinism — no stdlib ``random``, no legacy
          ``np.random.<fn>`` module-level calls, RNG construction goes
          through :mod:`repro.rng`
REP002    event-schema coverage — every ``*Event`` dataclass is frozen,
          JSON-serializable, and registered in :mod:`repro.obs.schema`
REP003    unit discipline — ``_hz``/``_bits``/``_seconds``/``_joules``
          names are never float-equality-compared or mixed across units
REP004    wall-clock hygiene — no real-clock reads outside
          :mod:`repro.obs`; simulated time comes from the timeline model
REP005    concurrency safety — pool-dispatched worker functions do not
          assign to module-level globals
REP006    hot-path vectorization — population-scale loops in the
          scheduler/selection modules stay vectorized
REP007    param pickling — process-backend payloads stay picklable
REP008    buffer aliasing (cross-file) — ``_scratch_buffer``/``out=``
          arrays never escape their forward/backward call
REP009    shm lifecycle (cross-file) — every owned shared-memory
          acquisition reaches ``close()``/``unlink()`` on all paths
REP010    unit dataflow (cross-file) — units survive call edges,
          binds, and returns across modules
REP011    RNG provenance (cross-file) — generators reaching
          selection/faults/quantization trace to :mod:`repro.rng`
REP012    suppression hygiene — every ``allow[...]`` comment carries a
          justification (REP012 itself cannot be suppressed)
REP013    span lifecycle — every ``observer.span(...)`` open reaches
          ``.end()`` on all paths (``with``, same depth, ``finally``,
          or explicit handoff to a new owner)
========  ==============================================================
"""

from repro.checks.engine import (
    CheckReport,
    check_paths,
    check_source,
    iter_python_files,
)
from repro.checks.findings import SEVERITIES, Finding
from repro.checks.project import ModuleSummary, ProjectIndex, summarize_module
from repro.checks.rules import ALL_RULES, get_rules

__all__ = [
    "Finding",
    "SEVERITIES",
    "CheckReport",
    "check_paths",
    "check_source",
    "iter_python_files",
    "ModuleSummary",
    "ProjectIndex",
    "summarize_module",
    "ALL_RULES",
    "get_rules",
]
