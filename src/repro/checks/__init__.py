"""Domain-aware static analysis for the reproduction's invariants.

The repo's correctness guarantees — bitwise backend parity, the typed
trace-event contract, the paper's units (Hz, bits, seconds, Joules) —
are conventions a generic linter cannot see. :mod:`repro.checks` makes
them machine-checked: an AST pass with pluggable rules, runnable as
``python -m repro.checks [paths]``, emitting structured findings with
JSON and human output and honoring inline
``# repro: allow[RULE-ID] justification`` suppressions.

Shipped rules:

========  ==============================================================
REP001    determinism — no stdlib ``random``, no legacy
          ``np.random.<fn>`` module-level calls, RNG construction goes
          through :mod:`repro.rng`
REP002    event-schema coverage — every ``*Event`` dataclass is frozen,
          JSON-serializable, and registered in :mod:`repro.obs.schema`
REP003    unit discipline — ``_hz``/``_bits``/``_seconds``/``_joules``
          names are never float-equality-compared or mixed across units
REP004    wall-clock hygiene — no real-clock reads outside
          :mod:`repro.obs`; simulated time comes from the timeline model
REP005    concurrency safety — pool-dispatched worker functions do not
          assign to module-level globals
========  ==============================================================
"""

from repro.checks.engine import (
    CheckReport,
    check_paths,
    check_source,
    iter_python_files,
)
from repro.checks.findings import SEVERITIES, Finding
from repro.checks.rules import ALL_RULES, get_rules

__all__ = [
    "Finding",
    "SEVERITIES",
    "CheckReport",
    "check_paths",
    "check_source",
    "iter_python_files",
    "ALL_RULES",
    "get_rules",
]
