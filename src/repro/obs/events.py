"""Typed per-round events of a federated training run.

Every observable step of Algorithm 1 emits one event: the selection of
``Gamma_j``, the DVFS frequency assignment, the simulated TDMA
timeline, battery-driven update drops, the FedAvg aggregation, each
global-model evaluation, and finally the run's stop (with the reason —
deadline, target accuracy, plateau, or round-budget exhaustion).

Events are frozen dataclasses with a stable string ``kind`` and a
:meth:`Event.to_dict` JSON-friendly form; :mod:`repro.obs.schema`
validates the serialized shape and :mod:`repro.obs.sinks` carries the
stream to its destination. Events describe the run — they never feed
back into it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from enum import Enum
from typing import ClassVar, Dict, Tuple

__all__ = [
    "StopReason",
    "Event",
    "SelectionEvent",
    "FrequencyAssignmentEvent",
    "TimelineEvent",
    "BatteryDropEvent",
    "AggregationEvent",
    "EvalEvent",
    "RunStopEvent",
    "EVENT_TYPES",
]


class StopReason(str, Enum):
    """Why a training run ended.

    Attributes:
        ROUNDS_EXHAUSTED: the configured round budget ``J`` ran out.
        DEADLINE: the simulated clock passed ``deadline_s``
            (constraint 14).
        TARGET_ACCURACY: test accuracy reached ``target_accuracy``.
        PLATEAU: the test loss stopped improving for
            ``convergence_patience`` evaluations (Algorithm 1's
            convergence check).
    """

    ROUNDS_EXHAUSTED = "rounds_exhausted"
    DEADLINE = "deadline"
    TARGET_ACCURACY = "target_accuracy"
    PLATEAU = "plateau"


def _plain(value):
    """JSON-friendly copy: tuples become lists, dict keys become str."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class Event:
    """Base class of all trace events.

    Subclasses set ``kind`` (the stable wire name appearing as the
    ``"event"`` key of the serialized form) and declare their payload
    fields.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """JSON-friendly dict form: ``{"event": kind, **fields}``."""
        payload: dict = {"event": self.kind}
        for spec in fields(self):
            payload[spec.name] = _plain(getattr(self, spec.name))
        return payload


@dataclass(frozen=True)
class SelectionEvent(Event):
    """The user set ``Gamma_j`` chosen for one round.

    Attributes:
        round_index: 1-based FL round index ``j``.
        selected_ids: device ids in selection order.
    """

    kind = "selection"

    round_index: int
    selected_ids: Tuple[int, ...]


@dataclass(frozen=True)
class FrequencyAssignmentEvent(Event):
    """The CPU operating frequencies assigned to the selected users.

    Attributes:
        round_index: 1-based FL round index ``j``.
        frequencies: mapping from device id to assigned frequency (Hz).
    """

    kind = "frequency_assignment"

    round_index: int
    frequencies: Dict[int, float]


@dataclass(frozen=True)
class TimelineEvent(Event):
    """The simulated TDMA cost of one round (Eqs. 10–11).

    Attributes:
        round_index: 1-based FL round index ``j``.
        round_delay: Eq. (10) for this round, seconds.
        round_energy: Eq. (11) for this round, joules.
        compute_energy: compute share of ``round_energy``.
        upload_energy: upload share of ``round_energy``.
        slack: total idle wait across selected users, seconds.
        cumulative_time: simulated clock after this round, seconds.
        cumulative_energy: total energy after this round, joules.
    """

    kind = "timeline"

    round_index: int
    round_delay: float
    round_energy: float
    compute_energy: float
    upload_energy: float
    slack: float
    cumulative_time: float
    cumulative_energy: float


@dataclass(frozen=True)
class BatteryDropEvent(Event):
    """Devices whose battery could not pay the round (update dropped).

    Emitted only on rounds where battery enforcement actually dropped
    at least one update.

    Attributes:
        round_index: 1-based FL round index ``j``.
        dropped_ids: ids of the devices that shut down, in selection
            order.
    """

    kind = "battery_drop"

    round_index: int
    dropped_ids: Tuple[int, ...]


@dataclass(frozen=True)
class AggregationEvent(Event):
    """The FedAvg integration step of one round (Eq. 18).

    Attributes:
        round_index: 1-based FL round index ``j``.
        num_updates: client updates the server integrated (0 when
            every update was dropped).
        total_weight: summed FedAvg weights ``sum |D_q|`` of the
            integrated updates.
    """

    kind = "aggregation"

    round_index: int
    num_updates: int
    total_weight: float


@dataclass(frozen=True)
class EvalEvent(Event):
    """One global-model evaluation on the server's test set.

    Attributes:
        round_index: 1-based FL round index ``j``.
        test_loss: global-model test loss.
        test_accuracy: global-model test accuracy in ``[0, 1]``.
    """

    kind = "eval"

    round_index: int
    test_loss: float
    test_accuracy: float


@dataclass(frozen=True)
class RunStopEvent(Event):
    """The end of a training run, with the reason it stopped.

    Attributes:
        round_index: the last round that executed.
        reason: a :class:`StopReason` value.
        cumulative_time: final simulated clock, seconds.
        cumulative_energy: final total energy, joules.
        label: the run's history label (e.g. ``"HELCFL"``).
    """

    kind = "run_stop"

    round_index: int
    reason: str
    cumulative_time: float
    cumulative_energy: float
    label: str = ""


EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        SelectionEvent,
        FrequencyAssignmentEvent,
        TimelineEvent,
        BatteryDropEvent,
        AggregationEvent,
        EvalEvent,
        RunStopEvent,
    )
}
"""Registry mapping each event ``kind`` to its dataclass."""
