"""Typed per-round events of a federated training run.

Every observable step of Algorithm 1 emits one event: the selection of
``Gamma_j``, the DVFS frequency assignment, injected faults and the
clients they cost, the simulated TDMA timeline, battery-driven update
drops, round-degradation summaries, the FedAvg aggregation, each
global-model evaluation, and finally the run's stop (with the reason —
deadline, target accuracy, plateau, round-budget exhaustion, or an
escaped error).

Events are frozen dataclasses with a stable string ``kind`` and a
:meth:`Event.to_dict` JSON-friendly form; :mod:`repro.obs.schema`
validates the serialized shape and :mod:`repro.obs.sinks` carries the
stream to its destination. Events describe the run — they never feed
back into it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from enum import Enum
from typing import ClassVar, Dict, Tuple

__all__ = [
    "StopReason",
    "Event",
    "SelectionEvent",
    "FrequencyAssignmentEvent",
    "FaultInjectedEvent",
    "ClientDroppedEvent",
    "DeviceRoundEvent",
    "TimelineEvent",
    "BatteryDropEvent",
    "RoundDegradedEvent",
    "AggregationEvent",
    "EvalEvent",
    "SpanStartEvent",
    "SpanEndEvent",
    "WorkerResourceEvent",
    "RunStopEvent",
    "EVENT_TYPES",
]


class StopReason(str, Enum):
    """Why a training run ended.

    Attributes:
        ROUNDS_EXHAUSTED: the configured round budget ``J`` ran out.
        DEADLINE: the simulated clock passed ``deadline_s``
            (constraint 14).
        TARGET_ACCURACY: test accuracy reached ``target_accuracy``.
        PLATEAU: the test loss stopped improving for
            ``convergence_patience`` evaluations (Algorithm 1's
            convergence check).
        ERROR: an exception escaped the round loop; the trainer emits
            the terminal ``run_stop`` event before re-raising so a
            crashed (e.g. chaos) run still leaves a well-terminated
            trace.
    """

    ROUNDS_EXHAUSTED = "rounds_exhausted"
    DEADLINE = "deadline"
    TARGET_ACCURACY = "target_accuracy"
    PLATEAU = "plateau"
    ERROR = "error"


def _plain(value):
    """JSON-friendly copy: tuples become lists, dict keys become str."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class Event:
    """Base class of all trace events.

    Subclasses set ``kind`` (the stable wire name appearing as the
    ``"event"`` key of the serialized form) and declare their payload
    fields.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """JSON-friendly dict form: ``{"event": kind, **fields}``."""
        payload: dict = {"event": self.kind}
        for spec in fields(self):
            payload[spec.name] = _plain(getattr(self, spec.name))
        return payload


@dataclass(frozen=True)
class SelectionEvent(Event):
    """The user set ``Gamma_j`` chosen for one round.

    Attributes:
        round_index: 1-based FL round index ``j``.
        selected_ids: device ids in selection order.
    """

    kind = "selection"

    round_index: int
    selected_ids: Tuple[int, ...]


@dataclass(frozen=True)
class FrequencyAssignmentEvent(Event):
    """The CPU operating frequencies assigned to the selected users.

    Attributes:
        round_index: 1-based FL round index ``j``.
        frequencies: mapping from device id to assigned frequency (Hz).
    """

    kind = "frequency_assignment"

    round_index: int
    frequencies: Dict[int, float]


@dataclass(frozen=True)
class FaultInjectedEvent(Event):
    """One fault from the active :class:`repro.faults.FaultPlan` fired.

    Emitted before the round's local updates run, once per firing
    fault, in (spec, device) order.

    Attributes:
        round_index: 1-based FL round index ``j``.
        device_id: the victim device.
        fault: the fault kind (``"dropout"``, ``"straggler"``,
            ``"channel"``, ``"battery_death"``).
        detail: phase/mode qualifier (e.g. ``"before_compute"``,
            ``"degrade"``); empty when the kind needs none.
        magnitude: the fault's scalar (progress, slowdown, rate
            scale); 1.0 where meaningless.
    """

    kind = "fault_injected"

    round_index: int
    device_id: int
    fault: str
    detail: str
    magnitude: float


@dataclass(frozen=True)
class ClientDroppedEvent(Event):
    """One selected client's update was lost in a degraded round.

    Emitted once per lost client on rounds where fault injection or
    the round deadline is active, covering every loss cause (the
    battery-specific aggregate :class:`BatteryDropEvent` is still
    emitted alongside for battery-caused drops).

    Attributes:
        round_index: 1-based FL round index ``j``.
        device_id: the client whose update was lost.
        cause: why — ``"dropout"``, ``"channel_outage"``,
            ``"battery_death"``, ``"battery"`` (natural depletion), or
            ``"round_deadline"``.
        phase: where in the round — ``"before_compute"``,
            ``"compute"``, ``"upload"``, or ``"round"`` (losses only
            resolvable at round granularity, e.g. battery accounting).
    """

    kind = "client_dropped"

    round_index: int
    device_id: int
    cause: str
    phase: str


@dataclass(frozen=True)
class DeviceRoundEvent(Event):
    """One selected user's cost breakdown within a TDMA round.

    The per-user complement of :class:`TimelineEvent`: one event per
    entry of the round's :class:`~repro.network.tdma.RoundTimeline`,
    in channel-grant order (fault-lost users trail the queued ones).
    Carrying both the operating frequency and the device's ``f_max``
    makes the trace self-contained for DVFS attribution: Eq. (5)
    scales compute energy by ``f^2`` and Eq. (4) scales compute delay
    by ``1/f``, so :mod:`repro.obs.analysis` can recompute the
    all-``f_max`` counterfactual without the device objects.

    Attributes:
        round_index: 1-based FL round index ``j``.
        device_id: the user's id.
        frequency: CPU operating frequency used this round (Hz).
        f_max: the device's maximum CPU frequency (Hz).
        compute_delay: Eq. (4) seconds actually spent computing (partial
            for users lost mid-compute).
        upload_delay: Eq. (7) seconds actually spent uploading.
        slack: idle wait between compute end and channel grant, seconds.
        compute_energy: Eq. (5) joules actually spent computing.
        upload_energy: Eq. (8) joules actually spent uploading.
        outcome: ``"ok"``, ``"dropped"``, or ``"timeout"`` (the shared
            :data:`repro.network.tdma.CLIENT_OUTCOMES` vocabulary).
    """

    kind = "device_round"

    round_index: int
    device_id: int
    frequency: float
    f_max: float
    compute_delay: float
    upload_delay: float
    slack: float
    compute_energy: float
    upload_energy: float
    outcome: str


@dataclass(frozen=True)
class TimelineEvent(Event):
    """The simulated TDMA cost of one round (Eqs. 10–11).

    Attributes:
        round_index: 1-based FL round index ``j``.
        round_delay: Eq. (10) for this round, seconds.
        round_energy: Eq. (11) for this round, joules.
        compute_energy: compute share of ``round_energy``.
        upload_energy: upload share of ``round_energy``.
        slack: total idle wait across selected users, seconds.
        cumulative_time: simulated clock after this round, seconds.
        cumulative_energy: total energy after this round, joules.
    """

    kind = "timeline"

    round_index: int
    round_delay: float
    round_energy: float
    compute_energy: float
    upload_energy: float
    slack: float
    cumulative_time: float
    cumulative_energy: float


@dataclass(frozen=True)
class BatteryDropEvent(Event):
    """Devices whose battery could not pay the round (update dropped).

    Emitted only on rounds where battery enforcement actually dropped
    at least one update.

    Attributes:
        round_index: 1-based FL round index ``j``.
        dropped_ids: ids of the devices that shut down, in selection
            order.
    """

    kind = "battery_drop"

    round_index: int
    dropped_ids: Tuple[int, ...]


@dataclass(frozen=True)
class RoundDegradedEvent(Event):
    """A round ended with fewer integrated updates than planned.

    Emitted at most once per round, after battery enforcement and
    before aggregation, on rounds where fault injection, the round
    deadline, or battery enforcement lost at least one planned update
    — or where a pre-compute dropout forced the DVFS slack schedule to
    be recomputed.

    Attributes:
        round_index: 1-based FL round index ``j``.
        planned: clients originally selected (after over-selection).
        aggregated: surviving updates the server integrated.
        dropped_ids: clients lost to faults or batteries, in selection
            order.
        timeout_ids: clients cut off by the round deadline, in
            selection order.
        reassigned_frequencies: whether the frequency policy re-ran
            over the survivors after a pre-compute dropout.
    """

    kind = "round_degraded"

    round_index: int
    planned: int
    aggregated: int
    dropped_ids: Tuple[int, ...]
    timeout_ids: Tuple[int, ...]
    reassigned_frequencies: bool


@dataclass(frozen=True)
class AggregationEvent(Event):
    """The FedAvg integration step of one round (Eq. 18).

    Attributes:
        round_index: 1-based FL round index ``j``.
        num_updates: client updates the server integrated (0 when
            every update was dropped).
        total_weight: summed FedAvg weights ``sum |D_q|`` of the
            integrated updates.
    """

    kind = "aggregation"

    round_index: int
    num_updates: int
    total_weight: float


@dataclass(frozen=True)
class EvalEvent(Event):
    """One global-model evaluation on the server's test set.

    Attributes:
        round_index: 1-based FL round index ``j``.
        test_loss: global-model test loss.
        test_accuracy: global-model test accuracy in ``[0, 1]``.
    """

    kind = "eval"

    round_index: int
    test_loss: float
    test_accuracy: float


@dataclass(frozen=True)
class SpanStartEvent(Event):
    """A hierarchical timing span opened (see :mod:`repro.obs.spans`).

    Span ids are deterministic path-like names (``"run"``,
    ``"round-3"``, ``"round-3/selection"``,
    ``"round-3/task-17"``), so two identical runs produce identical
    span *structure*; only the wall-clock annotations differ.

    Attributes:
        round_index: 1-based FL round the span belongs to (0 for
            run/campaign-level spans).
        span_id: the span's deterministic id, unique within a run.
        parent_id: the enclosing span's id (``""`` for a root span).
        name: the span's human-readable stage name (e.g.
            ``"selection"``; not necessarily unique).
        t_wall: wall-clock time at open, seconds (observational only —
            never compared or replayed).
        pid: OS process id of the process that *measured* the span
            (worker-side task spans carry the worker's pid even though
            the parent writes the event).
    """

    kind = "span_start"

    round_index: int
    span_id: str
    parent_id: str
    name: str
    t_wall: float
    pid: int


@dataclass(frozen=True)
class SpanEndEvent(Event):
    """A previously opened span closed.

    Attributes:
        round_index: 1-based FL round the span belongs to (0 for
            run/campaign-level spans).
        span_id: the id from the matching :class:`SpanStartEvent`.
        t_wall: wall-clock time at close, seconds (observational only).
        duration_s: measured wall-clock duration, seconds.
        pid: OS process id of the process that measured the span.
    """

    kind = "span_end"

    round_index: int
    span_id: str
    t_wall: float
    duration_s: float
    pid: int


@dataclass(frozen=True)
class WorkerResourceEvent(Event):
    """Sampled OS resource usage of the process that ran a span.

    Emitted between a span's start and end events (so analysis
    attributes it to that span). For process-backend task spans the
    sample is taken *inside the worker* and shipped back with the
    result; for serial/thread backends it describes the parent
    process. Values are observational only and never enter compared
    metrics.

    Attributes:
        round_index: 1-based FL round of the owning span (0 for
            run-level samples).
        span_id: the owning span's id.
        pid: OS process id the sample describes.
        rss_peak_kb: lifetime peak resident set size of that process,
            kilobytes (``ru_maxrss``).
        cpu_user_s: user-mode CPU seconds spent inside the span.
        cpu_sys_s: kernel-mode CPU seconds spent inside the span.
    """

    kind = "worker_resource"

    round_index: int
    span_id: str
    pid: int
    rss_peak_kb: float
    cpu_user_s: float
    cpu_sys_s: float


@dataclass(frozen=True)
class RunStopEvent(Event):
    """The end of a training run, with the reason it stopped.

    Attributes:
        round_index: the last round that executed.
        reason: a :class:`StopReason` value.
        cumulative_time: final simulated clock, seconds.
        cumulative_energy: final total energy, joules.
        label: the run's history label (e.g. ``"HELCFL"``).
    """

    kind = "run_stop"

    round_index: int
    reason: str
    cumulative_time: float
    cumulative_energy: float
    label: str = ""


EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        SelectionEvent,
        FrequencyAssignmentEvent,
        FaultInjectedEvent,
        ClientDroppedEvent,
        DeviceRoundEvent,
        TimelineEvent,
        BatteryDropEvent,
        RoundDegradedEvent,
        AggregationEvent,
        EvalEvent,
        SpanStartEvent,
        SpanEndEvent,
        WorkerResourceEvent,
        RunStopEvent,
    )
}
"""Registry mapping each event ``kind`` to its dataclass."""
