"""The run observer: one handle bundling trace sink + metrics.

:class:`RunObserver` is what the trainer, the execution backends, and
the energy ledger are instrumented against. It pairs an
:class:`~repro.obs.sinks.EventSink` (the qualitative event trace) with
a :class:`~repro.obs.metrics.MetricsRegistry` (the quantitative
counters/gauges/timers), so call sites need a single optional
argument.

The default observer (no sink given) discards every event but still
aggregates metrics — the cost is a few dict updates per round, far
below the training work, and it keeps the instrumentation
branch-free. Observation is strictly read-only with respect to the
run: enabling tracing leaves the produced
:class:`~repro.fl.history.TrainingHistory` bitwise identical.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import EventSink, JsonlTraceSink, NullSink
from repro.obs.spans import NOOP_SPAN, Span

__all__ = ["RunObserver", "configure_logging"]


class RunObserver:
    """Pluggable observation point for one (or more) training runs.

    Args:
        sink: event destination; ``None`` discards events (tracing
            off, the default).
        metrics: registry to aggregate into; ``None`` creates a fresh
            one (exposed as ``observer.metrics``).
        spans_enabled: whether :meth:`span` produces live spans
            (requires tracing too); False compiles every span to the
            shared no-op.
        parent_span_id: span id of the enclosing span in a *parent
            process* (the campaign span when a pool worker runs this
            trainer); becomes the run span's ``parent_id``.
    """

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans_enabled: bool = True,
        parent_span_id: str = "",
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans_enabled = bool(spans_enabled)
        self.parent_span_id = str(parent_span_id)

    @classmethod
    def to_path(cls, path: str, spans_enabled: bool = True) -> RunObserver:
        """An observer streaming a JSONL trace to ``path``."""
        return cls(sink=JsonlTraceSink(path), spans_enabled=spans_enabled)

    @property
    def tracing(self) -> bool:
        """Whether events actually go anywhere (sink is not null)."""
        return not isinstance(self.sink, NullSink)

    @property
    def spans_active(self) -> bool:
        """Whether :meth:`span` returns live spans right now."""
        return self.spans_enabled and self.tracing

    def span(
        self,
        name: str,
        span_id: Optional[str] = None,
        parent_id: str = "",
        round_index: int = 0,
        resources: bool = False,
        emit_start: bool = True,
    ):
        """Open a hierarchical timing span (see :mod:`repro.obs.spans`).

        Returns the shared no-op span when tracing or spans are off,
        so call sites stay branch-free and results stay bitwise
        identical. See :class:`repro.obs.spans.Span` for the
        parameters; ``span_id`` defaults to ``name``.
        """
        if not self.spans_active:
            return NOOP_SPAN
        return Span(
            self,
            name,
            span_id if span_id is not None else name,
            parent_id=parent_id,
            round_index=round_index,
            resources=resources,
            emit_start=emit_start,
        )

    def emit(self, event: Event) -> None:
        """Forward one event to the sink and count it."""
        self.sink.emit(event)
        self.metrics.inc("events_emitted")

    def timer(self, name: str):
        """Context manager timing its body into ``metrics``."""
        return self.metrics.timer(name)

    def close(self) -> None:
        """Close the sink (idempotent)."""
        self.sink.close()

    def __enter__(self) -> RunObserver:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def configure_logging(
    level: Union[int, str] = "INFO", stream=None
) -> logging.Logger:
    """Configure the library's ``repro`` logger and return it.

    Attaches a single stream handler (stderr by default) the first
    time it is called; later calls only adjust the level, so the CLI
    and tests can call it repeatedly without duplicating output.

    Args:
        level: a :mod:`logging` level name (``"DEBUG"``, ``"INFO"``,
            ...) or numeric level.
        stream: destination stream; ``None`` uses ``sys.stderr``.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
