"""The run observer: one handle bundling trace sink + metrics.

:class:`RunObserver` is what the trainer, the execution backends, and
the energy ledger are instrumented against. It pairs an
:class:`~repro.obs.sinks.EventSink` (the qualitative event trace) with
a :class:`~repro.obs.metrics.MetricsRegistry` (the quantitative
counters/gauges/timers), so call sites need a single optional
argument.

The default observer (no sink given) discards every event but still
aggregates metrics — the cost is a few dict updates per round, far
below the training work, and it keeps the instrumentation
branch-free. Observation is strictly read-only with respect to the
run: enabling tracing leaves the produced
:class:`~repro.fl.history.TrainingHistory` bitwise identical.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import EventSink, JsonlTraceSink, NullSink

__all__ = ["RunObserver", "configure_logging"]


class RunObserver:
    """Pluggable observation point for one (or more) training runs.

    Args:
        sink: event destination; ``None`` discards events (tracing
            off, the default).
        metrics: registry to aggregate into; ``None`` creates a fresh
            one (exposed as ``observer.metrics``).
    """

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def to_path(cls, path: str) -> RunObserver:
        """An observer streaming a JSONL trace to ``path``."""
        return cls(sink=JsonlTraceSink(path))

    @property
    def tracing(self) -> bool:
        """Whether events actually go anywhere (sink is not null)."""
        return not isinstance(self.sink, NullSink)

    def emit(self, event: Event) -> None:
        """Forward one event to the sink and count it."""
        self.sink.emit(event)
        self.metrics.inc("events_emitted")

    def timer(self, name: str):
        """Context manager timing its body into ``metrics``."""
        return self.metrics.timer(name)

    def close(self) -> None:
        """Close the sink (idempotent)."""
        self.sink.close()

    def __enter__(self) -> RunObserver:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def configure_logging(
    level: Union[int, str] = "INFO", stream=None
) -> logging.Logger:
    """Configure the library's ``repro`` logger and return it.

    Attaches a single stream handler (stderr by default) the first
    time it is called; later calls only adjust the level, so the CLI
    and tests can call it repeatedly without duplicating output.

    Args:
        level: a :mod:`logging` level name (``"DEBUG"``, ``"INFO"``,
            ...) or numeric level.
        stream: destination stream; ``None`` uses ``sys.stderr``.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
