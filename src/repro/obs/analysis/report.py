"""Render run analytics as terminal tables, markdown, or JSON.

Rendering is a pure function of the :class:`RunStats` — no wall clock,
no environment probing — so the same trace always renders to the same
bytes, which is what lets CI diff reports across execution backends.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.obs.analysis.round_stats import RunStats

__all__ = ["render_report", "REPORT_FORMATS"]

REPORT_FORMATS = ("table", "markdown", "json")
"""Formats :func:`render_report` accepts."""


def _num(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def _pct(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{100 * value:.2f}%"


def _ids(ids) -> str:
    return ",".join(str(i) for i in ids) if ids else "—"


def _summary_rows(stats: RunStats) -> List[tuple]:
    rows = [
        ("label", stats.label or "—"),
        ("source", stats.source or "—"),
        (
            "stop reason",
            stats.stop_reason or "(truncated — no run_stop)",
        ),
        ("rounds", str(stats.num_rounds)),
        ("devices seen", str(len(stats.devices))),
        ("total time (s)", _num(stats.total_time)),
        ("total energy (J)", _num(stats.total_energy)),
        ("compute energy (J)", _num(stats.total_compute_energy)),
        ("upload energy (J)", _num(stats.total_upload_energy)),
        ("total slack (s)", _num(stats.total_slack)),
        ("evaluations", str(stats.evaluations)),
        ("final accuracy", _num(stats.final_accuracy)),
        ("best accuracy", _num(stats.best_accuracy)),
        ("final test loss", _num(stats.final_test_loss)),
    ]
    return rows


def _dvfs_rows(stats: RunStats) -> List[tuple]:
    return [
        (
            "all-f_max compute energy (J)",
            _num(stats.fmax_compute_energy),
        ),
        ("actual compute energy (J)", _num(stats.total_compute_energy)),
        ("DVFS savings (J)", _num(stats.dvfs_savings)),
        ("DVFS savings (%)", _pct(stats.dvfs_saving_fraction)),
        ("slack utilization", _pct(stats.slack_utilization)),
    ]


def _fairness_rows(stats: RunStats) -> List[tuple]:
    return [
        ("Jain index (selection)", _num(stats.jain_selection)),
        ("Jain index (energy)", _num(stats.jain_energy)),
        ("clients dropped", str(stats.clients_dropped)),
        ("clients timed out", str(stats.clients_timeout)),
    ]


def _span_rows(stats: RunStats) -> List[tuple]:
    spans = stats.spans
    rows = [
        ("spans", str(spans.spans_total)),
        ("unclosed", str(spans.spans_unclosed)),
        ("max depth", str(spans.max_depth)),
        ("critical path", " > ".join(spans.critical_path) or "—"),
    ]
    for name, count in sorted(spans.by_name.items()):
        rows.append((f"spans: {name}", str(count)))
    return rows


_SPAN_TIMING_HEADER = (
    "span",
    "count",
    "total (s)",
    "self (s)",
    "rss peak (KiB)",
    "cpu user (s)",
    "cpu sys (s)",
)


def _span_timing_row(row) -> tuple:
    name, count, total_s, self_s, rss_kb, cpu_user, cpu_sys = row
    return (
        name,
        str(count),
        f"{total_s:.4f}",
        f"{self_s:.4f}",
        f"{rss_kb:.0f}",
        f"{cpu_user:.4f}",
        f"{cpu_sys:.4f}",
    )


def _fault_rows(stats: RunStats) -> List[tuple]:
    rows = [
        ("degraded rounds", str(stats.degraded_rounds)),
        ("battery-drop rounds", str(stats.battery_drop_rounds)),
    ]
    for fault, count in sorted(stats.fault_counts.items()):
        rows.append((f"fault: {fault}", str(count)))
    for cause, count in sorted(stats.drop_causes.items()):
        rows.append((f"drop cause: {cause}", str(count)))
    return rows


_ROUND_HEADER = (
    "round",
    "sel",
    "agg",
    "drop",
    "t/o",
    "delay (s)",
    "energy (J)",
    "savings (J)",
    "slack use",
    "accuracy",
)


def _round_row(r) -> tuple:
    return (
        str(r.round_index),
        str(r.planned),
        "—" if r.aggregated is None else str(r.aggregated),
        str(len(r.dropped_ids)),
        str(len(r.timeout_ids)),
        _num(r.round_delay),
        _num(r.round_energy),
        _num(r.dvfs_savings),
        _pct(r.slack_utilization),
        _num(r.test_accuracy),
    )


_DEVICE_HEADER = (
    "device",
    "f_max",
    "sel",
    "done",
    "drop",
    "t/o",
    "energy (J)",
    "savings (J)",
    "slack (s)",
)


def _device_row(d) -> tuple:
    return (
        str(d.device_id),
        f"{d.f_max:.3g}",
        str(d.selected),
        str(d.completed),
        str(d.dropped),
        str(d.timeouts),
        _num(d.total_joules),
        _num(d.dvfs_savings),
        _num(d.slack_seconds),
    )


def _top_devices(stats: RunStats, top_devices: int):
    """The ``top_devices`` highest-energy devices, energy-descending.

    Ties break on device id so the listing stays deterministic.
    """
    ordered = sorted(
        stats.devices, key=lambda d: (-d.total_joules, d.device_id)
    )
    return ordered[:top_devices]


def _text_table(header, rows) -> List[str]:
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in rows))
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(h).rjust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return lines


def _render_table(stats: RunStats, top_devices: int, span_timing) -> str:
    out: List[str] = []

    def section(title: str, rows: List[tuple]) -> None:
        out.append(title)
        out.append("-" * len(title))
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            out.append(f"  {name:{width}s}  {value}")
        out.append("")

    section("Run summary", _summary_rows(stats))
    section("DVFS energy attribution (Eq. 5 counterfactual)",
            _dvfs_rows(stats))
    section("Fairness (Jain index, Eq. 20 selection pressure)",
            _fairness_rows(stats))
    if (
        stats.fault_counts
        or stats.drop_causes
        or stats.degraded_rounds
        or stats.battery_drop_rounds
    ):
        section("Faults & degradation", _fault_rows(stats))
    if stats.spans.spans_total:
        section("Span tree (structural, deterministic)", _span_rows(stats))
    if span_timing:
        title = "Span self-time (wall clock, from trace telemetry)"
        out.append(title)
        out.append("-" * len(title))
        out.extend(
            _text_table(
                _SPAN_TIMING_HEADER,
                [_span_timing_row(r) for r in span_timing],
            )
        )
        out.append("")

    out.append("Per-round")
    out.append("---------")
    out.extend(
        _text_table(_ROUND_HEADER, [_round_row(r) for r in stats.rounds])
    )
    out.append("")

    shown = _top_devices(stats, top_devices)
    title = f"Top {len(shown)} devices by energy"
    out.append(title)
    out.append("-" * len(title))
    out.extend(_text_table(_DEVICE_HEADER, [_device_row(d) for d in shown]))
    out.append("")
    return "\n".join(out)


def _md_table(header, rows) -> List[str]:
    lines = [
        "| " + " | ".join(str(h) for h in header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _render_markdown(stats: RunStats, top_devices: int, span_timing) -> str:
    out: List[str] = [f"# Trace report: {stats.label or stats.source or 'run'}", ""]

    def section(title: str, rows: List[tuple]) -> None:
        out.append(f"## {title}")
        out.append("")
        out.extend(
            _md_table(("metric", "value"), [(n, v) for n, v in rows])
        )
        out.append("")

    section("Run summary", _summary_rows(stats))
    section("DVFS energy attribution (Eq. 5 counterfactual)",
            _dvfs_rows(stats))
    section("Fairness", _fairness_rows(stats))
    if (
        stats.fault_counts
        or stats.drop_causes
        or stats.degraded_rounds
        or stats.battery_drop_rounds
    ):
        section("Faults & degradation", _fault_rows(stats))
    if stats.spans.spans_total:
        section("Span tree (structural, deterministic)", _span_rows(stats))
    if span_timing:
        out.append("## Span self-time (wall clock, from trace telemetry)")
        out.append("")
        out.extend(
            _md_table(
                _SPAN_TIMING_HEADER,
                [_span_timing_row(r) for r in span_timing],
            )
        )
        out.append("")

    out.append("## Per-round")
    out.append("")
    out.extend(
        _md_table(_ROUND_HEADER, [_round_row(r) for r in stats.rounds])
    )
    out.append("")

    shown = _top_devices(stats, top_devices)
    out.append(f"## Top {len(shown)} devices by energy")
    out.append("")
    out.extend(_md_table(_DEVICE_HEADER, [_device_row(d) for d in shown]))
    out.append("")
    return "\n".join(out)


def render_report(
    stats: RunStats,
    fmt: str = "table",
    top_devices: int = 10,
    span_timing=None,
) -> str:
    """Render a :class:`RunStats` in the requested format.

    Args:
        stats: the analytics to render.
        fmt: ``table`` (terminal), ``markdown``, or ``json``.
        top_devices: how many devices the device table shows (highest
            total energy first; the JSON format always contains all).
        span_timing: optional rows from
            :func:`repro.obs.analysis.spans.self_time_rows` — the
            wall-clock breakdown only a raw trace can supply. Rendered
            as an extra table/markdown section; the JSON format ignores
            it so snapshot bytes stay deterministic.

    Raises:
        ConfigurationError: for an unknown format or a non-positive
            ``top_devices``.
    """
    if fmt not in REPORT_FORMATS:
        raise ConfigurationError(
            f"unknown report format {fmt!r}; expected one of "
            f"{', '.join(REPORT_FORMATS)}"
        )
    if top_devices <= 0:
        raise ConfigurationError(
            f"top_devices must be positive, got {top_devices}"
        )
    if fmt == "json":
        return stats.to_json()
    if fmt == "markdown":
        return _render_markdown(stats, top_devices, span_timing)
    return _render_table(stats, top_devices, span_timing)
