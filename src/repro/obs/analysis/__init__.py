"""Trace analytics: read a JSONL trace back as typed events and derive
the run's quantitative story from it.

PRs 2 and 4 made every run emit a complete, crash-safe JSONL trace;
this subpackage is the half that *reads* those traces:

* :mod:`~repro.obs.analysis.loader` — reconstruct typed
  :class:`~repro.obs.events.Event` objects from any ``.jsonl`` /
  ``.jsonl.gz`` trace, tolerating the truncated tail a killed run can
  leave behind;
* :mod:`~repro.obs.analysis.round_stats` — per-round and per-device
  analytics grounded in the paper: the Eq. (5) all-``f_max`` energy
  counterfactual behind DVFS-savings attribution, Eq. (9)/(10) slack
  utilization, Eq. (20) selection-fairness (Jain index), and
  fault/degradation summaries;
* :mod:`~repro.obs.analysis.report` — render a
  :class:`~repro.obs.analysis.round_stats.RunStats` as deterministic
  terminal tables, markdown, or JSON;
* :mod:`~repro.obs.analysis.compare` — diff two runs and flag
  regressions beyond configurable thresholds (non-zero exit for CI).

Everything here is a pure function of the trace — no wall clock, no
randomness — so a report is byte-identical across execution backends
and repeat invocations. Entry points: ``python -m repro.obs.report``
and the ``repro trace-report`` / ``repro trace-compare`` CLI commands.
"""

from repro.obs.analysis.compare import (
    CompareThresholds,
    MetricDrift,
    RunComparison,
    compare_stats,
    render_comparison,
)
from repro.obs.analysis.loader import (
    LoadedTrace,
    event_from_payload,
    load_trace,
    load_trace_lines,
)
from repro.obs.analysis.report import render_report
from repro.obs.analysis.round_stats import (
    ANALYSIS_SCHEMA,
    DeviceStats,
    RoundStats,
    RunStats,
    compute_run_stats,
    jain_index,
    split_runs,
)
from repro.obs.analysis.spans import (
    SpanNode,
    SpanSummary,
    build_span_nodes,
    self_time_rows,
    summarize_spans,
)

__all__ = [
    "LoadedTrace",
    "event_from_payload",
    "load_trace",
    "load_trace_lines",
    "ANALYSIS_SCHEMA",
    "DeviceStats",
    "RoundStats",
    "RunStats",
    "compute_run_stats",
    "jain_index",
    "split_runs",
    "SpanNode",
    "SpanSummary",
    "build_span_nodes",
    "self_time_rows",
    "summarize_spans",
    "render_report",
    "CompareThresholds",
    "MetricDrift",
    "RunComparison",
    "compare_stats",
    "render_comparison",
]
