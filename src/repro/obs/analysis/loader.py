"""Reconstruct typed events from a JSONL trace.

The trace format is the contract :mod:`repro.obs.schema` validates;
this module closes the loop by turning validated JSON objects back
into the frozen :mod:`repro.obs.events` dataclasses, so analytics code
works with the same types the trainer emitted.

Crash tolerance: the :class:`~repro.obs.sinks.JsonlTraceSink` builds
each line before writing and flushes per event, so a crashed run's
trace is whole-line atomic — but a run killed mid-write (``kill -9``,
full disk) can still leave a torn final line. The loader therefore
treats a malformed *last* line as a truncated tail (recorded, not
fatal) while a malformed line anywhere else is a hard error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Iterable, List, Optional, Tuple

from repro.errors import SerializationError
from repro.obs.events import EVENT_TYPES, Event
from repro.obs.schema import validate_event
from repro.obs.sinks import open_trace_file

__all__ = ["LoadedTrace", "event_from_payload", "load_trace", "load_trace_lines"]


def _coerce(type_name: str, value):
    """Convert a JSON value back to the declared dataclass field type.

    Field annotations are the string forms the event dataclasses
    declare (``from __future__ import annotations``): scalars plus
    ``Tuple[int, ...]`` id-lists and ``Dict[int, float]`` frequency
    maps. The registry meta-test pins every event kind through this
    function, so a new field shape cannot ship unsupported.
    """
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    if type_name in ("str", "bool"):
        return value
    if type_name == "Tuple[int, ...]":
        return tuple(int(v) for v in value)
    if type_name == "Dict[int, float]":
        return {int(k): float(v) for k, v in value.items()}
    raise SerializationError(
        f"no loader coercion for event field type {type_name!r}"
    )


def event_from_payload(payload: dict) -> Event:
    """Rebuild the typed event a parsed trace object serializes.

    The payload is schema-validated first, so the returned dataclass
    round-trips: ``event_from_payload(e.to_dict()) == e``.

    Raises:
        SerializationError: when the payload fails schema validation
            or a field type has no coercion.
    """
    kind = validate_event(payload)
    cls = EVENT_TYPES[kind]
    kwargs = {
        spec.name: _coerce(spec.type, payload[spec.name])
        for spec in fields(cls)
    }
    return cls(**kwargs)


@dataclass(frozen=True)
class LoadedTrace:
    """A trace file read back as typed events.

    Attributes:
        events: the reconstructed events, in emission order.
        source: where the trace came from (path or caller label).
        truncated_tail: the raw text of a torn final line a killed run
            left behind; ``None`` for a cleanly written trace.
    """

    events: Tuple[Event, ...]
    source: str
    truncated_tail: Optional[str] = None

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> Tuple[Event, ...]:
        """The loaded events whose ``kind`` matches, in order."""
        return tuple(e for e in self.events if e.kind == kind)

    @property
    def complete(self) -> bool:
        """Whether the trace ends with a terminal ``run_stop`` event."""
        return bool(self.events) and self.events[-1].kind == "run_stop"


def load_trace_lines(
    lines: Iterable[str], source: str = "<lines>"
) -> LoadedTrace:
    """Load JSONL lines into a :class:`LoadedTrace`.

    Blank lines are skipped. A line that fails to parse or validate is
    tolerated only as the *final* non-blank line (a crash tail) — the
    offending text is preserved in :attr:`LoadedTrace.truncated_tail`.

    Raises:
        SerializationError: for a malformed line that is not the last.
    """
    stripped = [
        (number, text)
        for number, raw in enumerate(lines, start=1)
        if (text := raw.strip())
    ]
    events: List[Event] = []
    truncated_tail: Optional[str] = None
    for position, (line_number, text) in enumerate(stripped):
        try:
            events.append(event_from_payload(json.loads(text)))
        except (json.JSONDecodeError, SerializationError) as exc:
            if position == len(stripped) - 1:
                truncated_tail = text
                break
            raise SerializationError(
                f"{source}: trace line {line_number} is malformed "
                f"mid-stream (not a crash tail): {exc}"
            ) from exc
    return LoadedTrace(
        events=tuple(events), source=source, truncated_tail=truncated_tail
    )


def load_trace(path: str) -> LoadedTrace:
    """Load a ``.jsonl`` / ``.jsonl.gz`` trace file from ``path``."""
    with open_trace_file(path) as handle:
        return load_trace_lines(handle, source=str(path))
