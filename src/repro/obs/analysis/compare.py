"""Diff two runs' analytics and flag regressions for CI.

The comparator works on :class:`~repro.obs.analysis.round_stats.RunStats`
— either freshly computed from traces or rebuilt from snapshot JSON —
so a nightly job can compare today's run against a committed baseline
without re-running the baseline.

Regressions are *directional*: more energy or time than the baseline
is bad, less accuracy is bad; improvements never fail the gate. In
``strict`` mode (backend-parity checks) any difference at all is a
regression, because the three execution backends are contractually
bitwise-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.analysis.round_stats import RunStats

__all__ = [
    "CompareThresholds",
    "MetricDrift",
    "RunComparison",
    "compare_stats",
    "render_comparison",
]


@dataclass(frozen=True)
class CompareThresholds:
    """Drift tolerances for :func:`compare_stats`.

    Attributes:
        energy_rel: allowed relative increase in total energy (0.02 =
            2% more than baseline passes).
        time_rel: allowed relative increase in total simulated time.
        accuracy_abs: allowed absolute decrease in final accuracy.
        strict: when True, thresholds are ignored and *any* metric
            difference (in either direction) is a regression — the
            backend-parity mode.
    """

    energy_rel: float = 0.02
    time_rel: float = 0.02
    accuracy_abs: float = 0.02
    strict: bool = False

    def __post_init__(self) -> None:
        for name in ("energy_rel", "time_rel", "accuracy_abs"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"compare threshold {name} must be non-negative, "
                    f"got {value}"
                )


@dataclass(frozen=True)
class MetricDrift:
    """One compared metric: baseline vs. other, and the verdict.

    Attributes:
        metric: metric name (``total_energy``, ``final_accuracy``, ...).
        base: baseline value (None when the baseline lacks it).
        other: candidate value.
        delta: ``other - base`` (None when either side is missing).
        regression: whether this drift fails the configured gate.
        note: human-readable explanation of the verdict.
    """

    metric: str
    base: Optional[float]
    other: Optional[float]
    delta: Optional[float]
    regression: bool
    note: str


@dataclass(frozen=True)
class RunComparison:
    """The full diff of two runs.

    Attributes:
        base_label: the baseline run's label/source.
        other_label: the candidate run's label/source.
        drifts: every compared metric, in fixed order.
        thresholds: the gate the comparison was judged against.
    """

    base_label: str
    other_label: str
    drifts: Tuple[MetricDrift, ...]
    thresholds: CompareThresholds = field(default_factory=CompareThresholds)

    @property
    def regressions(self) -> Tuple[MetricDrift, ...]:
        """The drifts that fail the gate."""
        return tuple(d for d in self.drifts if d.regression)

    @property
    def ok(self) -> bool:
        """True when no compared metric regressed."""
        return not self.regressions


def _rel_delta(base: float, other: float) -> float:
    """Relative change of ``other`` vs. ``base`` (0 when base is 0)."""
    if base == 0.0:
        return 0.0 if other == 0.0 else float("inf")
    return (other - base) / abs(base)


def _drift(
    metric: str,
    base: Optional[float],
    other: Optional[float],
    thresholds: CompareThresholds,
    *,
    rel_limit: Optional[float] = None,
    abs_limit: Optional[float] = None,
    bad_direction: int = 0,
) -> MetricDrift:
    """Judge one metric pair against the gate.

    ``bad_direction`` is +1 when increases regress (energy, time), -1
    when decreases regress (accuracy), 0 for informational metrics
    that never fail a non-strict gate.
    """
    if base is None or other is None:
        missing = "baseline" if base is None else "candidate"
        present = other if base is None else base
        regression = thresholds.strict and base != other
        return MetricDrift(
            metric=metric,
            base=base,
            other=other,
            delta=None,
            regression=regression,
            note=f"missing in {missing}" if present is not None else "absent",
        )
    delta = other - base
    if thresholds.strict:
        if delta != 0.0:
            return MetricDrift(
                metric, base, other, delta, True, "strict: values differ"
            )
        return MetricDrift(metric, base, other, delta, False, "identical")
    if bad_direction == 0 or delta == 0.0:
        return MetricDrift(metric, base, other, delta, False, "ok")
    adverse = delta * bad_direction > 0.0
    if not adverse:
        return MetricDrift(metric, base, other, delta, False, "improved")
    if rel_limit is not None:
        rel = abs(_rel_delta(base, other))
        if rel > rel_limit:
            return MetricDrift(
                metric,
                base,
                other,
                delta,
                True,
                f"{100 * rel:.2f}% worse > {100 * rel_limit:.2f}% allowed",
            )
        return MetricDrift(
            metric, base, other, delta, False,
            f"{100 * rel:.2f}% worse, within {100 * rel_limit:.2f}%",
        )
    if abs_limit is not None:
        if abs(delta) > abs_limit:
            return MetricDrift(
                metric,
                base,
                other,
                delta,
                True,
                f"{abs(delta):.4f} worse > {abs_limit:.4f} allowed",
            )
        return MetricDrift(
            metric, base, other, delta, False,
            f"{abs(delta):.4f} worse, within {abs_limit:.4f}",
        )
    return MetricDrift(metric, base, other, delta, False, "ok")


def compare_stats(
    base: RunStats,
    other: RunStats,
    thresholds: Optional[CompareThresholds] = None,
) -> RunComparison:
    """Compare a candidate run against a baseline run.

    Args:
        base: the reference run.
        other: the run under test.
        thresholds: the gate; defaults to :class:`CompareThresholds`.

    Returns:
        A :class:`RunComparison` whose :attr:`~RunComparison.ok` drives
        the CLI exit code.
    """
    t = thresholds if thresholds is not None else CompareThresholds()
    drifts: List[MetricDrift] = [
        _drift(
            "rounds", float(base.num_rounds), float(other.num_rounds), t
        ),
        _drift(
            "total_energy",
            base.total_energy,
            other.total_energy,
            t,
            rel_limit=t.energy_rel,
            bad_direction=+1,
        ),
        _drift(
            "total_time",
            base.total_time,
            other.total_time,
            t,
            rel_limit=t.time_rel,
            bad_direction=+1,
        ),
        _drift(
            "final_accuracy",
            base.final_accuracy,
            other.final_accuracy,
            t,
            abs_limit=t.accuracy_abs,
            bad_direction=-1,
        ),
        _drift(
            "best_accuracy",
            base.best_accuracy,
            other.best_accuracy,
            t,
            abs_limit=t.accuracy_abs,
            bad_direction=-1,
        ),
        _drift(
            "compute_energy",
            base.total_compute_energy,
            other.total_compute_energy,
            t,
        ),
        _drift(
            "upload_energy",
            base.total_upload_energy,
            other.total_upload_energy,
            t,
        ),
        _drift("dvfs_savings", base.dvfs_savings, other.dvfs_savings, t),
        _drift("jain_selection", base.jain_selection, other.jain_selection, t),
        _drift(
            "clients_dropped",
            float(base.clients_dropped),
            float(other.clients_dropped),
            t,
        ),
        _drift(
            "clients_timeout",
            float(base.clients_timeout),
            float(other.clients_timeout),
            t,
        ),
        # Span-tree structure: informational in thresholded mode (a
        # spans-off candidate legitimately reports zeros against a
        # traced baseline), exact-match in strict backend-parity mode
        # where the structural digest is contractually identical.
        _drift(
            "spans_total",
            float(base.spans.spans_total),
            float(other.spans.spans_total),
            t,
        ),
        _drift(
            "spans_unclosed",
            float(base.spans.spans_unclosed),
            float(other.spans.spans_unclosed),
            t,
        ),
        _drift(
            "span_max_depth",
            float(base.spans.max_depth),
            float(other.spans.max_depth),
            t,
        ),
        _drift(
            "critical_path_len",
            float(base.spans.critical_path_len),
            float(other.spans.critical_path_len),
            t,
        ),
    ]
    return RunComparison(
        base_label=base.label or base.source or "base",
        other_label=other.label or other.source or "other",
        drifts=tuple(drifts),
        thresholds=t,
    )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.6g}"


def render_comparison(comparison: RunComparison) -> str:
    """Render a comparison as a deterministic terminal table."""
    lines = [
        f"run comparison: {comparison.base_label} (base) vs "
        f"{comparison.other_label}",
        (
            "mode: strict (any difference fails)"
            if comparison.thresholds.strict
            else (
                "thresholds: "
                f"energy +{100 * comparison.thresholds.energy_rel:.1f}%  "
                f"time +{100 * comparison.thresholds.time_rel:.1f}%  "
                f"accuracy -{comparison.thresholds.accuracy_abs:.3f}"
            )
        ),
        "",
        f"{'metric':18s} {'base':>14s} {'other':>14s} "
        f"{'delta':>12s}  verdict",
    ]
    for d in comparison.drifts:
        verdict = "REGRESSION" if d.regression else "ok"
        lines.append(
            f"{d.metric:18s} {_fmt(d.base):>14s} {_fmt(d.other):>14s} "
            f"{_fmt(d.delta):>12s}  {verdict} ({d.note})"
        )
    lines.append("")
    if comparison.ok:
        lines.append("RESULT: PASS — no regressions")
    else:
        names = ", ".join(d.metric for d in comparison.regressions)
        lines.append(
            f"RESULT: FAIL — {len(comparison.regressions)} "
            f"regression(s): {names}"
        )
    return "\n".join(lines)
