"""Per-round and per-device analytics derived purely from a trace.

Everything here is a deterministic function of the event stream — no
wall clock, no RNG, no device objects — so the same trace always
yields the same :class:`RunStats`, byte for byte, whichever backend
produced it.

The paper-grounded derivations:

* **DVFS attribution (Eq. 5).** Compute energy scales as ``f^2``, so a
  traced per-device compute energy at frequency ``f`` recomputes to
  the all-``f_max`` counterfactual as ``E * (f_max / f)^2``. The gap
  between the counterfactual and the traced energy is exactly the
  saving HELCFL's Algorithm 3 extracted from slack.
* **Slack utilization (Eqs. 9–10).** Replaying the round's FIFO TDMA
  queue with compute delays rescaled to ``f_max`` (Eq. 4 scales delay
  by ``1/f``) yields the idle wait a max-frequency schedule would have
  had; the fraction of it the traced schedule consumed is the slack
  utilization.
* **Selection fairness (Eq. 20).** The utility-decay term exists to
  spread participation; the Jain index over per-device selection
  counts (and over per-device energy) quantifies how evenly the run
  actually spread it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SerializationError
from repro.obs.analysis.spans import SpanSummary, summarize_spans
from repro.obs.events import Event

__all__ = [
    "ANALYSIS_SCHEMA",
    "RoundStats",
    "DeviceStats",
    "RunStats",
    "jain_index",
    "split_runs",
    "compute_run_stats",
]

ANALYSIS_SCHEMA = "repro.obs.analysis/v1"
"""Marker naming the JSON shape of :meth:`RunStats.to_dict`."""


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even; ``1/n`` means one member took
    everything. Empty or all-zero inputs read as perfectly fair.
    """
    floats = [float(v) for v in values]
    n = len(floats)
    if n == 0:
        return 1.0
    square_sum = sum(v * v for v in floats)
    if square_sum == 0.0:
        return 1.0
    total = sum(floats)
    return (total * total) / (n * square_sum)


@dataclass(frozen=True)
class RoundStats:
    """Everything one round's events say about it.

    Fields sourced from events that a truncated (crashed) trace may
    lack are ``Optional`` — a round whose ``timeline`` never made it
    to disk still reports its selection.

    Attributes:
        round_index: 1-based FL round index ``j``.
        selected_ids: ``Gamma_j`` in selection order (over-selection
            extras included).
        aggregated: updates the server integrated (None if the
            ``aggregation`` event is missing from a crash tail).
        total_weight: summed FedAvg weights of the integrated updates.
        dropped_ids: clients lost to faults or batteries.
        timeout_ids: clients cut off by the round deadline.
        fault_count: injected-fault events this round.
        reassigned_frequencies: whether DVFS re-planned mid-round.
        round_delay: Eq. (10) seconds.
        round_energy: Eq. (11) joules.
        compute_energy: compute share of ``round_energy``.
        upload_energy: upload share of ``round_energy``.
        slack: total idle wait across selected users, seconds.
        cumulative_time: simulated clock after this round.
        cumulative_energy: total energy after this round.
        fmax_compute_energy: Eq. (5) counterfactual compute energy had
            every user run at ``f_max`` (None without per-device
            events — pre-analytics traces).
        fmax_slack: counterfactual idle wait of the all-``f_max`` FIFO
            schedule, over users whose upload completed.
        ok_slack: traced idle wait over the same completed users.
        test_loss: global-model test loss (None without evaluation).
        test_accuracy: global-model test accuracy.
    """

    round_index: int
    selected_ids: Tuple[int, ...]
    aggregated: Optional[int] = None
    total_weight: Optional[float] = None
    dropped_ids: Tuple[int, ...] = ()
    timeout_ids: Tuple[int, ...] = ()
    fault_count: int = 0
    reassigned_frequencies: bool = False
    round_delay: Optional[float] = None
    round_energy: Optional[float] = None
    compute_energy: Optional[float] = None
    upload_energy: Optional[float] = None
    slack: Optional[float] = None
    cumulative_time: Optional[float] = None
    cumulative_energy: Optional[float] = None
    fmax_compute_energy: Optional[float] = None
    fmax_slack: Optional[float] = None
    ok_slack: Optional[float] = None
    test_loss: Optional[float] = None
    test_accuracy: Optional[float] = None

    @property
    def planned(self) -> int:
        """Clients the round planned to integrate (selection size)."""
        return len(self.selected_ids)

    @property
    def dvfs_savings(self) -> Optional[float]:
        """Joules Algorithm 3 saved vs. the all-``f_max`` schedule."""
        if self.fmax_compute_energy is None or self.compute_energy is None:
            return None
        return self.fmax_compute_energy - self.compute_energy

    @property
    def slack_utilization(self) -> Optional[float]:
        """Fraction of the ``f_max`` schedule's slack DVFS consumed."""
        if self.fmax_slack is None or self.ok_slack is None:
            return None
        if self.fmax_slack <= 0.0:
            return 0.0
        return 1.0 - self.ok_slack / self.fmax_slack


@dataclass(frozen=True)
class DeviceStats:
    """One device's footprint across the run.

    Attributes:
        device_id: the device.
        f_max: its maximum CPU frequency (0.0 without per-device
            events).
        selected: rounds the device was selected in.
        participated: rounds it actually executed (timeline entries —
            pre-compute dropouts never reach the timeline).
        completed: rounds its upload reached the server.
        dropped: rounds its update was lost (faults, batteries).
        timeouts: rounds the deadline cut it off.
        compute_joules: total Eq. (5) energy actually spent.
        upload_joules: total Eq. (8) energy actually spent.
        slack_seconds: total idle wait.
        fmax_compute_joules: Eq. (5) counterfactual compute energy at
            ``f_max``.
    """

    device_id: int
    f_max: float = 0.0
    selected: int = 0
    participated: int = 0
    completed: int = 0
    dropped: int = 0
    timeouts: int = 0
    compute_joules: float = 0.0
    upload_joules: float = 0.0
    slack_seconds: float = 0.0
    fmax_compute_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        """Compute plus upload energy actually spent."""
        return self.compute_joules + self.upload_joules

    @property
    def dvfs_savings(self) -> float:
        """Joules DVFS saved this device vs. always-``f_max``."""
        return self.fmax_compute_joules - self.compute_joules


@dataclass(frozen=True)
class RunStats:
    """The derived analytics of one training run's trace segment.

    Attributes:
        label: the run's history label (from ``run_stop``; empty for a
            truncated run).
        stop_reason: why the run ended (None for a truncated run).
        truncated: True when the segment never reached ``run_stop``.
        source: where the trace came from.
        total_time: final simulated clock, seconds.
        total_energy: final total energy, joules.
        rounds: per-round stats in round order.
        devices: per-device stats sorted by device id.
        fault_counts: injected faults per fault kind.
        drop_causes: lost clients per ``client_dropped`` cause.
        degraded_rounds: rounds that lost at least one planned update.
        battery_drop_rounds: rounds where natural battery depletion
            dropped updates.
        spans: structural span digest (empty for traces recorded with
            spans disabled, or by pre-span trainers).
    """

    label: str
    stop_reason: Optional[str]
    truncated: bool
    source: str
    total_time: float
    total_energy: float
    rounds: Tuple[RoundStats, ...]
    devices: Tuple[DeviceStats, ...]
    fault_counts: Dict[str, int]
    drop_causes: Dict[str, int]
    degraded_rounds: int
    battery_drop_rounds: int
    spans: SpanSummary = field(default_factory=SpanSummary)

    # -- run-level aggregates -------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Rounds the segment recorded (selection events)."""
        return len(self.rounds)

    @property
    def total_compute_energy(self) -> float:
        """Summed compute energy across rounds, joules."""
        return sum(r.compute_energy or 0.0 for r in self.rounds)

    @property
    def total_upload_energy(self) -> float:
        """Summed upload energy across rounds, joules."""
        return sum(r.upload_energy or 0.0 for r in self.rounds)

    @property
    def total_slack(self) -> float:
        """Summed idle wait across rounds, seconds."""
        return sum(r.slack or 0.0 for r in self.rounds)

    @property
    def fmax_compute_energy(self) -> Optional[float]:
        """Run-total Eq. (5) all-``f_max`` counterfactual energy."""
        values = [
            r.fmax_compute_energy
            for r in self.rounds
            if r.fmax_compute_energy is not None
        ]
        return sum(values) if values else None

    @property
    def dvfs_savings(self) -> Optional[float]:
        """Run-total joules saved vs. the all-``f_max`` schedule."""
        counterfactual = self.fmax_compute_energy
        if counterfactual is None:
            return None
        return counterfactual - self.total_compute_energy

    @property
    def dvfs_saving_fraction(self) -> Optional[float]:
        """Savings as a fraction of counterfactual compute energy."""
        counterfactual = self.fmax_compute_energy
        if counterfactual is None or counterfactual <= 0.0:
            return None
        return 1.0 - self.total_compute_energy / counterfactual

    @property
    def slack_utilization(self) -> Optional[float]:
        """Run-level fraction of available slack DVFS consumed."""
        fmax = [r.fmax_slack for r in self.rounds if r.fmax_slack is not None]
        ok = [r.ok_slack for r in self.rounds if r.ok_slack is not None]
        if not fmax:
            return None
        available = sum(fmax)
        if available <= 0.0:
            return 0.0
        return 1.0 - sum(ok) / available

    @property
    def selection_counts(self) -> Dict[int, int]:
        """Rounds each device was selected in (Eq. 20's ``alpha_q``)."""
        return {d.device_id: d.selected for d in self.devices}

    @property
    def jain_selection(self) -> float:
        """Jain fairness of selection counts over devices seen."""
        return jain_index([d.selected for d in self.devices])

    @property
    def jain_energy(self) -> float:
        """Jain fairness of per-device total energy."""
        return jain_index([d.total_joules for d in self.devices])

    @property
    def clients_dropped(self) -> int:
        """Total dropped client-rounds."""
        return sum(len(r.dropped_ids) for r in self.rounds)

    @property
    def clients_timeout(self) -> int:
        """Total deadline-cut client-rounds."""
        return sum(len(r.timeout_ids) for r in self.rounds)

    @property
    def evaluations(self) -> int:
        """Global-model evaluations recorded."""
        return sum(1 for r in self.rounds if r.test_accuracy is not None)

    @property
    def final_accuracy(self) -> Optional[float]:
        """Last evaluated test accuracy (None if never evaluated)."""
        for record in reversed(self.rounds):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return None

    @property
    def best_accuracy(self) -> Optional[float]:
        """Highest evaluated test accuracy (None if never evaluated)."""
        values = [
            r.test_accuracy for r in self.rounds if r.test_accuracy is not None
        ]
        return max(values) if values else None

    @property
    def final_test_loss(self) -> Optional[float]:
        """Last evaluated test loss (None if never evaluated)."""
        for record in reversed(self.rounds):
            if record.test_loss is not None:
                return record.test_loss
        return None

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly snapshot, including the derived aggregates.

        The shape is marked with :data:`ANALYSIS_SCHEMA` so the
        comparator (and CI snapshot artifacts) can tell a stats
        document from a raw trace.
        """
        return {
            "schema": ANALYSIS_SCHEMA,
            "label": self.label,
            "stop_reason": self.stop_reason,
            "truncated": self.truncated,
            "source": self.source,
            "total_time": self.total_time,
            "total_energy": self.total_energy,
            "num_rounds": self.num_rounds,
            "total_compute_energy": self.total_compute_energy,
            "total_upload_energy": self.total_upload_energy,
            "total_slack": self.total_slack,
            "fmax_compute_energy": self.fmax_compute_energy,
            "dvfs_savings": self.dvfs_savings,
            "dvfs_saving_fraction": self.dvfs_saving_fraction,
            "slack_utilization": self.slack_utilization,
            "jain_selection": self.jain_selection,
            "jain_energy": self.jain_energy,
            "clients_dropped": self.clients_dropped,
            "clients_timeout": self.clients_timeout,
            "degraded_rounds": self.degraded_rounds,
            "battery_drop_rounds": self.battery_drop_rounds,
            "fault_counts": dict(self.fault_counts),
            "drop_causes": dict(self.drop_causes),
            "evaluations": self.evaluations,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "final_test_loss": self.final_test_loss,
            "spans": self.spans.to_dict(),
            "rounds": [
                {
                    "round_index": r.round_index,
                    "selected_ids": list(r.selected_ids),
                    "aggregated": r.aggregated,
                    "total_weight": r.total_weight,
                    "dropped_ids": list(r.dropped_ids),
                    "timeout_ids": list(r.timeout_ids),
                    "fault_count": r.fault_count,
                    "reassigned_frequencies": r.reassigned_frequencies,
                    "round_delay": r.round_delay,
                    "round_energy": r.round_energy,
                    "compute_energy": r.compute_energy,
                    "upload_energy": r.upload_energy,
                    "slack": r.slack,
                    "cumulative_time": r.cumulative_time,
                    "cumulative_energy": r.cumulative_energy,
                    "fmax_compute_energy": r.fmax_compute_energy,
                    "fmax_slack": r.fmax_slack,
                    "ok_slack": r.ok_slack,
                    "test_loss": r.test_loss,
                    "test_accuracy": r.test_accuracy,
                }
                for r in self.rounds
            ],
            "devices": [
                {
                    "device_id": d.device_id,
                    "f_max": d.f_max,
                    "selected": d.selected,
                    "participated": d.participated,
                    "completed": d.completed,
                    "dropped": d.dropped,
                    "timeouts": d.timeouts,
                    "compute_joules": d.compute_joules,
                    "upload_joules": d.upload_joules,
                    "slack_seconds": d.slack_seconds,
                    "fmax_compute_joules": d.fmax_compute_joules,
                }
                for d in self.devices
            ],
        }

    def to_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> RunStats:
        """Rebuild a :class:`RunStats` from :meth:`to_dict` output.

        Derived aggregates in the payload are ignored — they recompute
        from the round/device tables, so a hand-edited snapshot cannot
        contradict itself.
        """
        if payload.get("schema") != ANALYSIS_SCHEMA:
            raise SerializationError(
                f"not a {ANALYSIS_SCHEMA} document: schema="
                f"{payload.get('schema')!r}"
            )
        rounds = tuple(
            RoundStats(
                round_index=int(raw["round_index"]),
                selected_ids=tuple(raw["selected_ids"]),
                aggregated=raw["aggregated"],
                total_weight=raw["total_weight"],
                dropped_ids=tuple(raw["dropped_ids"]),
                timeout_ids=tuple(raw["timeout_ids"]),
                fault_count=int(raw["fault_count"]),
                reassigned_frequencies=bool(raw["reassigned_frequencies"]),
                round_delay=raw["round_delay"],
                round_energy=raw["round_energy"],
                compute_energy=raw["compute_energy"],
                upload_energy=raw["upload_energy"],
                slack=raw["slack"],
                cumulative_time=raw["cumulative_time"],
                cumulative_energy=raw["cumulative_energy"],
                fmax_compute_energy=raw["fmax_compute_energy"],
                fmax_slack=raw["fmax_slack"],
                ok_slack=raw["ok_slack"],
                test_loss=raw["test_loss"],
                test_accuracy=raw["test_accuracy"],
            )
            for raw in payload["rounds"]
        )
        devices = tuple(
            DeviceStats(
                device_id=int(raw["device_id"]),
                f_max=float(raw["f_max"]),
                selected=int(raw["selected"]),
                participated=int(raw["participated"]),
                completed=int(raw["completed"]),
                dropped=int(raw["dropped"]),
                timeouts=int(raw["timeouts"]),
                compute_joules=float(raw["compute_joules"]),
                upload_joules=float(raw["upload_joules"]),
                slack_seconds=float(raw["slack_seconds"]),
                fmax_compute_joules=float(raw["fmax_compute_joules"]),
            )
            for raw in payload["devices"]
        )
        return cls(
            label=payload["label"],
            stop_reason=payload["stop_reason"],
            truncated=bool(payload["truncated"]),
            source=payload.get("source", ""),
            total_time=float(payload["total_time"]),
            total_energy=float(payload["total_energy"]),
            rounds=rounds,
            devices=devices,
            fault_counts=dict(payload["fault_counts"]),
            drop_causes=dict(payload["drop_causes"]),
            degraded_rounds=int(payload["degraded_rounds"]),
            battery_drop_rounds=int(payload["battery_drop_rounds"]),
            # Absent in pre-span snapshots (e.g. committed bench
            # baselines) — defaults to the empty digest.
            spans=SpanSummary.from_dict(payload.get("spans")),
        )


def split_runs(events: Sequence[Event]) -> List[Tuple[Event, ...]]:
    """Split a trace into per-run segments at ``run_stop`` boundaries.

    Multi-run traces happen when one sink observes several strategies
    (e.g. a traced ``fig2``). The terminal ``run_stop`` closes each
    segment; a trailing segment without one (a crash tail) is kept as
    the final, truncated entry.
    """
    segments: List[Tuple[Event, ...]] = []
    current: List[Event] = []
    for event in events:
        current.append(event)
        if event.kind == "run_stop":
            segments.append(tuple(current))
            current = []
    if current:
        segments.append(tuple(current))
    return segments


def _fmax_queue_slack(entries) -> float:
    """Idle wait of the all-``f_max`` FIFO schedule over ``entries``.

    Replays Eq. (10)'s channel queue with each completed user's compute
    delay rescaled by ``f / f_max`` (Eq. 4: delay is proportional to
    ``1/f``) and its traced upload delay unchanged, matching
    :func:`repro.network.tdma.simulate_tdma_round`'s grant order
    (compute finish, ties by device id).
    """
    staged = sorted(
        (
            (e.compute_delay * e.frequency / e.f_max, e.device_id, e.upload_delay)
            for e in entries
            if e.outcome == "ok"
        ),
    )
    channel_free = 0.0
    slack = 0.0
    for compute_end, _, upload_delay in staged:
        upload_start = max(compute_end, channel_free)
        slack += upload_start - compute_end
        channel_free = upload_start + upload_delay
    return slack


def compute_run_stats(events: Sequence[Event], source: str = "") -> RunStats:
    """Derive one run's :class:`RunStats` from its event segment.

    Args:
        events: the events of exactly one run (use :func:`split_runs`
            first for multi-run traces).
        source: provenance string recorded on the result.

    Raises:
        SerializationError: when the segment contains more than one
            run (a second ``selection`` for an already-seen round, or
            events after ``run_stop``).
    """
    rounds: Dict[int, dict] = {}
    order: List[int] = []
    devices: Dict[int, dict] = {}
    fault_counts: Dict[str, int] = {}
    drop_causes: Dict[str, int] = {}
    degraded_rounds = 0
    battery_drop_rounds = 0
    label = ""
    stop_reason: Optional[str] = None
    total_time = 0.0
    total_energy = 0.0

    def round_slot(index: int) -> dict:
        if index not in rounds:
            rounds[index] = {"device_entries": []}
            order.append(index)
        return rounds[index]

    def device_slot(device_id: int) -> dict:
        return devices.setdefault(
            device_id,
            {
                "f_max": 0.0,
                "selected": 0,
                "participated": 0,
                "completed": 0,
                "dropped": 0,
                "timeouts": 0,
                "compute_joules": 0.0,
                "upload_joules": 0.0,
                "slack_seconds": 0.0,
                "fmax_compute_joules": 0.0,
            },
        )

    for event in events:
        if stop_reason is not None:
            raise SerializationError(
                f"{source or 'trace'}: events continue after run_stop — "
                "multiple runs in one segment (use split_runs first)"
            )
        kind = event.kind
        if kind == "selection":
            slot = round_slot(event.round_index)
            if "selected_ids" in slot:
                raise SerializationError(
                    f"{source or 'trace'}: round {event.round_index} "
                    "selected twice — multiple runs in one segment "
                    "(use split_runs first)"
                )
            slot["selected_ids"] = event.selected_ids
            for device_id in event.selected_ids:
                device_slot(device_id)["selected"] += 1
        elif kind == "device_round":
            slot = round_slot(event.round_index)
            slot["device_entries"].append(event)
            device = device_slot(event.device_id)
            device["f_max"] = event.f_max
            device["participated"] += 1
            if event.outcome == "ok":
                device["completed"] += 1
            device["compute_joules"] += event.compute_energy
            device["upload_joules"] += event.upload_energy
            device["slack_seconds"] += event.slack
            scale = event.f_max / event.frequency
            device["fmax_compute_joules"] += (
                event.compute_energy * scale * scale
            )
        elif kind == "timeline":
            slot = round_slot(event.round_index)
            slot["timeline"] = event
            total_time = event.cumulative_time
            total_energy = event.cumulative_energy
        elif kind == "aggregation":
            slot = round_slot(event.round_index)
            slot["aggregated"] = event.num_updates
            slot["total_weight"] = event.total_weight
        elif kind == "eval":
            slot = round_slot(event.round_index)
            slot["test_loss"] = event.test_loss
            slot["test_accuracy"] = event.test_accuracy
        elif kind == "fault_injected":
            slot = round_slot(event.round_index)
            slot["fault_count"] = slot.get("fault_count", 0) + 1
            fault_counts[event.fault] = fault_counts.get(event.fault, 0) + 1
        elif kind == "client_dropped":
            drop_causes[event.cause] = drop_causes.get(event.cause, 0) + 1
            device_slot(event.device_id)["dropped"] += 1
        elif kind == "round_degraded":
            slot = round_slot(event.round_index)
            slot["dropped_ids"] = event.dropped_ids
            slot["timeout_ids"] = event.timeout_ids
            slot["reassigned"] = event.reassigned_frequencies
            degraded_rounds += 1
            for device_id in event.timeout_ids:
                device_slot(device_id)["timeouts"] += 1
        elif kind == "battery_drop":
            battery_drop_rounds += 1
        elif kind == "run_stop":
            label = event.label
            stop_reason = event.reason
            total_time = event.cumulative_time
            total_energy = event.cumulative_energy

    round_stats: List[RoundStats] = []
    for index in sorted(order):
        slot = rounds[index]
        if "selected_ids" not in slot:
            # Only reachable on hand-built segments (e.g. a lone eval
            # event); a trainer trace always opens rounds with selection.
            slot["selected_ids"] = ()
        entries = slot["device_entries"]
        timeline = slot.get("timeline")
        fmax_compute = None
        fmax_slack = None
        ok_slack = None
        if entries:
            fmax_compute = sum(
                e.compute_energy * (e.f_max / e.frequency) ** 2
                for e in entries
            )
            fmax_slack = _fmax_queue_slack(entries)
            ok_slack = sum(e.slack for e in entries if e.outcome == "ok")
        round_stats.append(
            RoundStats(
                round_index=index,
                selected_ids=slot["selected_ids"],
                aggregated=slot.get("aggregated"),
                total_weight=slot.get("total_weight"),
                dropped_ids=slot.get("dropped_ids", ()),
                timeout_ids=slot.get("timeout_ids", ()),
                fault_count=slot.get("fault_count", 0),
                reassigned_frequencies=slot.get("reassigned", False),
                round_delay=timeline.round_delay if timeline else None,
                round_energy=timeline.round_energy if timeline else None,
                compute_energy=timeline.compute_energy if timeline else None,
                upload_energy=timeline.upload_energy if timeline else None,
                slack=timeline.slack if timeline else None,
                cumulative_time=(
                    timeline.cumulative_time if timeline else None
                ),
                cumulative_energy=(
                    timeline.cumulative_energy if timeline else None
                ),
                fmax_compute_energy=fmax_compute,
                fmax_slack=fmax_slack,
                ok_slack=ok_slack,
                test_loss=slot.get("test_loss"),
                test_accuracy=slot.get("test_accuracy"),
            )
        )

    device_stats = tuple(
        DeviceStats(device_id=device_id, **fields)
        for device_id, fields in sorted(devices.items())
    )
    return RunStats(
        label=label,
        stop_reason=stop_reason,
        truncated=stop_reason is None,
        source=source,
        total_time=total_time,
        total_energy=total_energy,
        rounds=tuple(round_stats),
        devices=device_stats,
        fault_counts=fault_counts,
        drop_causes=drop_causes,
        degraded_rounds=degraded_rounds,
        battery_drop_rounds=battery_drop_rounds,
        spans=summarize_spans(events),
    )
