"""Span-tree analytics: structure, critical path, self time.

Span events (:class:`~repro.obs.events.SpanStartEvent` /
:class:`~repro.obs.events.SpanEndEvent`) carry two kinds of
information with very different determinism guarantees:

* **structure** — ids, parents, names, and the *positions* of the
  start/end events in the trace. Emission order is part of the
  trainer's contract, so structure is a pure function of the simulated
  run: identical across execution backends and across a killed run
  resumed to completion. Everything serialized into the
  :class:`~repro.obs.analysis.round_stats.RunStats` snapshot
  (:class:`SpanSummary`) uses only structure, which is what keeps
  campaign aggregates byte-comparable.
* **telemetry** — wall-clock timestamps, durations, pids, and sampled
  worker resources. Deterministic given the trace file (re-rendering
  the same trace yields the same bytes) but not across machines or
  repeat runs. The self-time breakdown (:func:`self_time_rows`) reads
  it for human reports and the Chrome exporter.

The critical path is likewise structural: starting at the root span,
descend at every level into the child whose ``span_end`` appears
*latest in the trace* — emission position, never wall time — so two
identical runs always report the identical path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import Event

__all__ = [
    "SpanNode",
    "SpanSummary",
    "build_span_nodes",
    "summarize_spans",
    "self_time_rows",
]


@dataclass(frozen=True)
class SpanNode:
    """One reconstructed span: structure plus its telemetry readings.

    Attributes:
        span_id: the span's id (unique within a run segment).
        name: human-readable span name (``"round"``, ``"task"``, ...).
        parent_id: the parent span's id; empty for roots (or spans
            whose parent lives in another process's trace).
        round_index: the FL round the span belongs to (0 = run-level).
        start_pos: index of the ``span_start`` event in the segment.
        end_pos: index of the ``span_end`` event; ``None`` for a span
            a crash left open.
        t_wall: wall-clock start, Unix seconds.
        duration_s: measured duration (0.0 while unclosed).
        pid: process id that emitted the span.
        rss_peak_kb: sampled peak RSS of that process, KiB (0.0 when
            no ``worker_resource`` event was attached).
        cpu_user_s: sampled user-CPU seconds over the span.
        cpu_sys_s: sampled system-CPU seconds over the span.
    """

    span_id: str
    name: str
    parent_id: str
    round_index: int
    start_pos: int
    end_pos: Optional[int]
    t_wall: float
    duration_s: float
    pid: int
    rss_peak_kb: float = 0.0
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0

    @property
    def closed(self) -> bool:
        """Whether the span's end event made it into the trace."""
        return self.end_pos is not None


@dataclass(frozen=True)
class SpanSummary:
    """The deterministic (structure-only) span digest of one run.

    Every field is a pure function of event kinds, ids, and positions
    — no wall clock, no pids — so the summary is byte-identical across
    execution backends and across crash/resume cycles, and safe to
    embed in snapshot JSON that CI compares with ``cmp``.

    Attributes:
        spans_total: spans opened in the segment.
        spans_unclosed: ``span_start`` events without a matching end
            (0 for a cleanly finished run).
        max_depth: depth of the reconstructed tree (a lone root = 1).
        by_name: spans per name, e.g. ``{"round": 5, "task": 15}``.
        critical_path: span ids from the root to a leaf, descending at
            each level into the child whose end event appears latest
            in the trace.
    """

    spans_total: int = 0
    spans_unclosed: int = 0
    max_depth: int = 0
    by_name: Dict[str, int] = field(default_factory=dict)
    critical_path: Tuple[str, ...] = ()

    @property
    def critical_path_len(self) -> int:
        """Number of spans on the critical path."""
        return len(self.critical_path)

    def to_dict(self) -> dict:
        """JSON-friendly form (deterministic key order via sort)."""
        return {
            "spans_total": self.spans_total,
            "spans_unclosed": self.spans_unclosed,
            "max_depth": self.max_depth,
            "by_name": dict(sorted(self.by_name.items())),
            "critical_path": list(self.critical_path),
        }

    def to_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> SpanSummary:
        """Rebuild from :meth:`to_dict` output (``None`` = empty)."""
        if not payload:
            return cls()
        return cls(
            spans_total=int(payload.get("spans_total", 0)),
            spans_unclosed=int(payload.get("spans_unclosed", 0)),
            max_depth=int(payload.get("max_depth", 0)),
            by_name={
                str(k): int(v)
                for k, v in payload.get("by_name", {}).items()
            },
            critical_path=tuple(
                str(s) for s in payload.get("critical_path", ())
            ),
        )

    def __eq__(self, other) -> bool:  # dict field ⇒ default eq suffices
        if not isinstance(other, SpanSummary):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())


def build_span_nodes(events: Sequence[Event]) -> List[SpanNode]:
    """Reconstruct spans (with telemetry) from one event segment.

    Unmatched ``span_end`` events are ignored (a resumed run's trace
    never contains them; a hand-built one might); a re-opened id
    closes in LIFO order. Nodes are returned in ``span_start`` order.
    """
    open_spans: Dict[str, List[dict]] = {}
    nodes: List[dict] = []
    for position, event in enumerate(events):
        kind = event.kind
        if kind == "span_start":
            record = {
                "span_id": event.span_id,
                "name": event.name,
                "parent_id": event.parent_id,
                "round_index": event.round_index,
                "start_pos": position,
                "end_pos": None,
                "t_wall": event.t_wall,
                "duration_s": 0.0,
                "pid": event.pid,
                "rss_peak_kb": 0.0,
                "cpu_user_s": 0.0,
                "cpu_sys_s": 0.0,
            }
            open_spans.setdefault(event.span_id, []).append(record)
            nodes.append(record)
        elif kind == "worker_resource":
            stack = open_spans.get(event.span_id)
            if stack:
                record = stack[-1]
                record["rss_peak_kb"] = event.rss_peak_kb
                record["cpu_user_s"] = event.cpu_user_s
                record["cpu_sys_s"] = event.cpu_sys_s
        elif kind == "span_end":
            stack = open_spans.get(event.span_id)
            if stack:
                record = stack.pop()
                record["end_pos"] = position
                record["duration_s"] = event.duration_s
    return [SpanNode(**record) for record in nodes]


def _children_by_parent(
    nodes: Sequence[SpanNode],
) -> Dict[str, List[SpanNode]]:
    children: Dict[str, List[SpanNode]] = {}
    for node in nodes:
        children.setdefault(node.parent_id, []).append(node)
    return children


def _roots(nodes: Sequence[SpanNode]) -> List[SpanNode]:
    """Spans whose parent does not appear in this segment."""
    ids = {node.span_id for node in nodes}
    return [node for node in nodes if node.parent_id not in ids]


def summarize_spans(events: Sequence[Event]) -> SpanSummary:
    """Digest one segment's span events into a :class:`SpanSummary`."""
    nodes = build_span_nodes(events)
    if not nodes:
        return SpanSummary()
    by_name: Dict[str, int] = {}
    for node in nodes:
        by_name[node.name] = by_name.get(node.name, 0) + 1
    children = _children_by_parent(nodes)
    by_id: Dict[str, SpanNode] = {node.span_id: node for node in nodes}

    # Depth: iterative, guarding against hand-built parent cycles.
    depths: Dict[str, int] = {}

    def depth_of(node: SpanNode) -> int:
        depth, seen = 1, {node.span_id}
        current = node
        while current.parent_id in by_id:
            cached = depths.get(current.parent_id)
            if cached is not None:
                depth += cached
                break
            if current.parent_id in seen:
                break
            seen.add(current.parent_id)
            current = by_id[current.parent_id]
            depth += 1
        return depth

    max_depth = 0
    for node in nodes:
        depth = depth_of(node)
        depths.setdefault(node.span_id, depth)
        max_depth = max(max_depth, depth)

    # Critical path: latest-ending root, then repeatedly the child
    # whose end event sits latest in the trace (unclosed spans rank
    # past every closed one — they reach the segment's cut).
    def end_rank(node: SpanNode) -> Tuple[int, int]:
        if node.end_pos is None:
            return (1, node.start_pos)
        return (0, node.end_pos)

    path: List[str] = []
    roots = _roots(nodes)
    current: Optional[SpanNode] = (
        max(roots, key=end_rank) if roots else None
    )
    while current is not None:
        path.append(current.span_id)
        branches = children.get(current.span_id)
        current = max(branches, key=end_rank) if branches else None

    return SpanSummary(
        spans_total=len(nodes),
        spans_unclosed=sum(1 for node in nodes if not node.closed),
        max_depth=max_depth,
        by_name=by_name,
        critical_path=tuple(path),
    )


def self_time_rows(
    events: Sequence[Event],
) -> List[Tuple[str, int, float, float, float, float, float]]:
    """Per-name wall-clock breakdown: the report's self-time table.

    Self time is a span's duration minus its direct children's
    durations (floored at 0 — pooled children overlap their parent, so
    a fan-out stage can legitimately report zero self time). Rows are
    ``(name, count, total_s, self_s, rss_peak_kb, cpu_user_s,
    cpu_sys_s)`` sorted by descending total and then name; resources
    are the max (RSS) / sum (CPU) over the name's spans.

    Telemetry-grade: values come from the trace's recorded readings,
    so re-rendering one trace is reproducible, but two runs of the
    same experiment will differ — never embed these in snapshots that
    CI byte-compares.
    """
    nodes = build_span_nodes(events)
    if not nodes:
        return []
    child_time: Dict[str, float] = {}
    for node in nodes:
        if node.parent_id:
            child_time[node.parent_id] = (
                child_time.get(node.parent_id, 0.0) + node.duration_s
            )
    totals: Dict[str, List[float]] = {}
    for node in nodes:
        self_s = max(0.0, node.duration_s - child_time.get(node.span_id, 0.0))
        entry = totals.setdefault(node.name, [0, 0.0, 0.0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += node.duration_s
        entry[2] += self_s
        entry[3] = max(entry[3], node.rss_peak_kb)
        entry[4] += node.cpu_user_s
        entry[5] += node.cpu_sys_s
    return [
        (name, int(e[0]), e[1], e[2], e[3], e[4], e[5])
        for name, e in sorted(
            totals.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
