"""Export span events as Chrome trace-event JSON (Perfetto-loadable).

The `Trace Event Format`_ is the JSON array format understood by
``chrome://tracing``, `Perfetto`_ (ui.perfetto.dev), and ``speedscope``.
Each closed span becomes a complete (``"ph": "X"``) slice on its
emitting process's track, so the run's whole hierarchy — campaign →
attempt → run → round → stage → per-client task — renders as nested
flame bars, with worker-side spans appearing on their own pid rows.
Spans a crash left open are exported as begin (``"ph": "B"``) events
with no matching end, which the viewers render as running-to-the-end.

Timestamps are re-based to the earliest span start so the viewer opens
at t=0 instead of the Unix epoch. Sampled worker resources ride along
in each slice's ``args``.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
.. _Perfetto: https://perfetto.dev
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.obs.analysis.spans import SpanNode, build_span_nodes
from repro.obs.events import Event

__all__ = ["chrome_trace_document", "render_chrome_trace"]


def _slice_args(node: SpanNode) -> dict:
    args = {
        "span_id": node.span_id,
        "parent_id": node.parent_id,
        "round_index": node.round_index,
    }
    if node.rss_peak_kb or node.cpu_user_s or node.cpu_sys_s:
        args["rss_peak_kb"] = node.rss_peak_kb
        args["cpu_user_s"] = node.cpu_user_s
        args["cpu_sys_s"] = node.cpu_sys_s
    return args


def chrome_trace_document(events: Sequence[Event]) -> dict:
    """Build the trace-event document for one trace's events.

    Non-span events pass through untouched elsewhere; only span
    structure (plus attached resource samples) is exported. An empty
    or span-free trace yields a valid document with no slices.
    """
    nodes = build_span_nodes(events)
    base = min((n.t_wall for n in nodes), default=0.0)
    trace_events: List[dict] = []
    for pid in sorted({n.pid for n in nodes}):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"pid {pid}"},
            }
        )
    for node in nodes:
        ts = round((node.t_wall - base) * 1e6, 3)
        record = {
            "name": node.name,
            "cat": "repro",
            "ph": "X" if node.closed else "B",
            "ts": ts,
            "pid": node.pid,
            "tid": node.pid,
            "args": _slice_args(node),
        }
        if node.closed:
            record["dur"] = round(node.duration_s * 1e6, 3)
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs"},
    }


def render_chrome_trace(events: Sequence[Event]) -> str:
    """The document as JSON text (one line per event, viewer-friendly)."""
    document = chrome_trace_document(events)
    lines = ['{"displayTimeUnit": "ms",']
    lines.append(
        '"otherData": '
        + json.dumps(document["otherData"], sort_keys=True)
        + ","
    )
    lines.append('"traceEvents": [')
    records = document["traceEvents"]
    for index, record in enumerate(records):
        suffix = "," if index + 1 < len(records) else ""
        lines.append(json.dumps(record, sort_keys=True) + suffix)
    lines.append("]}")
    return "\n".join(lines)
