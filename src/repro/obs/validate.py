"""Command-line trace validator: ``python -m repro.obs.validate``.

Checks every line of one or more JSONL trace files against the event
schema (:mod:`repro.obs.schema`) and reports the event count per
file. Exits non-zero on the first malformed line — CI runs this over
a traced smoke run to keep the trace format honest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import SerializationError
from repro.obs.schema import validate_trace

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Validate trace files given on the command line; return exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate repro JSONL trace files against the "
        "event schema.",
    )
    parser.add_argument("paths", nargs="+", help="trace files to validate")
    args = parser.parse_args(argv)

    for path in args.paths:
        try:
            count = validate_trace(path)
        except (OSError, SerializationError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{path}: OK ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
