"""Command-line trace validator: ``python -m repro.obs.validate``.

Checks every line of one or more JSONL trace files (``.jsonl`` or
``.jsonl.gz``) against the event schema (:mod:`repro.obs.schema`) and
reports a verdict and event count per file. Every path is validated —
an invalid file never hides the verdicts of the paths after it — and
the exit code is non-zero if *any* file failed. CI runs this over
traced smoke runs to keep the trace format honest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import SerializationError
from repro.obs.schema import validate_trace

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Validate trace files given on the command line; return exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate repro JSONL trace files against the "
        "event schema.",
    )
    parser.add_argument("paths", nargs="+", help="trace files to validate")
    args = parser.parse_args(argv)

    failures = 0
    for path in args.paths:
        try:
            count = validate_trace(path)
        except (OSError, SerializationError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"{path}: OK ({count} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
