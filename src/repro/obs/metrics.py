"""In-memory run metrics: counters, gauges, and wall-clock timers.

A :class:`MetricsRegistry` is the quantitative half of the
observability layer (the event trace is the qualitative half). The
trainer and the execution backends record into it through the
:class:`~repro.obs.observer.RunObserver`:

* **counters** — monotonically accumulated totals (rounds executed,
  clients trained, joules recorded by the energy ledger);
* **gauges** — last-written values (devices tracked by the ledger);
* **timers** — wall-clock durations around the loop's four stages
  (``selection``, ``frequency_assignment``, ``run_round``,
  ``aggregation``), making backend overhead directly measurable.

The registry is thread-safe (the thread backend's workers may share
it) and purely observational: nothing in the training loop ever reads
it back.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.errors import ConfigurationError

__all__ = ["TimerStat", "MetricsRegistry"]

_RESERVOIR_CAP = 256
"""Maximum retained samples per timer before stride-decimation."""


@dataclass
class TimerStat:
    """Aggregated wall-clock observations of one named timer.

    Besides the running aggregates, a bounded *deterministic* reservoir
    of observations is kept for tail percentiles: once
    ``_RESERVOIR_CAP`` samples are held, every other retained sample is
    discarded and the sampling stride doubles, so the reservoir stays
    an evenly spaced subsample of the observation stream with no RNG
    involved (the registry must stay reproducible run to run).

    Attributes:
        count: number of recorded durations.
        total_s: summed duration, seconds.
        min_s: shortest observation, seconds.
        max_s: longest observation, seconds.
    """

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    samples: List[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)

    @property
    def mean_s(self) -> float:
        """Mean duration per observation (0.0 before any observation)."""
        return self.total_s / self.count if self.count else 0.0

    def observe(self, seconds: float) -> None:
        """Fold one duration into the aggregate."""
        if seconds < 0:
            raise ConfigurationError(
                f"timer observations must be non-negative, got {seconds}"
            )
        if (self.count % self._stride) == 0:
            self.samples.append(seconds)
            if len(self.samples) > _RESERVOIR_CAP:
                del self.samples[::2]
                self._stride *= 2
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples.

        Args:
            q: the percentile in ``[0, 100]``.

        Returns:
            0.0 before any observation. With decimation active the
            value is computed over the evenly spaced subsample.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {q}"
            )
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
        return ordered[int(rank) - 1]

    @property
    def p50_s(self) -> float:
        """Median duration (0.0 before any observation)."""
        return self.percentile(50.0)

    @property
    def p95_s(self) -> float:
        """95th-percentile duration (0.0 before any observation)."""
        return self.percentile(95.0)


class MetricsRegistry:
    """Thread-safe in-memory counters, gauges, and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStat] = {}

    # -- counters -------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to the named counter."""
        if value < 0:
            raise ConfigurationError(
                f"counter increments must be non-negative, got {value}"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        """Current value of the named counter (0.0 if never touched)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    # -- gauges ---------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        """Current value of the named gauge (0.0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    # -- timers ---------------------------------------------------------
    def observe_time(self, name: str, seconds: float) -> None:
        """Record one wall-clock duration under the named timer."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into the named timer.

        The duration is recorded even when the body raises, so a
        crashed round still leaves its cost visible.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_time(name, time.perf_counter() - start)

    def timer_stat(self, name: str) -> TimerStat:
        """Aggregate of the named timer (empty stat if never observed)."""
        with self._lock:
            return self._timers.get(name, TimerStat())

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of every metric (JSON-friendly)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": stat.count,
                        "total_s": stat.total_s,
                        "mean_s": stat.mean_s,
                        "min_s": stat.min_s if stat.count else 0.0,
                        "max_s": stat.max_s,
                        "p50_s": stat.p50_s,
                        "p95_s": stat.p95_s,
                    }
                    for name, stat in self._timers.items()
                },
            }

    def format_timers(self) -> str:
        """Human-readable per-timer breakdown, one line per timer.

        Timers are sorted by total time descending, so the dominant
        stage (usually ``run_round``) leads the table.
        """
        with self._lock:
            items = sorted(
                self._timers.items(), key=lambda kv: -kv[1].total_s
            )
        if not items:
            return "(no timers recorded)"
        return "\n".join(
            f"{name:24s} {stat.total_s:9.4f}s total  "
            f"{1e3 * stat.mean_s:8.3f}ms mean  "
            f"{1e3 * stat.p50_s:8.3f}ms p50  "
            f"{1e3 * stat.p95_s:8.3f}ms p95  x{stat.count}"
            for name, stat in items
        )
