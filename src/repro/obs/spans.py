"""Hierarchical timing spans over the event trace.

A *span* is a named wall-clock interval in the campaign → run → round
→ stage → per-client-task hierarchy. Opening one emits a
:class:`~repro.obs.events.SpanStartEvent` into the run's trace;
closing it emits the matching :class:`~repro.obs.events.SpanEndEvent`
(optionally preceded by a sampled
:class:`~repro.obs.events.WorkerResourceEvent`). Span ids are
deterministic path-like strings (``"run"``, ``"round-3"``,
``"round-3/selection"``, ``"round-3/task-17"``), so the span *tree* of
two identical runs is identical — only the wall-clock annotations
differ — and a parent id is a plain string that crosses process
boundaries in a pickle without any registry.

Two propagation shapes exist:

* **in-process spans** — :meth:`repro.obs.observer.RunObserver.span`
  returns a live :class:`Span` (or the shared no-op when tracing or
  spans are off: zero branches in the hot path, bitwise-identical
  results);
* **cross-process task spans** — the parent pickles a
  :class:`TaskSpanContext` with each client task, the worker brackets
  its work with :func:`begin_task_sample` / :func:`end_task_sample`
  and ships the picklable :class:`TaskSample` back, and the parent
  flushes the pair into the trace with :func:`emit_task_span` in
  deterministic task order (the JSONL sink is not thread-safe, so
  workers never write the trace themselves).

This module is the sanctioned home for the wall-clock and
``getrusage`` reads the spans need (see REP004): span timing measures
*our* code, never the simulated timeline, and nothing here feeds back
into training.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

try:  # pragma: no cover - resource is stdlib on every POSIX platform
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None

from repro.obs.events import SpanEndEvent, SpanStartEvent, WorkerResourceEvent

__all__ = [
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "TaskSpanContext",
    "TaskSample",
    "begin_task_sample",
    "end_task_sample",
    "emit_task_span",
    "rusage_snapshot",
]


def rusage_snapshot() -> Tuple[float, float, float]:
    """Sample this process: ``(rss_peak_kb, cpu_user_s, cpu_sys_s)``.

    ``ru_maxrss`` is the *lifetime* peak resident set size (kilobytes
    on Linux). On platforms without :mod:`resource` every value is 0.0
    — spans still work, only the resource annotations go dark.
    """
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return (0.0, 0.0, 0.0)
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return (float(usage.ru_maxrss), usage.ru_utime, usage.ru_stime)


class Span:
    """One live span bound to an observer; emits its own events.

    Build spans through
    :meth:`repro.obs.observer.RunObserver.span` — that is where the
    spans-off no-op short-circuit lives. Use as a context manager, or
    call :meth:`end` on every exit path (``finally``); REP013 checks
    the discipline statically.

    Args:
        observer: the :class:`~repro.obs.observer.RunObserver` whose
            sink receives the span events.
        name: stage name (``"selection"``, ``"round"``, ...).
        span_id: deterministic id, unique within the run.
        parent_id: the enclosing span's id (``""`` for a root).
        round_index: owning FL round (0 for run-level spans).
        resources: also emit a :class:`WorkerResourceEvent` with this
            process's usage delta when the span ends.
        emit_start: emit the :class:`SpanStartEvent` now. Pass False
            when resuming a run whose earlier attempt already wrote
            the start event (the trace must keep exactly one).
    """

    __slots__ = (
        "observer",
        "name",
        "span_id",
        "parent_id",
        "round_index",
        "_resources",
        "_t_wall",
        "_perf0",
        "_cpu0",
        "_closed",
    )

    def __init__(
        self,
        observer,
        name: str,
        span_id: str,
        parent_id: str = "",
        round_index: int = 0,
        resources: bool = False,
        emit_start: bool = True,
    ) -> None:
        self.observer = observer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.round_index = int(round_index)
        self._resources = bool(resources)
        self._closed = False
        _, user0, sys0 = rusage_snapshot()
        self._cpu0 = (user0, sys0)
        self._t_wall = time.time()
        self._perf0 = time.perf_counter()
        if emit_start:
            observer.emit(
                SpanStartEvent(
                    round_index=self.round_index,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    name=self.name,
                    t_wall=self._t_wall,
                    pid=os.getpid(),
                )
            )
        observer.metrics.inc("spans_opened")

    @property
    def closed(self) -> bool:
        """Whether :meth:`end` already ran."""
        return self._closed

    def end(self) -> None:
        """Close the span: emit resources (if asked) then the end event.

        Idempotent — a span that was already ended stays ended, so
        ``finally`` blocks and explicit early closes compose.
        """
        if self._closed:
            return
        self._closed = True
        duration = time.perf_counter() - self._perf0
        pid = os.getpid()
        if self._resources:
            rss_kb, user1, sys1 = rusage_snapshot()
            self.observer.emit(
                WorkerResourceEvent(
                    round_index=self.round_index,
                    span_id=self.span_id,
                    pid=pid,
                    rss_peak_kb=rss_kb,
                    cpu_user_s=max(0.0, user1 - self._cpu0[0]),
                    cpu_sys_s=max(0.0, sys1 - self._cpu0[1]),
                )
            )
        self.observer.emit(
            SpanEndEvent(
                round_index=self.round_index,
                span_id=self.span_id,
                t_wall=time.time(),
                duration_s=duration,
                pid=pid,
            )
        )

    def __enter__(self) -> Span:
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class NoopSpan:
    """The spans-off span: every operation is a no-op.

    A single shared instance (:data:`NOOP_SPAN`) is returned by
    :meth:`repro.obs.observer.RunObserver.span` whenever tracing or
    spans are disabled, so instrumented code pays one attribute check
    and zero allocations — results stay bitwise identical.
    """

    __slots__ = ()

    closed = True

    def end(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> NoopSpan:
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_SPAN = NoopSpan()
"""The shared spans-disabled instance."""


@dataclass(frozen=True)
class TaskSpanContext:
    """Span context pickled with one backend task.

    Carries only scalars (REP007: no parameter vectors ride the task
    tuples), telling the worker that the parent wants a
    :class:`TaskSample` back and which span will own it.

    Attributes:
        parent_id: the enclosing stage span's id
            (``"round-<j>/local_updates"``).
        round_index: the owning FL round.
    """

    parent_id: str
    round_index: int


@dataclass(frozen=True)
class TaskSample:
    """A worker-side measurement of one client task (picklable).

    Attributes:
        t_wall: wall-clock time when the task started, seconds.
        duration_s: measured task duration, seconds.
        pid: the measuring process's OS pid.
        rss_peak_kb: that process's lifetime peak RSS, kilobytes.
        cpu_user_s: user-mode CPU seconds spent on the task.
        cpu_sys_s: kernel-mode CPU seconds spent on the task.
    """

    t_wall: float
    duration_s: float
    pid: int
    rss_peak_kb: float
    cpu_user_s: float
    cpu_sys_s: float


def begin_task_sample() -> Tuple[float, float, float, float]:
    """Start a task measurement; returns an opaque token.

    Call in the process actually running the task (pool worker,
    thread, or the parent for the serial backend) immediately before
    the local update, and close with :func:`end_task_sample`.
    """
    _, user0, sys0 = rusage_snapshot()
    return (time.time(), time.perf_counter(), user0, sys0)


def end_task_sample(token: Tuple[float, float, float, float]) -> TaskSample:
    """Finish a task measurement started by :func:`begin_task_sample`."""
    t_wall, perf0, user0, sys0 = token
    duration = time.perf_counter() - perf0
    rss_kb, user1, sys1 = rusage_snapshot()
    return TaskSample(
        t_wall=t_wall,
        duration_s=duration,
        pid=os.getpid(),
        rss_peak_kb=rss_kb,
        cpu_user_s=max(0.0, user1 - user0),
        cpu_sys_s=max(0.0, sys1 - sys0),
    )


def emit_task_span(
    observer,
    context: TaskSpanContext,
    device_id: int,
    sample: Optional[TaskSample],
) -> None:
    """Flush one client task's span triple into the parent's trace.

    The parent calls this once per task, in deterministic selection
    order, after collecting results — workers never touch the sink.
    ``sample`` may be ``None`` (spans off for that task): nothing is
    emitted.
    """
    if sample is None:
        return
    span_id = f"{context.parent_id}/task-{device_id}"
    observer.emit(
        SpanStartEvent(
            round_index=context.round_index,
            span_id=span_id,
            parent_id=context.parent_id,
            name="task",
            t_wall=sample.t_wall,
            pid=sample.pid,
        )
    )
    observer.emit(
        WorkerResourceEvent(
            round_index=context.round_index,
            span_id=span_id,
            pid=sample.pid,
            rss_peak_kb=sample.rss_peak_kb,
            cpu_user_s=sample.cpu_user_s,
            cpu_sys_s=sample.cpu_sys_s,
        )
    )
    observer.emit(
        SpanEndEvent(
            round_index=context.round_index,
            span_id=span_id,
            t_wall=sample.t_wall + sample.duration_s,
            duration_s=sample.duration_s,
            pid=sample.pid,
        )
    )
