"""Trace-event schema: validate serialized events line by line.

The JSONL trace format is a contract: every line is one JSON object
with an ``"event"`` discriminator naming a registered
:mod:`repro.obs.events` type, carrying exactly that type's fields with
the right JSON shapes. :func:`validate_event` checks a parsed object;
:func:`validate_trace` checks a whole file (CI runs it over a traced
smoke run via ``python -m repro.obs.validate``).

Validation is strict in both directions — a missing field *and* an
unknown extra field both fail — so schema drift between the emitters
and this module cannot go unnoticed.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable

from repro.errors import SerializationError
from repro.obs.events import EVENT_TYPES, StopReason

__all__ = ["EVENT_SCHEMAS", "validate_event", "validate_trace_lines", "validate_trace"]


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_str(value) -> bool:
    return isinstance(value, str)


def _is_id_list(value) -> bool:
    return isinstance(value, list) and all(_is_int(v) for v in value)


def _is_frequency_map(value) -> bool:
    return isinstance(value, dict) and all(
        _is_str(key) and _is_num(freq) for key, freq in value.items()
    )


def _is_stop_reason(value) -> bool:
    return _is_str(value) and value in {reason.value for reason in StopReason}


def _is_bool(value) -> bool:
    return isinstance(value, bool)


# Mirrors repro.network.tdma.CLIENT_OUTCOMES (kept literal so the trace
# schema has no dependency on the simulator; a meta-test pins the two).
def _is_outcome(value) -> bool:
    return _is_str(value) and value in {"ok", "dropped", "timeout"}


EVENT_SCHEMAS: Dict[str, Dict[str, Callable[[object], bool]]] = {
    "selection": {"round_index": _is_int, "selected_ids": _is_id_list},
    "frequency_assignment": {
        "round_index": _is_int,
        "frequencies": _is_frequency_map,
    },
    "fault_injected": {
        "round_index": _is_int,
        "device_id": _is_int,
        "fault": _is_str,
        "detail": _is_str,
        "magnitude": _is_num,
    },
    "client_dropped": {
        "round_index": _is_int,
        "device_id": _is_int,
        "cause": _is_str,
        "phase": _is_str,
    },
    "round_degraded": {
        "round_index": _is_int,
        "planned": _is_int,
        "aggregated": _is_int,
        "dropped_ids": _is_id_list,
        "timeout_ids": _is_id_list,
        "reassigned_frequencies": _is_bool,
    },
    "device_round": {
        "round_index": _is_int,
        "device_id": _is_int,
        "frequency": _is_num,
        "f_max": _is_num,
        "compute_delay": _is_num,
        "upload_delay": _is_num,
        "slack": _is_num,
        "compute_energy": _is_num,
        "upload_energy": _is_num,
        "outcome": _is_outcome,
    },
    "timeline": {
        "round_index": _is_int,
        "round_delay": _is_num,
        "round_energy": _is_num,
        "compute_energy": _is_num,
        "upload_energy": _is_num,
        "slack": _is_num,
        "cumulative_time": _is_num,
        "cumulative_energy": _is_num,
    },
    "battery_drop": {"round_index": _is_int, "dropped_ids": _is_id_list},
    "aggregation": {
        "round_index": _is_int,
        "num_updates": _is_int,
        "total_weight": _is_num,
    },
    "eval": {
        "round_index": _is_int,
        "test_loss": _is_num,
        "test_accuracy": _is_num,
    },
    "span_start": {
        "round_index": _is_int,
        "span_id": _is_str,
        "parent_id": _is_str,
        "name": _is_str,
        "t_wall": _is_num,
        "pid": _is_int,
    },
    "span_end": {
        "round_index": _is_int,
        "span_id": _is_str,
        "t_wall": _is_num,
        "duration_s": _is_num,
        "pid": _is_int,
    },
    "worker_resource": {
        "round_index": _is_int,
        "span_id": _is_str,
        "pid": _is_int,
        "rss_peak_kb": _is_num,
        "cpu_user_s": _is_num,
        "cpu_sys_s": _is_num,
    },
    "run_stop": {
        "round_index": _is_int,
        "reason": _is_stop_reason,
        "cumulative_time": _is_num,
        "cumulative_energy": _is_num,
        "label": _is_str,
    },
}
"""Per-``kind`` required fields and their JSON shape checks."""

# The schema table and the event registry must name the same kinds.
assert set(EVENT_SCHEMAS) == set(EVENT_TYPES)


def validate_event(payload: dict) -> str:
    """Validate one parsed trace object; return its event kind.

    Args:
        payload: a JSON-decoded trace line.

    Raises:
        SerializationError: when the object is not a dict, names an
            unknown event, misses a required field, carries an
            unexpected field, or a field has the wrong shape.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"trace event must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("event")
    if kind not in EVENT_SCHEMAS:
        raise SerializationError(f"unknown trace event kind {kind!r}")
    schema = EVENT_SCHEMAS[kind]
    for name, check in schema.items():
        if name not in payload:
            raise SerializationError(f"{kind} event is missing field {name!r}")
        if not check(payload[name]):
            raise SerializationError(
                f"{kind} event field {name!r} has invalid value "
                f"{payload[name]!r}"
            )
    extra = set(payload) - set(schema) - {"event"}
    if extra:
        raise SerializationError(
            f"{kind} event carries unexpected fields {sorted(extra)}"
        )
    return kind


def validate_trace_lines(lines: Iterable[str]) -> int:
    """Validate an iterable of JSONL lines; return the event count.

    Blank lines are permitted (and not counted); anything else must
    parse as JSON and pass :func:`validate_event`.
    """
    count = 0
    for line_number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"trace line {line_number} is not valid JSON: {exc}"
            ) from exc
        try:
            validate_event(payload)
        except SerializationError as exc:
            raise SerializationError(f"trace line {line_number}: {exc}") from exc
        count += 1
    return count


def validate_trace(path: str) -> int:
    """Validate a JSONL trace file (``.gz``-aware); return the event count."""
    from repro.obs.sinks import open_trace_file

    with open_trace_file(path) as handle:
        return validate_trace_lines(handle)
