"""Structured observability for federated training runs.

The training loop is instrumented against this package: every
observable step emits a typed event (:mod:`repro.obs.events`) through
a pluggable sink (:mod:`repro.obs.sinks`) while wall-clock timers and
counters aggregate into an in-memory registry
(:mod:`repro.obs.metrics`). A :class:`RunObserver` bundles the two
into the single optional handle the trainer, the execution backends,
and the energy ledger accept.

Tracing defaults off (events are discarded) and is strictly
read-only: a traced run's :class:`~repro.fl.history.TrainingHistory`
is bitwise identical to the untraced run's.

Typical use::

    from repro.obs import JsonlTraceSink, RunObserver

    with RunObserver(sink=JsonlTraceSink("run.jsonl")) as observer:
        trainer = FederatedTrainer(..., observer=observer)
        history = trainer.run()
    print(observer.metrics.format_timers())

From the CLI the same is ``python -m repro run helcfl --trace
run.jsonl``; validate a trace with ``python -m repro.obs.validate
run.jsonl``. Analyze a finished trace with ``python -m
repro.obs.report run.jsonl`` (or diff two runs with ``--compare``);
the underlying analytics live in :mod:`repro.obs.analysis`.
"""

from repro.obs.analysis import (
    LoadedTrace,
    RunStats,
    compare_stats,
    compute_run_stats,
    load_trace,
    render_report,
    split_runs,
)
from repro.obs.events import (
    EVENT_TYPES,
    AggregationEvent,
    BatteryDropEvent,
    ClientDroppedEvent,
    DeviceRoundEvent,
    EvalEvent,
    Event,
    FaultInjectedEvent,
    FrequencyAssignmentEvent,
    RoundDegradedEvent,
    RunStopEvent,
    SelectionEvent,
    StopReason,
    TimelineEvent,
)
from repro.obs.metrics import MetricsRegistry, TimerStat
from repro.obs.observer import RunObserver, configure_logging
from repro.obs.schema import (
    EVENT_SCHEMAS,
    validate_event,
    validate_trace,
    validate_trace_lines,
)
from repro.obs.sinks import (
    CollectingSink,
    EventSink,
    JsonlTraceSink,
    NullSink,
    open_trace_file,
)

__all__ = [
    "Event",
    "SelectionEvent",
    "FrequencyAssignmentEvent",
    "FaultInjectedEvent",
    "ClientDroppedEvent",
    "DeviceRoundEvent",
    "TimelineEvent",
    "BatteryDropEvent",
    "RoundDegradedEvent",
    "AggregationEvent",
    "EvalEvent",
    "RunStopEvent",
    "StopReason",
    "EVENT_TYPES",
    "MetricsRegistry",
    "TimerStat",
    "RunObserver",
    "configure_logging",
    "EVENT_SCHEMAS",
    "validate_event",
    "validate_trace",
    "validate_trace_lines",
    "EventSink",
    "NullSink",
    "CollectingSink",
    "JsonlTraceSink",
    "open_trace_file",
    "LoadedTrace",
    "RunStats",
    "load_trace",
    "split_runs",
    "compute_run_stats",
    "render_report",
    "compare_stats",
]
