"""Structured observability for federated training runs.

The training loop is instrumented against this package: every
observable step emits a typed event (:mod:`repro.obs.events`) through
a pluggable sink (:mod:`repro.obs.sinks`) while wall-clock timers and
counters aggregate into an in-memory registry
(:mod:`repro.obs.metrics`). A :class:`RunObserver` bundles the two
into the single optional handle the trainer, the execution backends,
and the energy ledger accept.

Tracing defaults off (events are discarded) and is strictly
read-only: a traced run's :class:`~repro.fl.history.TrainingHistory`
is bitwise identical to the untraced run's.

Typical use::

    from repro.obs import JsonlTraceSink, RunObserver

    with RunObserver(sink=JsonlTraceSink("run.jsonl")) as observer:
        trainer = FederatedTrainer(..., observer=observer)
        history = trainer.run()
    print(observer.metrics.format_timers())

From the CLI the same is ``python -m repro run helcfl --trace
run.jsonl``; validate a trace with ``python -m repro.obs.validate
run.jsonl``. Analyze a finished trace with ``python -m
repro.obs.report run.jsonl`` (or diff two runs with ``--compare``);
the underlying analytics live in :mod:`repro.obs.analysis`.
"""

from repro.obs.analysis import (
    LoadedTrace,
    RunStats,
    SpanSummary,
    compare_stats,
    compute_run_stats,
    load_trace,
    render_report,
    self_time_rows,
    split_runs,
    summarize_spans,
)
from repro.obs.chrome_trace import chrome_trace_document, render_chrome_trace
from repro.obs.events import (
    EVENT_TYPES,
    AggregationEvent,
    BatteryDropEvent,
    ClientDroppedEvent,
    DeviceRoundEvent,
    EvalEvent,
    Event,
    FaultInjectedEvent,
    FrequencyAssignmentEvent,
    RoundDegradedEvent,
    RunStopEvent,
    SelectionEvent,
    SpanEndEvent,
    SpanStartEvent,
    StopReason,
    TimelineEvent,
    WorkerResourceEvent,
)
from repro.obs.metrics import MetricsRegistry, TimerStat
from repro.obs.observer import RunObserver, configure_logging
from repro.obs.spans import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    TaskSample,
    TaskSpanContext,
    begin_task_sample,
    emit_task_span,
    end_task_sample,
)
from repro.obs.schema import (
    EVENT_SCHEMAS,
    validate_event,
    validate_trace,
    validate_trace_lines,
)
from repro.obs.sinks import (
    CollectingSink,
    EventSink,
    JsonlTraceSink,
    NullSink,
    open_trace_file,
)

__all__ = [
    "Event",
    "SelectionEvent",
    "FrequencyAssignmentEvent",
    "FaultInjectedEvent",
    "ClientDroppedEvent",
    "DeviceRoundEvent",
    "TimelineEvent",
    "BatteryDropEvent",
    "RoundDegradedEvent",
    "AggregationEvent",
    "EvalEvent",
    "SpanStartEvent",
    "SpanEndEvent",
    "WorkerResourceEvent",
    "RunStopEvent",
    "StopReason",
    "EVENT_TYPES",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "TaskSpanContext",
    "TaskSample",
    "begin_task_sample",
    "end_task_sample",
    "emit_task_span",
    "MetricsRegistry",
    "TimerStat",
    "RunObserver",
    "configure_logging",
    "EVENT_SCHEMAS",
    "validate_event",
    "validate_trace",
    "validate_trace_lines",
    "EventSink",
    "NullSink",
    "CollectingSink",
    "JsonlTraceSink",
    "open_trace_file",
    "LoadedTrace",
    "RunStats",
    "SpanSummary",
    "load_trace",
    "split_runs",
    "compute_run_stats",
    "summarize_spans",
    "self_time_rows",
    "render_report",
    "compare_stats",
    "chrome_trace_document",
    "render_chrome_trace",
]
