"""Command-line trace analytics: ``python -m repro.obs.report``.

Two modes:

* ``python -m repro.obs.report TRACE`` — render one run's analytics
  (terminal table, markdown, or JSON snapshot);
* ``python -m repro.obs.report --compare BASE OTHER`` — diff two runs
  and exit non-zero on regression, for CI gates.

Inputs may be JSONL traces (``.jsonl`` / ``.jsonl.gz``) or analytics
snapshots previously written with ``--format json`` — the two are told
apart by the snapshot's ``schema`` marker, so a nightly job can
compare a fresh trace against a committed baseline snapshot.

Exit codes: 0 success / no regression, 1 regression found by
``--compare``, 2 unreadable or invalid input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.errors import ConfigurationError, SerializationError
from repro.obs.analysis.compare import (
    CompareThresholds,
    compare_stats,
    render_comparison,
)
from repro.obs.analysis.loader import load_trace
from repro.obs.analysis.report import REPORT_FORMATS, render_report
from repro.obs.analysis.round_stats import (
    ANALYSIS_SCHEMA,
    RunStats,
    compute_run_stats,
    split_runs,
)
from repro.obs.analysis.spans import self_time_rows
from repro.obs.chrome_trace import render_chrome_trace
from repro.obs.sinks import open_trace_file

__all__ = ["build_parser", "load_stats", "load_run_events", "main"]

OUTPUT_FORMATS = REPORT_FORMATS + ("chrome-trace",)
"""Report formats plus the raw-trace-only Chrome export."""


def _select_segment(path: str, segments, run: Optional[int]):
    if not segments:
        raise SerializationError(f"{path}: trace contains no events")
    if run is None:
        if len(segments) > 1:
            raise SerializationError(
                f"{path}: trace holds {len(segments)} runs; pick one "
                "with --run N"
            )
        run = 0
    if not 0 <= run < len(segments):
        raise SerializationError(
            f"{path}: --run {run} out of range (trace holds "
            f"{len(segments)} run(s))"
        )
    return segments[run]


def load_run_events(path: str, run: Optional[int] = None):
    """One run's raw event segment from a JSONL trace.

    Unlike :func:`load_stats` this only accepts traces — analytics
    snapshots carry no events to export or time.
    """
    trace = load_trace(path)
    return _select_segment(path, split_runs(trace.events), run)


def load_stats(path: str, run: Optional[int] = None) -> RunStats:
    """Load analytics from a trace file or a stats-snapshot JSON.

    A file whose entire contents parse as one JSON object carrying the
    :data:`ANALYSIS_SCHEMA` marker is a snapshot; a ``repro.bench.*``
    composite document (e.g. ``BENCH_scalability.json``) embedding its
    snapshot under an ``"analytics"`` key is unwrapped to that
    snapshot; anything else is treated as a JSONL trace.

    Args:
        path: the input file.
        run: for multi-run traces (e.g. a traced ``fig2``), which
            0-based run segment to analyze; default is the only
            segment, and it is an error to omit it when the trace
            holds several.

    Raises:
        SerializationError: unreadable/invalid input, or an ambiguous
            multi-run trace without ``run``.
    """
    try:
        with open_trace_file(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SerializationError(f"{path}: cannot read: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        schema = payload.get("schema")
        if isinstance(schema, str) and schema.startswith("repro.bench"):
            analytics = payload.get("analytics")
            if not isinstance(analytics, dict):
                raise SerializationError(
                    f"{path}: bench document ({schema}) carries no "
                    "'analytics' snapshot"
                )
            payload = analytics
            schema = payload.get("schema")
        if schema == ANALYSIS_SCHEMA:
            stats = RunStats.from_dict(payload)
            if stats.source:
                return stats
            return replace(stats, source=str(path))

    trace = load_trace(path)
    segment = _select_segment(path, split_runs(trace.events), run)
    return compute_run_stats(segment, source=str(path))


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs.report`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Analyze a JSONL run trace: render per-round / per-device "
            "analytics, or compare two runs and fail on regression."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=(
            "one trace (report mode) or, with --compare, BASE and "
            "OTHER; traces may be .jsonl, .jsonl.gz, or analytics "
            "snapshot JSON"
        ),
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff two inputs (BASE OTHER) instead of reporting one",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="table",
        help=(
            "report output format (default: table); chrome-trace "
            "exports the span tree as Chrome/Perfetto trace-event JSON "
            "and requires a raw JSONL trace input"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report/comparison there instead of stdout",
    )
    parser.add_argument(
        "--top-devices",
        type=int,
        default=10,
        metavar="N",
        help="device-table size in report mode (default: 10)",
    )
    parser.add_argument(
        "--run",
        type=int,
        default=None,
        metavar="N",
        help="0-based run index for multi-run traces",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="compare mode: any metric difference is a regression",
    )
    parser.add_argument(
        "--energy-threshold",
        type=float,
        default=0.02,
        metavar="REL",
        help="allowed relative total-energy increase (default: 0.02)",
    )
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=0.02,
        metavar="REL",
        help="allowed relative total-time increase (default: 0.02)",
    )
    parser.add_argument(
        "--accuracy-threshold",
        type=float,
        default=0.02,
        metavar="ABS",
        help="allowed absolute final-accuracy drop (default: 0.02)",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        try:
            print(text)
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; not an analysis
            # error. Detach stdout so the interpreter's shutdown flush
            # does not raise a second time.
            sys.stdout = open(os.devnull, "w", encoding="utf-8")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.compare:
        if len(args.paths) != 2:
            parser.error("--compare takes exactly two inputs: BASE OTHER")
    elif len(args.paths) != 1:
        parser.error(
            "report mode takes exactly one input (use --compare for two)"
        )

    try:
        if args.compare:
            base = load_stats(args.paths[0], run=args.run)
            other = load_stats(args.paths[1], run=args.run)
            thresholds = CompareThresholds(
                energy_rel=args.energy_threshold,
                time_rel=args.time_threshold,
                accuracy_abs=args.accuracy_threshold,
                strict=args.strict,
            )
            comparison = compare_stats(base, other, thresholds)
            _emit(render_comparison(comparison), args.output)
            return 0 if comparison.ok else 1
        if args.format == "chrome-trace":
            events = load_run_events(args.paths[0], run=args.run)
            _emit(render_chrome_trace(events), args.output)
            return 0
        stats = load_stats(args.paths[0], run=args.run)
        span_timing = None
        if args.format != "json" and stats.spans.spans_total:
            try:
                span_timing = self_time_rows(
                    load_run_events(args.paths[0], run=args.run)
                )
            except SerializationError:
                # Snapshot input: structural digest only, no raw
                # events to time.
                span_timing = None
        _emit(
            render_report(
                stats,
                fmt=args.format,
                top_devices=args.top_devices,
                span_timing=span_timing,
            ),
            args.output,
        )
        return 0
    except (ConfigurationError, SerializationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an analysis error.
        sys.exit(0)
