"""Event sinks: where the trace stream goes.

An :class:`EventSink` receives every :class:`~repro.obs.events.Event`
a run emits, in order. Three implementations cover the standard needs:

* :class:`NullSink` — tracing off (the default); every emit is a no-op;
* :class:`CollectingSink` — keeps events in memory (tests, notebooks);
* :class:`JsonlTraceSink` — streams one JSON object per event to a
  file, flushed per event so a crashed run still leaves a usable
  trace (validate it with ``python -m repro.obs.validate``). Use it
  as a context manager (or close it in ``try``/``finally``) so the
  stream is flushed and closed even when a round raises mid-trace —
  chaos runs rely on never losing the tail of a trace.

Sinks only observe: they must never mutate events or feed anything
back into the training loop.
"""

from __future__ import annotations

import gzip
import json
from typing import List, Union

from repro.errors import SerializationError
from repro.obs.events import Event

__all__ = [
    "EventSink",
    "NullSink",
    "CollectingSink",
    "JsonlTraceSink",
    "open_trace_file",
]


def open_trace_file(path, mode: str = "r"):
    """Open a JSONL trace path as a text stream, gzip-aware.

    Paths ending in ``.gz`` are transparently (de)compressed — chaos
    matrices produce large traces, and every trace consumer
    (:class:`JsonlTraceSink`, the validator, the analysis loader)
    shares this suffix convention.

    Args:
        path: the trace file path.
        mode: ``"r"`` or ``"w"`` (text mode is implied).
    """
    if mode not in ("r", "w"):
        raise SerializationError(
            f"trace files open in 'r' or 'w' mode only, got {mode!r}"
        )
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class EventSink:
    """Protocol for trace-event consumers.

    Subclasses implement :meth:`emit`; :meth:`close` is optional and
    must be idempotent.
    """

    def emit(self, event: Event) -> None:
        """Consume one event (called in emission order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (idempotent; no-op by default)."""

    def __enter__(self) -> EventSink:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """Discard every event — the tracing-off default."""

    def emit(self, event: Event) -> None:
        """Drop the event."""


class CollectingSink(EventSink):
    """Accumulate events in an in-memory list (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Event]:
        """Collected events whose ``kind`` matches."""
        return [e for e in self.events if e.kind == kind]


class JsonlTraceSink(EventSink):
    """Stream events as JSON Lines: one JSON object per event.

    Args:
        target: a path to open for writing (``.gz`` suffixes stream
            through gzip), or an already-open text handle (e.g.
            ``sys.stdout``). The sink owns — and :meth:`close` closes —
            only handles it opened itself.
    """

    def __init__(self, target: Union[str, "object"]) -> None:
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._handle = open_trace_file(target, "w")
            self._owns_handle = True
        elif hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
        else:
            raise SerializationError(
                f"JsonlTraceSink target must be a path or a writable "
                f"text handle, got {type(target).__name__}"
            )
        self.events_written = 0
        self._closing = False

    def emit(self, event: Event) -> None:
        """Serialize and write one event, then flush.

        The serialized line is built *before* anything is written, so
        an unserializable event can never leave a truncated line
        behind; the flush then makes the line durable even if the run
        dies before :meth:`close`.
        """
        if self._handle is None:
            raise SerializationError(
                "JsonlTraceSink is closed; cannot emit further events"
            )
        line = json.dumps(event.to_dict()) + "\n"
        self._handle.write(line)
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Flush, then close the handle if this sink opened it.

        Idempotent, and safe mid-exception: borrowed handles (e.g.
        ``sys.stdout``) are flushed but left open for their owner.
        The handle stays writable until the final flush completes, so
        an event emitted *during* close (a final ``run_stop`` from an
        atexit path, a flush-triggered callback) is still written
        instead of being dropped; only after the flush does the sink
        reject further emits.
        """
        if self._handle is None or self._closing:
            return
        self._closing = True
        handle, owns = self._handle, self._owns_handle
        try:
            handle.flush()
        finally:
            self._handle = None
            if owns:
                handle.close()
