"""Model-update compression (the paper's Section I alternatives).

The paper's introduction surveys the competing line of work on
communication reduction: *sparsification* [5] and *quantization* [6],
noting they "inevitably sacrifice model accuracy or introduce
additional compression costs". This package implements both schemes so
that trade-off can be measured inside the same simulator:

* :class:`~repro.compression.quantization.UniformQuantizer` — k-bit
  uniform quantization of the update (parameter delta);
* :class:`~repro.compression.sparsification.TopKSparsifier` — keep the
  top-k magnitude entries, with optional error feedback;
* :class:`~repro.compression.pipeline.CompressionPipeline` — composes
  a compressor with the FL client/server path and reports the
  compressed payload size in bits, which plugs straight into the
  upload-delay model (Eq. 7).

The extension bench ``benchmarks/bench_ext_compression.py`` compares
compression-based communication savings against HELCFL's DVFS-based
energy savings, reproducing the paper's qualitative argument.
"""

from repro.compression.pipeline import CompressedUpdate, CompressionPipeline
from repro.compression.quantization import UniformQuantizer
from repro.compression.sparsification import TopKSparsifier

__all__ = [
    "UniformQuantizer",
    "TopKSparsifier",
    "CompressionPipeline",
    "CompressedUpdate",
]
