"""Uniform k-bit quantization of model updates.

Implements the classic uniform (linear) quantizer used by
communication-efficient FL schemes [6]: the update vector is mapped
onto ``2^bits`` evenly spaced levels between its minimum and maximum,
transmitted as integer codes plus the two float range endpoints.

The payload accounting charges ``bits`` per parameter plus a constant
header, so a 32-bit float update quantized to 8 bits shrinks the
communication payload (and hence Eq. 7's upload delay) by ~4x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import ensure_generator

__all__ = ["QuantizedVector", "UniformQuantizer"]

_HEADER_BITS = 2 * 64  # two float64 range endpoints


@dataclass(frozen=True)
class QuantizedVector:
    """A quantized update: integer codes plus the dequantization range.

    Attributes:
        codes: integer level indices, dtype sized to the bit width.
        low: minimum of the original vector.
        high: maximum of the original vector.
        bits: bits per entry.
    """

    codes: np.ndarray
    low: float
    high: float
    bits: int

    @property
    def payload_bits(self) -> float:
        """Transmitted size: ``bits`` per entry plus the range header."""
        return float(self.codes.size * self.bits + _HEADER_BITS)


class UniformQuantizer:
    """Uniform quantizer with ``bits`` levels per parameter.

    Args:
        bits: bit width per parameter, in ``[1, 16]``.
        stochastic: use stochastic (unbiased) rounding instead of
            nearest-level rounding.
        seed: rounding seed (stochastic mode only).
    """

    def __init__(self, bits: int = 8, stochastic: bool = False, seed=None):
        if not 1 <= bits <= 16:
            raise ConfigurationError(f"bits must be in [1, 16], got {bits}")
        self.bits = int(bits)
        self.stochastic = bool(stochastic)
        self._rng = ensure_generator(seed)

    @property
    def levels(self) -> int:
        """Number of representable levels, ``2^bits``."""
        return 2**self.bits

    def compress(self, vector: np.ndarray) -> QuantizedVector:
        """Quantize ``vector`` onto the uniform grid.

        Args:
            vector: float update vector (flattened internally).

        Returns:
            The :class:`QuantizedVector` payload.
        """
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.size == 0:
            return QuantizedVector(
                codes=np.zeros(0, dtype=np.uint16),
                low=0.0,
                high=0.0,
                bits=self.bits,
            )
        low = float(vector.min())
        high = float(vector.max())
        scale = (self.levels - 1) / (high - low) if high > low else np.inf
        if high == low or not np.isfinite(scale):
            # Constant vector, or a span so small the scale overflows:
            # transmit a single level (the reconstruction error is at
            # most the span itself, which is ~0 here).
            codes = np.zeros(vector.size, dtype=np.uint16)
            return QuantizedVector(codes=codes, low=low, high=low, bits=self.bits)
        positions = (vector - low) * scale
        if self.stochastic:
            floor = np.floor(positions)
            fraction = positions - floor
            jitter = self._rng.random(vector.size) < fraction
            codes = (floor + jitter).astype(np.uint16)
        else:
            codes = np.rint(positions).astype(np.uint16)
        codes = np.clip(codes, 0, self.levels - 1)
        return QuantizedVector(codes=codes, low=low, high=high, bits=self.bits)

    def decompress(self, payload: QuantizedVector) -> np.ndarray:
        """Reconstruct the float vector from a quantized payload."""
        if payload.codes.size == 0:
            return np.zeros(0, dtype=np.float64)
        if payload.high == payload.low:
            return np.full(payload.codes.size, payload.low, dtype=np.float64)
        step = (payload.high - payload.low) / (self.levels - 1)
        return payload.low + payload.codes.astype(np.float64) * step

    def max_error(self, payload: QuantizedVector) -> float:
        """Worst-case absolute reconstruction error for this payload.

        Nearest rounding errs by at most half a step; stochastic
        rounding by at most a full step.
        """
        if payload.high == payload.low:
            return 0.0
        step = (payload.high - payload.low) / (self.levels - 1)
        return step if self.stochastic else step / 2.0

    def __repr__(self) -> str:
        mode = "stochastic" if self.stochastic else "nearest"
        return f"UniformQuantizer(bits={self.bits}, {mode})"
