"""Compression pipeline: plugging compressors into the FL round.

In a compressed FL deployment each client transmits a compressed
*update delta* (trained parameters minus the broadcast global
parameters) instead of the raw parameter vector. The pipeline

1. keeps one compressor instance per client (error-feedback residuals
   are client-local state),
2. compresses each client's delta and reports the payload size in
   bits — which the TDMA simulator then uses for that client's upload
   delay and energy (Eqs. 7-8),
3. reconstructs the (lossy) parameter vector the server actually
   receives.

Hand an instance to :class:`repro.fl.trainer.FederatedTrainer` via its
``compression`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.compression.quantization import UniformQuantizer
from repro.compression.sparsification import TopKSparsifier
from repro.errors import ConfigurationError

__all__ = ["CompressedUpdate", "CompressionPipeline"]


@dataclass(frozen=True)
class CompressedUpdate:
    """What the server receives from one client.

    Attributes:
        params: reconstructed parameter vector (global + lossy delta).
        payload_bits: transmitted size in bits.
        compression_ratio: raw float32 payload divided by transmitted
            payload (>= 1 for effective compression).
    """

    params: np.ndarray
    payload_bits: float
    compression_ratio: float


class CompressionPipeline:
    """Per-client compression of FL update deltas.

    Args:
        compressor_factory: zero-argument callable building a fresh
            compressor (an object with ``compress``/``decompress``
            whose payload exposes ``payload_bits``) for each client.
    """

    def __init__(self, compressor_factory: Callable[[], object]) -> None:
        if not callable(compressor_factory):
            raise ConfigurationError("compressor_factory must be callable")
        self._factory = compressor_factory
        self._per_client: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def top_k(
        cls, fraction: float = 0.1, error_feedback: bool = True
    ) -> CompressionPipeline:
        """Top-k sparsification pipeline [5]."""
        return cls(lambda: TopKSparsifier(fraction, error_feedback))

    @classmethod
    def quantized(
        cls, bits: int = 8, stochastic: bool = False, seed=None
    ) -> CompressionPipeline:
        """Uniform k-bit quantization pipeline [6]."""
        counter = {"next": 0}

        def factory():
            # Derive a distinct rounding stream per client.
            client_seed = None
            if seed is not None:
                client_seed = seed + counter["next"]
                counter["next"] += 1
            return UniformQuantizer(bits, stochastic=stochastic, seed=client_seed)

        return cls(factory)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all per-client compressor state (residuals etc.)."""
        self._per_client.clear()

    def _compressor(self, device_id: int):
        compressor = self._per_client.get(device_id)
        if compressor is None:
            compressor = self._factory()
            self._per_client[device_id] = compressor
        return compressor

    def process(
        self,
        device_id: int,
        global_params: np.ndarray,
        local_params: np.ndarray,
    ) -> CompressedUpdate:
        """Compress one client's update and reconstruct server-side.

        Args:
            device_id: the uploading client (keys its residual state).
            global_params: the parameters the round broadcast.
            local_params: the client's trained parameters.

        Returns:
            The :class:`CompressedUpdate` the server works with.
        """
        global_params = np.asarray(global_params, dtype=np.float64).ravel()
        local_params = np.asarray(local_params, dtype=np.float64).ravel()
        if global_params.shape != local_params.shape:
            raise ConfigurationError(
                f"global ({global_params.size}) and local "
                f"({local_params.size}) parameter lengths differ"
            )
        delta = local_params - global_params
        compressor = self._compressor(device_id)
        payload = compressor.compress(delta)
        delta_hat = compressor.decompress(payload)
        raw_bits = 32.0 * delta.size
        transmitted = float(payload.payload_bits)
        ratio = raw_bits / transmitted if transmitted > 0 else float("inf")
        return CompressedUpdate(
            params=global_params + delta_hat,
            payload_bits=transmitted,
            compression_ratio=ratio,
        )
