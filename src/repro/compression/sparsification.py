"""Top-k sparsification of model updates.

Implements magnitude-based top-k sparsification [5]: only the ``k``
largest-magnitude entries of the update are transmitted (as
index/value pairs). With *error feedback*, the untransmitted residual
is remembered and added to the next round's update, which is what
keeps aggressive sparsification from stalling convergence.

Payload accounting charges ``32 + index_bits`` per kept entry, where
``index_bits = ceil(log2(dimension))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SparseVector", "TopKSparsifier"]


@dataclass(frozen=True)
class SparseVector:
    """A sparsified update: kept indices, their values, and dimension.

    Attributes:
        indices: positions of transmitted entries (sorted ascending).
        values: transmitted values, aligned with ``indices``.
        dimension: length of the dense vector.
    """

    indices: np.ndarray
    values: np.ndarray
    dimension: int

    @property
    def density(self) -> float:
        """Fraction of entries transmitted."""
        if self.dimension == 0:
            return 0.0
        return self.indices.size / self.dimension

    @property
    def payload_bits(self) -> float:
        """Transmitted size: value bits + index bits per kept entry."""
        if self.dimension == 0:
            return 0.0
        index_bits = max(1, math.ceil(math.log2(self.dimension)))
        return float(self.indices.size * (32 + index_bits))


class TopKSparsifier:
    """Keep the top-``fraction`` magnitude entries of each update.

    Args:
        fraction: fraction of entries to keep, in ``(0, 1]``.
        error_feedback: accumulate the dropped residual and add it to
            the next update (memory is per-sparsifier instance, i.e.
            per client in an FL deployment).
    """

    def __init__(self, fraction: float = 0.1, error_feedback: bool = True):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = float(fraction)
        self.error_feedback = bool(error_feedback)
        self._residual: np.ndarray | None = None

    def reset(self) -> None:
        """Clear the error-feedback residual."""
        self._residual = None

    def keep_count(self, dimension: int) -> int:
        """Entries kept for a ``dimension``-long vector (at least 1)."""
        return max(1, int(round(self.fraction * dimension)))

    def compress(self, vector: np.ndarray) -> SparseVector:
        """Sparsify ``vector`` (plus any residual) to its top-k entries."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if self.error_feedback:
            if self._residual is not None and self._residual.size == vector.size:
                vector = vector + self._residual
        if vector.size == 0:
            return SparseVector(
                indices=np.zeros(0, dtype=np.int64),
                values=np.zeros(0, dtype=np.float64),
                dimension=0,
            )
        k = self.keep_count(vector.size)
        if k >= vector.size:
            indices = np.arange(vector.size, dtype=np.int64)
        else:
            indices = np.argpartition(np.abs(vector), -k)[-k:]
            indices = np.sort(indices).astype(np.int64)
        values = vector[indices].copy()
        if self.error_feedback:
            residual = vector.copy()
            residual[indices] = 0.0
            self._residual = residual
        return SparseVector(indices=indices, values=values, dimension=vector.size)

    @staticmethod
    def decompress(payload: SparseVector) -> np.ndarray:
        """Densify a sparse payload (zeros everywhere not transmitted)."""
        dense = np.zeros(payload.dimension, dtype=np.float64)
        dense[payload.indices] = payload.values
        return dense

    def __repr__(self) -> str:
        return (
            f"TopKSparsifier(fraction={self.fraction}, "
            f"error_feedback={self.error_feedback})"
        )
