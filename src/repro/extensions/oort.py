"""Oort-style joint statistical + system utility selection (extension).

HELCFL's utility (Eq. 20) is purely *system*-side: it scores users by
training delay, decayed by participation. The closest published
relative, Oort (Lai et al., OSDI 2021), additionally folds in
*statistical* utility — how informative a user's data currently is,
estimated from its recent training loss — and explores unseen users.

This extension implements the Oort scoring shape on this repository's
substrates::

    U_q = StatUtil_q * (T_pref / T_q)^alpha_penalty   if T_q > T_pref
    U_q = StatUtil_q                                   otherwise

where ``StatUtil_q`` is ``|D_q| * last_loss_q`` (loss-weighted data
volume), ``T_q`` the user's round delay, and ``T_pref`` a preferred
round duration (the system-speed developer knob). Users never selected
get an exploration bonus so the scheme keeps discovering data.

It is a drop-in :class:`~repro.fl.strategy.SelectionStrategy`: it
overrides the base class's :meth:`SelectionStrategy.observe_losses`
no-op hook, which :class:`~repro.fl.trainer.FederatedTrainer` calls
with every round's observed client losses (see
``benchmarks/bench_ext_oort.py``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError
from repro.fl.strategy import SelectionStrategy, selection_count
from repro.rng import (
    SeedLike,
    ensure_generator,
    generator_state,
    restore_generator,
)

__all__ = ["OortSelection"]


class OortSelection(SelectionStrategy):
    """Joint statistical/system utility selection with exploration.

    Args:
        fraction: selection fraction ``C``.
        payload_bits: model payload (for the delay estimate).
        bandwidth_hz: uplink resource blocks.
        preferred_round_s: the "preferred" round duration ``T_pref``;
            users slower than this are penalized. ``None`` uses the
            population's median total delay, computed lazily.
        penalty_exponent: the system-penalty exponent ``alpha``.
        exploration_fraction: fraction of each round's slots given to
            never-selected users (sampled uniformly), while any remain.
        seed: exploration-sampling seed.
    """

    def __init__(
        self,
        fraction: float,
        payload_bits: float,
        bandwidth_hz: float,
        preferred_round_s: float | None = None,
        penalty_exponent: float = 1.0,
        exploration_fraction: float = 0.2,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if payload_bits <= 0 or bandwidth_hz <= 0:
            raise ConfigurationError(
                "payload_bits and bandwidth_hz must be positive, got "
                f"{payload_bits} and {bandwidth_hz}"
            )
        if preferred_round_s is not None and preferred_round_s <= 0:
            raise ConfigurationError(
                f"preferred_round_s must be positive, got {preferred_round_s}"
            )
        if penalty_exponent < 0:
            raise ConfigurationError(
                f"penalty_exponent must be >= 0, got {penalty_exponent}"
            )
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ConfigurationError(
                f"exploration_fraction must be in [0, 1], got "
                f"{exploration_fraction}"
            )
        self.fraction = float(fraction)
        self.payload_bits = float(payload_bits)
        self.bandwidth_hz = float(bandwidth_hz)
        self.preferred_round_s = preferred_round_s
        self.penalty_exponent = float(penalty_exponent)
        self.exploration_fraction = float(exploration_fraction)
        self._seed = seed
        self._rng = ensure_generator(seed)
        self.last_losses: Dict[int, float] = {}
        self.ever_selected: set = set()

    def reset(self) -> None:
        """Forget loss observations and exploration state."""
        self.last_losses.clear()
        self.ever_selected.clear()
        self._rng = ensure_generator(self._seed)

    def state_dict(self) -> Dict:
        """Checkpoint snapshot: losses, exploration set, RNG stream."""
        return {
            "last_losses": {
                str(device_id): loss
                for device_id, loss in sorted(self.last_losses.items())
            },
            "ever_selected": sorted(self.ever_selected),
            "rng": generator_state(self._rng),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.last_losses = {
            int(device_id): float(loss)
            for device_id, loss in state.get("last_losses", {}).items()
        }
        self.ever_selected = set(state.get("ever_selected", ()))
        self._rng = restore_generator(state["rng"])

    # ------------------------------------------------------------------
    def observe_losses(self, losses: Dict[int, float]) -> None:
        """Feed back observed client training losses (base-hook override).

        Args:
            losses: mapping from device id to the loss measured in its
                most recent participation.
        """
        for device_id, loss in losses.items():
            if loss < 0:
                raise ConfigurationError(
                    f"loss must be non-negative, got {loss} for {device_id}"
                )
            self.last_losses[int(device_id)] = float(loss)

    def _preferred_duration(self, devices: Sequence[UserDevice]) -> float:
        if self.preferred_round_s is not None:
            return self.preferred_round_s
        delays = sorted(
            d.total_delay(self.payload_bits, self.bandwidth_hz) for d in devices
        )
        return delays[len(delays) // 2]

    def utility(self, device: UserDevice, preferred: float) -> float:
        """The Oort score of one (previously seen) device."""
        last_loss = self.last_losses.get(device.device_id)
        # Unseen devices handled by exploration; give a neutral prior
        # here so utility() is total.
        stat = device.num_samples * (last_loss if last_loss is not None else 1.0)
        delay = device.total_delay(self.payload_bits, self.bandwidth_hz)
        if delay > preferred and self.penalty_exponent > 0:
            stat *= math.pow(preferred / delay, self.penalty_exponent)
        return stat

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        del round_index
        self._check_population(devices)
        count = selection_count(len(devices), self.fraction)
        preferred = self._preferred_duration(devices)

        unexplored = [
            d for d in devices if d.device_id not in self.ever_selected
        ]
        explore_slots = min(
            len(unexplored), max(0, int(round(self.exploration_fraction * count)))
        )
        # While nothing has been observed yet, explore with every slot.
        if not self.last_losses:
            explore_slots = min(len(unexplored), count)

        chosen: List[UserDevice] = []
        if explore_slots:
            picks = self._rng.choice(
                len(unexplored), size=explore_slots, replace=False
            )
            chosen.extend(unexplored[int(i)] for i in sorted(picks))

        remaining = count - len(chosen)
        if remaining > 0:
            chosen_ids = {d.device_id for d in chosen}
            candidates = [d for d in devices if d.device_id not in chosen_ids]
            ranked = sorted(
                candidates,
                key=lambda d: (-self.utility(d, preferred), d.device_id),
            )
            chosen.extend(ranked[:remaining])

        for device in chosen:
            self.ever_selected.add(device.device_id)
        return chosen

    def __repr__(self) -> str:
        return (
            f"OortSelection(C={self.fraction}, "
            f"explore={self.exploration_fraction})"
        )
