"""Personalization by local fine-tuning (extension).

A global FL model optimizes the population-average objective (Eq. 2),
but each user ultimately cares about accuracy on *their* distribution.
The standard first-order personalization baseline fine-tunes the
trained global model on each user's local data for a few steps and
evaluates per-user.

On the paper's non-IID shards a user holding 3-4 labels converts
global knowledge into a better local predictor in a handful of steps —
quantifying a dimension the global-accuracy metric of Fig. 2 leaves
out. (The gain size depends on how much headroom the global model
leaves on each user's labels; at small scales it is modest but
consistently positive in the mean.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import train_test_split
from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, TrainingError
from repro.fl.client import LocalTrainer
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.rng import SeedLike, derive_seed

__all__ = ["PersonalizationReport", "evaluate_personalization"]


@dataclass(frozen=True)
class PersonalizationReport:
    """Per-user accuracies before and after local fine-tuning.

    Attributes:
        global_accuracies: per-user accuracy of the global model on
            each user's held-out local split.
        personalized_accuracies: same, after fine-tuning.
        device_ids: the evaluated users, aligned with both lists.
    """

    global_accuracies: Tuple[float, ...]
    personalized_accuracies: Tuple[float, ...]
    device_ids: Tuple[int, ...]

    @property
    def mean_global(self) -> float:
        """Population-mean accuracy of the unadapted global model."""
        return float(np.mean(self.global_accuracies))

    @property
    def mean_personalized(self) -> float:
        """Population-mean accuracy after fine-tuning."""
        return float(np.mean(self.personalized_accuracies))

    @property
    def mean_gain(self) -> float:
        """Mean per-user accuracy gain from personalization."""
        return self.mean_personalized - self.mean_global

    def win_fraction(self) -> float:
        """Fraction of users personalization helped (strictly)."""
        gains = np.asarray(self.personalized_accuracies) - np.asarray(
            self.global_accuracies
        )
        return float(np.mean(gains > 0))


def evaluate_personalization(
    global_model: Sequential,
    devices: Sequence[UserDevice],
    fine_tune_steps: int = 5,
    learning_rate: float = 0.1,
    holdout_fraction: float = 0.25,
    max_users: Optional[int] = None,
    seed: SeedLike = 0,
) -> PersonalizationReport:
    """Fine-tune the global model per user and measure local accuracy.

    Each user's local data is split into an adaptation set and a
    held-out set; the global model is evaluated on the held-out split
    before and after ``fine_tune_steps`` full-batch GD steps on the
    adaptation split.

    Args:
        global_model: the trained global model (never mutated).
        devices: users to evaluate.
        fine_tune_steps: local GD steps per user.
        learning_rate: fine-tuning learning rate.
        holdout_fraction: fraction of each user's data held out for
            evaluation.
        max_users: evaluate only this many users (in id order); None
            evaluates everyone.
        seed: split seed.

    Returns:
        The :class:`PersonalizationReport`.

    Raises:
        TrainingError: if no user has enough data to split.
    """
    if fine_tune_steps <= 0:
        raise ConfigurationError(
            f"fine_tune_steps must be positive, got {fine_tune_steps}"
        )
    if not 0.0 < holdout_fraction < 1.0:
        raise ConfigurationError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    if max_users is not None and max_users <= 0:
        raise ConfigurationError(
            f"max_users must be positive when set, got {max_users}"
        )
    chosen = sorted(devices, key=lambda d: d.device_id)
    if max_users is not None:
        chosen = chosen[:max_users]

    trainer = LocalTrainer(
        learning_rate=learning_rate, local_steps=fine_tune_steps
    )
    global_params = global_model.get_flat_params().copy()
    scratch = global_model.clone()

    global_scores: List[float] = []
    personal_scores: List[float] = []
    ids: List[int] = []
    for device in chosen:
        if device.num_samples < 4:
            continue
        adapt, held = train_test_split(
            device.dataset,
            test_fraction=holdout_fraction,
            seed=derive_seed(seed, "personalize", str(device.device_id)),
        )
        scratch.set_flat_params(global_params)
        before = accuracy(
            scratch.predict_classes(held.inputs), held.labels
        )
        trainer.train(scratch, adapt)
        after = accuracy(
            scratch.predict_classes(held.inputs), held.labels
        )
        global_scores.append(before)
        personal_scores.append(after)
        ids.append(device.device_id)

    if not ids:
        raise TrainingError(
            "no user had enough local data to split for personalization"
        )
    return PersonalizationReport(
        global_accuracies=tuple(global_scores),
        personalized_accuracies=tuple(personal_scores),
        device_ids=tuple(ids),
    )
