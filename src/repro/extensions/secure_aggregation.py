"""Secure aggregation via pairwise additive masking (extension).

FL's premise — the reason the paper's users train locally at all — is
that raw data stays private. But plain FedAvg still reveals each
user's *model update* to the server. Secure aggregation (Bonawitz et
al., CCS 2017) fixes this: every pair of clients ``(i, j)`` derives a
shared mask vector; client ``i`` adds it, client ``j`` subtracts it,
so each uploaded vector looks random while the masks cancel exactly in
the server's sum.

This module implements the honest-but-curious core of the protocol
(pairwise masks from seeded PRGs; no dropout-recovery shares) and
quantifies its costs in this repo's terms: masked uploads cannot be
compressed by magnitude-based methods, and the weighted FedAvg of
Eq. (18) must be computed as a masked *sum* of pre-weighted updates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.rng import SeedLike, derive_seed, ensure_generator

__all__ = ["SecureAggregator"]


class SecureAggregator:
    """Pairwise-mask secure aggregation for one FL round.

    Usage per round::

        agg = SecureAggregator(dimension=model.parameter_count, seed=...)
        masked = [agg.mask(cid, participant_ids, w_i * update_i)
                  for cid, update_i in ...]
        total = agg.unmask_sum(masked)          # == sum of w_i * update_i
        global_update = total / sum(w_i)

    Weighted FedAvg is recovered by pre-multiplying each update with
    its weight and dividing the recovered sum by the weight total (the
    weights ``|D_q|`` are public metadata in the paper's setting).

    Args:
        dimension: length of the flat update vectors.
        seed: round seed; every pair's mask derives from it, so all
            participants (and tests) can reproduce the masks.
        mask_scale: standard deviation of mask entries. Large scales
            hide updates better; the cancellation is exact either way.
    """

    def __init__(
        self, dimension: int, seed: SeedLike = None, mask_scale: float = 100.0
    ) -> None:
        if dimension <= 0:
            raise ConfigurationError(
                f"dimension must be positive, got {dimension}"
            )
        if mask_scale <= 0:
            raise ConfigurationError(
                f"mask_scale must be positive, got {mask_scale}"
            )
        self.dimension = int(dimension)
        self.seed = seed
        self.mask_scale = float(mask_scale)

    def _pair_mask(self, low_id: int, high_id: int) -> np.ndarray:
        """The shared mask of the client pair ``(low_id, high_id)``."""
        pair_seed = derive_seed(self.seed, "pairmask", f"{low_id}-{high_id}")
        rng = ensure_generator(pair_seed)
        return rng.normal(0.0, self.mask_scale, size=self.dimension)

    def mask(
        self,
        client_id: int,
        participants: Sequence[int],
        update: np.ndarray,
    ) -> np.ndarray:
        """Return ``update`` plus this client's pairwise masks.

        For every other participant ``j``: add the pair mask if
        ``client_id < j``, subtract it otherwise — so summing all
        participants' masked vectors cancels every mask.

        Args:
            client_id: this client's id (must be in ``participants``).
            participants: ids of every client in the round.
            update: the flat (pre-weighted) update vector.
        """
        update = np.asarray(update, dtype=np.float64).ravel()
        if update.size != self.dimension:
            raise ConfigurationError(
                f"update has length {update.size}, aggregator expects "
                f"{self.dimension}"
            )
        ids = sorted(set(int(p) for p in participants))
        if client_id not in ids:
            raise ConfigurationError(
                f"client {client_id} not among participants {ids}"
            )
        masked = update.copy()
        for other in ids:
            if other == client_id:
                continue
            low, high = min(client_id, other), max(client_id, other)
            mask = self._pair_mask(low, high)
            if client_id == low:
                masked += mask
            else:
                masked -= mask
        return masked

    @staticmethod
    def unmask_sum(masked_updates: Sequence[np.ndarray]) -> np.ndarray:
        """Sum all masked vectors; the pairwise masks cancel exactly.

        Raises:
            TrainingError: for an empty round.
        """
        if len(masked_updates) == 0:
            raise TrainingError("cannot aggregate zero masked updates")
        total = np.zeros_like(np.asarray(masked_updates[0], dtype=np.float64))
        for masked in masked_updates:
            total = total + np.asarray(masked, dtype=np.float64)
        return total

    def secure_fedavg(
        self,
        contributions: Sequence[Tuple[int, np.ndarray, float]],
    ) -> np.ndarray:
        """Run the full masked weighted average for one round.

        Args:
            contributions: ``(client_id, update, weight)`` triples; the
                weights are public (the paper's ``|D_q|``).

        Returns:
            The weighted average, numerically equal to plain FedAvg up
            to mask-cancellation round-off.
        """
        if not contributions:
            raise TrainingError("cannot aggregate zero contributions")
        ids = [int(cid) for cid, _, _ in contributions]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate client ids in round: {ids}")
        total_weight = float(sum(w for _, _, w in contributions))
        if total_weight <= 0:
            raise TrainingError("total weight must be positive")
        masked: List[np.ndarray] = [
            self.mask(cid, ids, np.asarray(update) * w)
            for cid, update, w in contributions
        ]
        return self.unmask_sum(masked) / total_weight

    def masking_overhead_bits(self, num_participants: int) -> float:
        """Extra setup traffic: one 64-bit seed exchange per pair."""
        if num_participants < 0:
            raise ConfigurationError(
                f"num_participants must be non-negative, got {num_participants}"
            )
        pairs = num_participants * (num_participants - 1) // 2
        return float(64 * pairs)

    def leakage_bound(self, masked: np.ndarray, update: np.ndarray) -> float:
        """Correlation between a masked vector and the raw update.

        A diagnostic, not a proof: with ``mask_scale`` much larger than
        the update scale, the correlation should be near zero —
        individual uploads are statistically hidden.
        """
        masked = np.asarray(masked, dtype=np.float64).ravel()
        update = np.asarray(update, dtype=np.float64).ravel()
        if masked.size != update.size or masked.size < 2:
            raise ConfigurationError("need two same-length vectors (>= 2)")
        if masked.std() == 0 or update.std() == 0:
            return 0.0
        return float(np.corrcoef(masked, update)[0, 1])
