"""Battery-aware selection gating (extension).

The paper motivates its energy optimization with battery-powered
devices: "energy of user devices is quickly exhausted or even device
shutdown occurs during FL training" (Section I). A natural
system-level complement to HELCFL is to stop *selecting* users whose
battery is nearly empty — they would either shut down mid-round
(losing their update) or be pushed into shutdown by participating.

:class:`BatteryAwareSelection` is a decorator: it filters the
population by battery level (and, optionally, by whether the device
can afford its own worst-case round cost) before delegating to any
inner strategy — HELCFL's greedy-decay, random, FedCS, anything.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, SelectionError
from repro.fl.strategy import SelectionStrategy

__all__ = ["BatteryAwareSelection"]


class BatteryAwareSelection(SelectionStrategy):
    """Filter out energy-starved devices, then delegate selection.

    Devices without a battery are always eligible. If filtering leaves
    nobody, the strategy falls back to the full population (training
    must proceed; the trainer's battery enforcement will handle the
    consequences) unless ``strict`` is set.

    Args:
        inner: the wrapped selection strategy.
        min_level: minimum battery level (fraction of capacity) to be
            eligible, in ``[0, 1]``.
        require_round_budget: additionally require that the device can
            afford one worst-case round (max-frequency compute plus
            one upload) from its remaining charge.
        payload_bits: payload used for the round-budget estimate
            (required when ``require_round_budget``).
        bandwidth_hz: bandwidth for the round-budget estimate.
        strict: raise :class:`SelectionError` instead of falling back
            when every device is filtered out.
    """

    def __init__(
        self,
        inner: SelectionStrategy,
        min_level: float = 0.1,
        require_round_budget: bool = False,
        payload_bits: Optional[float] = None,
        bandwidth_hz: Optional[float] = None,
        strict: bool = False,
    ) -> None:
        if not isinstance(inner, SelectionStrategy):
            raise ConfigurationError(
                f"inner must be a SelectionStrategy, got {type(inner)!r}"
            )
        if not 0.0 <= min_level <= 1.0:
            raise ConfigurationError(
                f"min_level must be in [0, 1], got {min_level}"
            )
        if require_round_budget and (
            payload_bits is None or bandwidth_hz is None
        ):
            raise ConfigurationError(
                "require_round_budget needs payload_bits and bandwidth_hz"
            )
        self.inner = inner
        self.min_level = float(min_level)
        self.require_round_budget = bool(require_round_budget)
        self.payload_bits = payload_bits
        self.bandwidth_hz = bandwidth_hz
        self.strict = bool(strict)

    def reset(self) -> None:
        """Reset the wrapped strategy."""
        self.inner.reset()

    def _eligible(self, device: UserDevice) -> bool:
        battery = device.battery
        if battery is None:
            return True
        if battery.level < self.min_level:
            return False
        if self.require_round_budget:
            worst_case = device.compute_energy() + device.upload_energy(
                self.payload_bits, self.bandwidth_hz
            )
            if not battery.can_afford(worst_case):
                return False
        return True

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        self._check_population(devices)
        eligible = [d for d in devices if self._eligible(d)]
        if not eligible:
            if self.strict:
                raise SelectionError(
                    "every device is below the battery eligibility threshold"
                )
            eligible = list(devices)
        return self.inner.select(round_index, eligible)

    def __repr__(self) -> str:
        return (
            f"BatteryAwareSelection(min_level={self.min_level}, "
            f"inner={self.inner!r})"
        )
