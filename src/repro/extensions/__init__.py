"""Extensions beyond the paper's scope.

Features the paper motivates but does not implement, built on the same
substrates:

* :class:`~repro.extensions.battery_aware.BatteryAwareSelection` —
  battery-level gating composed around any selection strategy
  (Section I motivates energy optimization with battery-powered
  devices shutting down mid-training);
* :class:`~repro.extensions.async_fl.SemiAsyncTrainer` — a
  semi-asynchronous aggregation loop with staleness-weighted FedAvg,
  the standard alternative to the paper's synchronous rule.
"""

from repro.extensions.async_fl import SemiAsyncConfig, SemiAsyncTrainer
from repro.extensions.battery_aware import BatteryAwareSelection
from repro.extensions.oort import OortSelection
from repro.extensions.personalization import (
    PersonalizationReport,
    evaluate_personalization,
)
from repro.extensions.secure_aggregation import SecureAggregator

__all__ = [
    "BatteryAwareSelection",
    "SemiAsyncTrainer",
    "SemiAsyncConfig",
    "OortSelection",
    "SecureAggregator",
    "PersonalizationReport",
    "evaluate_personalization",
]
