"""Semi-asynchronous federated learning (extension).

The paper's Algorithm 1 is synchronous: every round waits for its
slowest selected user. The standard alternative is asynchronous
aggregation (FedAsync-style): each device trains continuously against
whatever global version it last pulled, and the server mixes each
arriving update immediately with a staleness-discounted weight::

    M_G <- (1 - alpha) * M_G + alpha * M_q,
    alpha = mixing_rate / (1 + staleness)^staleness_exponent

where ``staleness`` counts how many server versions elapsed since the
device pulled.

:class:`SemiAsyncTrainer` simulates this with a discrete-event loop on
the same substrates as the synchronous trainer: devices compute in
parallel at ``f_max`` (Eq. 4 delays), uploads serialize on the TDMA
channel FIFO (Eqs. 6-8), and the simulated clock and energy ledger use
the same cost model — so synchronous-vs-asynchronous comparisons are
apples to apples. The bench ``benchmarks/bench_ext_async.py`` runs
that comparison.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, TrainingError
from repro.fl.client import LocalTrainer
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import FederatedServer

__all__ = ["SemiAsyncConfig", "SemiAsyncTrainer"]


@dataclass
class SemiAsyncConfig:
    """Knobs of one semi-asynchronous training run.

    Attributes:
        max_updates: server aggregations to apply before stopping.
        bandwidth_hz: uplink resource blocks ``Z``.
        learning_rate: local GD learning rate.
        local_steps: local GD steps per update.
        mixing_rate: base mixing weight ``alpha_0`` in ``(0, 1]``.
        staleness_exponent: polynomial staleness discount ``a >= 0``
            (0 disables staleness discounting).
        eval_every: evaluate after every this many server updates.
        deadline_s: optional simulated-time budget.
    """

    max_updates: int = 300
    bandwidth_hz: float = 2e6
    learning_rate: float = 0.1
    local_steps: int = 1
    mixing_rate: float = 0.6
    staleness_exponent: float = 0.5
    eval_every: int = 1
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_updates <= 0:
            raise ConfigurationError(
                f"max_updates must be positive, got {self.max_updates}"
            )
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(
                f"bandwidth_hz must be positive, got {self.bandwidth_hz}"
            )
        if not 0.0 < self.mixing_rate <= 1.0:
            raise ConfigurationError(
                f"mixing_rate must be in (0, 1], got {self.mixing_rate}"
            )
        if self.staleness_exponent < 0:
            raise ConfigurationError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )
        if self.eval_every <= 0:
            raise ConfigurationError(
                f"eval_every must be positive, got {self.eval_every}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive when set, got {self.deadline_s}"
            )

    def staleness_weight(self, staleness: int) -> float:
        """The effective mixing weight for an update of ``staleness``."""
        if staleness < 0:
            raise ConfigurationError(
                f"staleness must be non-negative, got {staleness}"
            )
        return self.mixing_rate / (1.0 + staleness) ** self.staleness_exponent


class SemiAsyncTrainer:
    """Event-driven semi-asynchronous FL over the TDMA uplink.

    Args:
        server: the FLCC (global model + test set + payload size).
        devices: the user population; every device trains continuously.
        config: run configuration.
        label: history label.
    """

    def __init__(
        self,
        server: FederatedServer,
        devices: Sequence[UserDevice],
        config: Optional[SemiAsyncConfig] = None,
        label: str = "semi-async",
    ) -> None:
        if not devices:
            raise TrainingError("cannot train with an empty device population")
        self.server = server
        self.devices = list(devices)
        self.config = config or SemiAsyncConfig()
        self.label = label
        self.local_trainer = LocalTrainer(
            learning_rate=self.config.learning_rate,
            local_steps=self.config.local_steps,
        )
        self._scratch = server.model.clone()

    def run(self) -> TrainingHistory:
        """Execute the event loop; one history record per aggregation.

        The record's ``round_index`` is the server-update index, its
        ``selected_ids`` the single uploading device, its
        ``round_delay`` the inter-aggregation gap, and ``slack`` the
        time the update waited for the channel.
        """
        config = self.config
        history = TrainingHistory(label=self.label)
        payload = self.server.payload_bits

        # Event queue of (time, tiebreak, device_index, pulled_version).
        # A "compute done" event enqueues the device on the channel.
        counter = itertools.count()
        events = []
        for index, device in enumerate(self.devices):
            finish = device.compute_delay()
            heapq.heappush(events, (finish, next(counter), index, 0))

        channel_free_at = 0.0
        server_version = 0
        previous_aggregation_time = 0.0
        cumulative_energy = 0.0

        while events and server_version < config.max_updates:
            compute_done, _, index, pulled_version = heapq.heappop(events)
            device = self.devices[index]

            upload_start = max(compute_done, channel_free_at)
            upload_delay = device.upload_delay(payload, config.bandwidth_hz)
            upload_end = upload_start + upload_delay
            channel_free_at = upload_end
            wait = upload_start - compute_done

            # Local training against the version the device pulled.
            # (The parameters it pulled are approximated by the current
            # global model just before mixing; staleness still drives
            # the weight, which is the dominant effect.)
            self._scratch.set_flat_params(self.server.broadcast())
            train_loss = self.local_trainer.train(self._scratch, device.dataset)

            staleness = server_version - pulled_version
            weight = config.staleness_weight(staleness)
            mixed = (1.0 - weight) * self.server.model.get_flat_params() + (
                weight * self._scratch.get_flat_params()
            )
            self.server.model.set_flat_params(mixed)
            server_version += 1

            compute_energy = device.compute_energy()
            upload_energy = device.upload_energy(payload, config.bandwidth_hz)
            cumulative_energy += compute_energy + upload_energy

            should_eval = (
                server_version % config.eval_every == 0
                or server_version == config.max_updates
            )
            test_loss = test_accuracy = None
            if should_eval and self.server.test_dataset is not None:
                test_loss, test_accuracy = self.server.evaluate()

            history.append(
                RoundRecord(
                    round_index=server_version,
                    selected_ids=(device.device_id,),
                    frequencies={device.device_id: device.cpu.f_max},
                    round_delay=upload_end - previous_aggregation_time,
                    round_energy=compute_energy + upload_energy,
                    compute_energy=compute_energy,
                    upload_energy=upload_energy,
                    slack=wait,
                    cumulative_time=upload_end,
                    cumulative_energy=cumulative_energy,
                    train_loss=train_loss,
                    test_accuracy=test_accuracy,
                    test_loss=test_loss,
                )
            )
            previous_aggregation_time = upload_end

            if config.deadline_s is not None and upload_end >= config.deadline_s:
                break

            # The device pulls the fresh version and starts over.
            next_finish = upload_end + device.compute_delay()
            heapq.heappush(
                events, (next_finish, next(counter), index, server_version)
            )
        return history
