"""The on-disk campaign manifest: spec copy + per-run status files.

Layout under the campaign directory::

    <dir>/spec.json                  # the governing CampaignSpec
    <dir>/runs/<run_id>/status.json  # {"status", "attempts", "detail"}
    <dir>/runs/<run_id>/trace.jsonl       # the run's event trace
    <dir>/runs/<run_id>/checkpoint.json   # latest trainer checkpoint
    <dir>/runs/<run_id>/history.json      # TrainingHistory (run done)
    <dir>/runs/<run_id>/stats.json        # RunStats (run done)
    <dir>/aggregate.json             # campaign-level analytics

Every status write is atomic (tmp + ``os.replace``), so a campaign
killed at any instant leaves a readable manifest: ``--resume`` skips
runs whose status is ``done`` and re-executes the rest from their
checkpoints. A missing ``status.json`` *is* the pending state — no
initialization pass is needed, and a half-created run directory is
indistinguishable from an untouched one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.errors import ConfigurationError, SerializationError

__all__ = [
    "STATUS_PENDING",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_FAILED",
    "RunStatus",
    "CampaignManifest",
    "atomic_write_text",
]

STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class RunStatus:
    """One run's manifest entry.

    Attributes:
        run_id: the run this status belongs to.
        status: one of ``pending``/``running``/``done``/``failed``.
        attempts: how many times the run has been launched.
        detail: free-form note (the failure message for ``failed``,
            the last attempt's death for a retrying ``running``).
        started_at: Unix timestamp of the latest launch (``None`` when
            never launched, or written by an older pool version).
        finished_at: Unix timestamp of the terminal transition
            (``done``/``failed``); ``None`` while in flight.
    """

    run_id: str
    status: str = STATUS_PENDING
    attempts: int = 0
    detail: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def elapsed(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds from launch to finish (or to ``now`` while running).

        Returns ``None`` when no launch timestamp was recorded. The
        caller supplies ``now`` (wall-clock reads stay in the caller's
        jurisdiction).
        """
        if self.started_at is None:
            return None
        if self.finished_at is not None:
            return max(0.0, self.finished_at - self.started_at)
        if now is None:
            return None
        return max(0.0, now - self.started_at)


class CampaignManifest:
    """Tracks one campaign directory's spec and per-run statuses.

    Create a fresh manifest with :meth:`create` (writes ``spec.json``)
    or attach to an existing one with :meth:`open` (loads it); both
    processes then agree on the run matrix because the spec is the
    single source of truth.
    """

    SPEC_FILE = "spec.json"
    AGGREGATE_FILE = "aggregate.json"

    def __init__(self, root: str, spec: CampaignSpec) -> None:
        self.root = os.path.abspath(root)
        self.spec = spec
        self.runs: Tuple[RunSpec, ...] = spec.expand()
        seen = set()
        for run in self.runs:
            if run.run_id in seen:
                raise ConfigurationError(
                    f"campaign expands to duplicate run id {run.run_id!r}"
                )
            seen.add(run.run_id)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str, spec: CampaignSpec) -> CampaignManifest:
        """Initialize ``root`` as a campaign directory for ``spec``.

        Refuses a directory that already carries a *different* spec —
        resuming under changed parameters would silently mix matrices.
        """
        manifest = cls(root, spec)
        spec_path = os.path.join(manifest.root, cls.SPEC_FILE)
        if os.path.exists(spec_path):
            existing = CampaignSpec.load(spec_path)
            if existing.to_dict() != spec.to_dict():
                raise ConfigurationError(
                    f"campaign directory {root} already holds a different "
                    "spec; use a fresh directory or the original spec"
                )
        os.makedirs(manifest.root, exist_ok=True)
        atomic_write_text(spec_path, spec.to_json())
        return manifest

    @classmethod
    def open(cls, root: str) -> CampaignManifest:
        """Attach to an existing campaign directory."""
        spec_path = os.path.join(os.path.abspath(root), cls.SPEC_FILE)
        if not os.path.exists(spec_path):
            raise ConfigurationError(
                f"{root} is not a campaign directory (no {cls.SPEC_FILE})"
            )
        return cls(root, CampaignSpec.load(spec_path))

    # ------------------------------------------------------------------
    def run_dir(self, run_id: str) -> str:
        """The directory holding one run's artifacts."""
        return os.path.join(self.root, "runs", run_id)

    def aggregate_path(self) -> str:
        """Where :mod:`repro.campaign.aggregate` writes its document."""
        return os.path.join(self.root, self.AGGREGATE_FILE)

    def _status_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), "status.json")

    def read_status(self, run_id: str) -> RunStatus:
        """One run's current status (absent file = pending)."""
        path = self._status_path(run_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return RunStatus(run_id=run_id)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"status file {path} is not valid JSON: {exc}"
            ) from exc
        status = payload.get("status", STATUS_PENDING)
        if status not in _STATUSES:
            raise SerializationError(
                f"status file {path} carries unknown status {status!r}"
            )
        started_at = payload.get("started_at")
        finished_at = payload.get("finished_at")
        return RunStatus(
            run_id=run_id,
            status=status,
            attempts=int(payload.get("attempts", 0)),
            detail=str(payload.get("detail", "")),
            started_at=None if started_at is None else float(started_at),
            finished_at=None if finished_at is None else float(finished_at),
        )

    def write_status(
        self,
        run_id: str,
        status: str,
        attempts: int,
        detail: str = "",
        started_at: Optional[float] = None,
        finished_at: Optional[float] = None,
    ) -> None:
        """Atomically record one run's status transition.

        Timestamps are supplied by the caller (the pool) rather than
        read here; ``None`` values are omitted from the file, keeping
        old status files and new readers mutually compatible.
        """
        if status not in _STATUSES:
            raise ConfigurationError(
                f"unknown status {status!r}; expected one of {_STATUSES}"
            )
        payload = {
            "run_id": run_id,
            "status": status,
            "attempts": int(attempts),
            "detail": detail,
        }
        if started_at is not None:
            payload["started_at"] = float(started_at)
        if finished_at is not None:
            payload["finished_at"] = float(finished_at)
        atomic_write_text(
            self._status_path(run_id),
            json.dumps(payload, sort_keys=True) + "\n",
        )

    def statuses(self) -> Dict[str, RunStatus]:
        """Every run's status, in expansion order."""
        return {run.run_id: self.read_status(run.run_id) for run in self.runs}

    def pending_runs(self, resume: bool = False) -> List[RunSpec]:
        """The runs still to execute, in expansion order.

        Without ``resume`` every non-pending run is an error (the
        directory was already used). With ``resume``, ``done`` runs
        are skipped and everything else — ``pending``, ``failed``, and
        ``running`` entries stranded by a killed pool — is (re)run
        from its checkpoint.
        """
        remaining: List[RunSpec] = []
        for run in self.runs:
            status = self.read_status(run.run_id)
            if status.status == STATUS_DONE:
                if not resume:
                    raise ConfigurationError(
                        f"run {run.run_id} is already done in {self.root}; "
                        "pass resume to skip completed runs"
                    )
                continue
            if status.status != STATUS_PENDING and not resume:
                raise ConfigurationError(
                    f"run {run.run_id} is {status.status} in {self.root}; "
                    "pass resume to continue an interrupted campaign"
                )
            remaining.append(run)
        return remaining
