"""Executing one campaign run inside a worker (or test) process.

:func:`execute_run` is the unit of work the pool farms out: build the
run's environment from its :class:`~repro.campaign.spec.RunSpec`,
train with tracing and checkpointing on, and leave ``history.json`` +
``stats.json`` in the run directory. With ``resume=True`` it first
tries the on-disk checkpoint (checksummed; a corrupt one is discarded
with a warning), then falls back to deterministic trace replay
(:mod:`repro.campaign.resume`), and only then starts fresh — in every
case the finished artifacts are bitwise identical to an uninterrupted
run's, which is what the campaign-level aggregate compares on.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.campaign.manifest import atomic_write_text
from repro.campaign.resume import (
    load_trace_for_resume,
    reconstruct_checkpoint,
    resumable_round,
    truncate_trace,
)
from repro.campaign.spec import RunSpec
from repro.errors import SerializationError
from repro.experiments.runner import build_environment, build_trainer
from repro.fl.checkpoint import TrainerCheckpoint, load_checkpoint
from repro.fl.execution import ExecutionBackend, create_backend
from repro.obs import JsonlTraceSink, RunObserver, configure_logging

__all__ = ["execute_run"]

TRACE_FILE = "trace.jsonl"
CHECKPOINT_FILE = "checkpoint.json"
HISTORY_FILE = "history.json"
STATS_FILE = "stats.json"


def _resume_checkpoint(
    run: RunSpec, trace_path: str, checkpoint_path: str, make_replay_trainer
) -> Optional[TrainerCheckpoint]:
    """Pick the state to resume from: checkpoint, replay, or fresh.

    The trace bounds what is trustworthy: a checkpoint written *after*
    the last certainly-complete round predates that round's stop
    checks and could overrun an early stop, so it is discarded in
    favour of replay (see :mod:`repro.campaign.resume`).
    """
    trace = load_trace_for_resume(trace_path)
    if trace is None:
        return None
    safe_round = resumable_round(trace)
    if safe_round < 1:
        return None
    checkpoint = None
    if os.path.exists(checkpoint_path):
        try:
            checkpoint = load_checkpoint(checkpoint_path)
        except SerializationError as exc:
            warnings.warn(
                f"run {run.run_id}: checkpoint is unreadable ({exc}); "
                "falling back to trace reconstruction",
                RuntimeWarning,
                stacklevel=2,
            )
    if checkpoint is not None and checkpoint.round_index > safe_round:
        checkpoint = None
    if checkpoint is None:
        try:
            checkpoint = reconstruct_checkpoint(trace, make_replay_trainer)
        except SerializationError as exc:
            warnings.warn(
                f"run {run.run_id}: trace reconstruction failed ({exc}); "
                "restarting the run from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
    return checkpoint


def execute_run(
    run: RunSpec,
    run_dir: str,
    resume: bool = False,
    log_level: Optional[str] = None,
    spans: bool = True,
    parent_span_id: str = "",
) -> dict:
    """Execute one campaign run to completion in this process.

    Args:
        run: the fully resolved run spec.
        run_dir: the run's artifact directory (created if missing).
        resume: continue from the run directory's checkpoint/trace
            instead of starting over.
        log_level: when given, (re)configure the ``repro`` logger at
            this level — pool workers pass the parent's level through
            so worker-side warnings reach stderr.
        spans: emit hierarchical span events into the run trace
            (``False`` compiles them to no-ops; the artifacts stay
            bitwise identical either way).
        parent_span_id: span id of the enclosing campaign-side span,
            recorded as the run span's parent for cross-process trees.
    """
    if log_level is not None:
        configure_logging(log_level)
    os.makedirs(run_dir, exist_ok=True)
    trace_path = os.path.join(run_dir, TRACE_FILE)
    checkpoint_path = os.path.join(run_dir, CHECKPOINT_FILE)
    settings = run.build_settings()
    environment = build_environment(settings, run.iid)
    config_overrides = dict(run.trainer_overrides)
    config_overrides["checkpoint_every"] = run.checkpoint_every

    def make_replay_trainer():
        # Replay runs serial with tracing off: backends are bitwise
        # identical, so serial replay reconstructs pooled runs too.
        return build_trainer(
            run.strategy,
            settings,
            environment,
            config_overrides=config_overrides,
            faults=run.build_fault_plan(),
        )

    checkpoint = None
    if resume:
        checkpoint = _resume_checkpoint(
            run, trace_path, checkpoint_path, make_replay_trainer
        )
    if checkpoint is not None:
        truncate_trace(trace_path, checkpoint.round_index)
        handle = open(trace_path, "a", encoding="utf-8")
    else:
        handle = open(trace_path, "w", encoding="utf-8")

    backend: Optional[ExecutionBackend] = None
    observer = RunObserver(
        sink=JsonlTraceSink(handle),
        spans_enabled=spans,
        parent_span_id=parent_span_id,
    )
    try:
        if run.backend != "serial":
            backend = create_backend(
                run.backend, workers=run.workers, log_level=log_level
            )
        trainer = build_trainer(
            run.strategy,
            settings,
            environment,
            config_overrides=config_overrides,
            backend=backend,
            observer=observer,
            faults=run.build_fault_plan(),
            checkpoint_path=checkpoint_path,
        )
        history = trainer.run(resume_from=checkpoint)
    finally:
        observer.close()
        handle.close()
        if backend is not None:
            backend.close()

    from repro.obs.analysis import compute_run_stats, load_trace, split_runs

    segments = split_runs(load_trace(trace_path).events)
    stats = compute_run_stats(segments[-1], source=run.run_id)
    atomic_write_text(
        os.path.join(run_dir, HISTORY_FILE), history.to_json() + "\n"
    )
    atomic_write_text(os.path.join(run_dir, STATS_FILE), stats.to_json() + "\n")
    return {
        "run_id": run.run_id,
        "rounds": len(history),
        "resumed_from": 0 if checkpoint is None else checkpoint.round_index,
    }
