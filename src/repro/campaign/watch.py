"""Live campaign monitoring: ``python -m repro campaign watch DIR``.

The watcher is a strictly *read-only* sibling of the pool: it tails
the manifest's atomic ``status.json`` files plus each run's
``trace.jsonl`` and renders per-run progress (rounds done / planned),
attempt counts with the last failure note, elapsed time, round
throughput, and an ETA — without opening anything for writing, taking
any lock, or otherwise perturbing the workers. Every file it reads is
designed for exactly this: statuses are written atomically, and a
trace's torn final line (a worker mid-write) parses as "ignore the
tail".

``--once`` renders a single frame and exits (the CI smoke mode);
otherwise it refreshes every ``--interval`` seconds until every run
reaches a terminal status.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_RUNNING,
    CampaignManifest,
    RunStatus,
)

__all__ = [
    "RunProgress",
    "CampaignSnapshot",
    "scan_trace_progress",
    "snapshot_campaign",
    "render_snapshot",
    "watch",
]

_TERMINAL = (STATUS_DONE, STATUS_FAILED)


@dataclass(frozen=True)
class RunProgress:
    """One run's live state, as reconstructible from disk alone.

    Attributes:
        run_id: the run.
        status: manifest status (``pending``/``running``/...).
        attempts: launches so far.
        detail: the manifest's note (last failure while retrying).
        rounds_done: completed rounds counted from the run's trace
            (``timeline`` events — a round counts once its schedule
            committed).
        rounds_planned: the spec's round budget for the run.
        elapsed_s: seconds since launch (running) or launch-to-finish
            (terminal); ``None`` before the first launch or for status
            files written by pre-timestamp pools.
        throughput_rps: completed rounds per second of elapsed time
            (``None`` without both ingredients).
        eta_s: estimated seconds until the run finishes at the current
            throughput (``None`` when unknown; 0 for terminal runs).
    """

    run_id: str
    status: str
    attempts: int
    detail: str
    rounds_done: int
    rounds_planned: int
    elapsed_s: Optional[float]
    throughput_rps: Optional[float]
    eta_s: Optional[float]


@dataclass(frozen=True)
class CampaignSnapshot:
    """One rendered frame's worth of campaign state.

    Attributes:
        name: the campaign spec's name.
        root: the campaign directory.
        runs: per-run progress, in expansion order.
        total_attempts: launches summed over runs (retries included).
    """

    name: str
    root: str
    runs: Tuple[RunProgress, ...]
    total_attempts: int

    @property
    def counts(self) -> Dict[str, int]:
        """Runs per status name."""
        tally: Dict[str, int] = {}
        for run in self.runs:
            tally[run.status] = tally.get(run.status, 0) + 1
        return tally

    @property
    def finished(self) -> bool:
        """True once every run is ``done`` or ``failed``."""
        return all(run.status in _TERMINAL for run in self.runs)


def scan_trace_progress(path: str) -> int:
    """Completed rounds recorded in a trace file (0 when absent).

    Counts ``timeline`` events — one per round whose TDMA schedule
    committed — tolerating the torn tail and the duplicate round-0
    telemetry a killed-and-resumed worker leaves behind (resume
    truncates before re-emitting, so surviving lines never double
    count a round; the max index is what matters).
    """
    rounds = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail mid-write
                if payload.get("event") == "timeline":
                    rounds = max(rounds, int(payload.get("round_index", 0)))
    except OSError:
        return 0
    return rounds


def _progress_for(
    run_spec,
    status: RunStatus,
    run_dir: str,
    now: float,
) -> RunProgress:
    rounds_planned = run_spec.build_settings().rounds
    rounds_done = scan_trace_progress(os.path.join(run_dir, "trace.jsonl"))
    elapsed = status.elapsed(
        now=None if status.status in _TERMINAL else now
    )
    throughput = None
    eta = None
    if status.status in _TERMINAL:
        eta = 0.0
    if elapsed and elapsed > 0.0 and rounds_done > 0:
        throughput = rounds_done / elapsed
        if status.status == STATUS_RUNNING and throughput > 0.0:
            eta = max(0, rounds_planned - rounds_done) / throughput
    return RunProgress(
        run_id=run_spec.run_id,
        status=status.status,
        attempts=status.attempts,
        detail=status.detail,
        rounds_done=min(rounds_done, rounds_planned),
        rounds_planned=rounds_planned,
        elapsed_s=elapsed,
        throughput_rps=throughput,
        eta_s=eta,
    )


def snapshot_campaign(
    manifest: CampaignManifest, now: float
) -> CampaignSnapshot:
    """Read one consistent-enough frame of the campaign's state.

    Args:
        manifest: the campaign to inspect (opened read-only).
        now: the caller's wall clock, for elapsed/ETA of running runs.
    """
    runs: List[RunProgress] = []
    for run_spec in manifest.runs:
        status = manifest.read_status(run_spec.run_id)
        runs.append(
            _progress_for(
                run_spec, status, manifest.run_dir(run_spec.run_id), now
            )
        )
    return CampaignSnapshot(
        name=manifest.spec.name,
        root=manifest.root,
        runs=tuple(runs),
        total_attempts=sum(run.attempts for run in runs),
    )


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "—"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rest:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"


def _bar(done: int, planned: int, width: int = 20) -> str:
    if planned <= 0:
        return " " * width
    filled = int(width * min(done, planned) / planned)
    return "#" * filled + "." * (width - filled)


def render_snapshot(snapshot: CampaignSnapshot) -> str:
    """Render one frame as plain text (deterministic given the state)."""
    counts = snapshot.counts
    summary = "  ".join(
        f"{name}={counts[name]}"
        for name in (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE,
                     STATUS_FAILED)
        if counts.get(name)
    ) or "no runs"
    lines = [
        f"campaign {snapshot.name} — {snapshot.root}",
        f"runs: {summary}  attempts={snapshot.total_attempts}",
        "",
        f"{'run':32s} {'status':8s} {'progress':26s} "
        f"{'att':>3s} {'elapsed':>8s} {'r/s':>7s} {'eta':>8s}  note",
    ]
    for run in snapshot.runs:
        progress = (
            f"[{_bar(run.rounds_done, run.rounds_planned)}] "
            f"{run.rounds_done}/{run.rounds_planned}"
        )
        rate = (
            f"{run.throughput_rps:.2f}"
            if run.throughput_rps is not None
            else "—"
        )
        lines.append(
            f"{run.run_id:32s} {run.status:8s} {progress:26s} "
            f"{run.attempts:3d} {_fmt_duration(run.elapsed_s):>8s} "
            f"{rate:>7s} {_fmt_duration(run.eta_s):>8s}  "
            f"{run.detail or '—'}"
        )
    return "\n".join(lines)


def watch(
    campaign_dir: str,
    interval_s: float = 2.0,
    once: bool = False,
    stream=None,
) -> int:
    """Monitor a campaign directory until it finishes (or forever).

    Args:
        campaign_dir: the directory holding ``spec.json``.
        interval_s: refresh cadence for the live mode.
        once: render a single frame and return immediately.
        stream: output stream (default ``sys.stdout``).

    Returns:
        0 when the campaign is finished or ``once`` was requested
        while it is still in flight; interrupting with Ctrl-C also
        returns 0 (watching is not a gate).
    """
    out = stream if stream is not None else sys.stdout
    manifest = CampaignManifest.open(campaign_dir)
    try:
        while True:
            now = time.time()  # repro: allow[REP004] monitor elapsed/ETA are operational metadata; simulation untouched
            snapshot = snapshot_campaign(manifest, now)
            frame = render_snapshot(snapshot)
            if not once and out.isatty():
                out.write("\x1b[2J\x1b[H")
            out.write(frame + "\n")
            out.flush()
            if once or snapshot.finished:
                return 0
            time.sleep(interval_s)  # repro: allow[REP004] poll cadence of the read-only monitor
    except KeyboardInterrupt:
        return 0
