"""Campaign-level analytics: aggregate and compare run stats.

The aggregate document collects every run's
:class:`~repro.obs.analysis.RunStats` snapshot (in expansion order)
plus per-strategy mean/std summaries, and is written with sorted keys
and no volatile fields — no wall-clock timestamps, no attempt counts,
no absolute paths. That makes it *byte-comparable*: a campaign killed
and resumed produces exactly the same ``aggregate.json`` as an
uninterrupted one, which is the crash-recovery acceptance check CI
enforces with ``cmp``.

Comparison reuses the per-run :func:`repro.obs.analysis.compare_stats`
machinery, so campaign regression gates get the same thresholded
energy/time/accuracy drift verdicts as single-run snapshots.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import mean_std
from repro.campaign.manifest import (
    STATUS_DONE,
    CampaignManifest,
    atomic_write_text,
)
from repro.campaign.runner import STATS_FILE
from repro.errors import ConfigurationError, SerializationError
from repro.obs.analysis import CompareThresholds, RunStats, compare_stats

__all__ = [
    "AGGREGATE_SCHEMA",
    "aggregate_campaign",
    "write_aggregate",
    "load_aggregate",
    "compare_campaigns",
]

AGGREGATE_SCHEMA = "repro.campaign-aggregate"

_SUMMARY_METRICS = (
    "final_accuracy",
    "best_accuracy",
    "total_time",
    "total_energy",
    "num_rounds",
)


def _stats_metric(stats: RunStats, metric: str) -> float:
    if metric == "final_accuracy":
        values = [
            r.test_accuracy
            for r in stats.rounds
            if r.test_accuracy is not None
        ]
        return float(values[-1]) if values else 0.0
    if metric == "best_accuracy":
        values = [
            r.test_accuracy
            for r in stats.rounds
            if r.test_accuracy is not None
        ]
        return float(max(values)) if values else 0.0
    return float(getattr(stats, metric))


def aggregate_campaign(manifest: CampaignManifest) -> dict:
    """Build the campaign's aggregate document from its run stats.

    Every run must be ``done``; a campaign with failed or unfinished
    runs has no aggregate (resume it first).
    """
    runs: List[dict] = []
    by_strategy: Dict[str, List[RunStats]] = {}
    for run in manifest.runs:
        status = manifest.read_status(run.run_id)
        if status.status != STATUS_DONE:
            raise ConfigurationError(
                f"run {run.run_id} is {status.status}; aggregate needs "
                "every run done (resume the campaign first)"
            )
        stats_path = os.path.join(manifest.run_dir(run.run_id), STATS_FILE)
        try:
            with open(stats_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError as exc:
            raise SerializationError(
                f"run {run.run_id} is done but has no {STATS_FILE}"
            ) from exc
        stats = RunStats.from_dict(payload)
        runs.append(
            {
                "run_id": run.run_id,
                "seed": run.seed,
                "strategy": run.strategy,
                "stats": stats.to_dict(),
            }
        )
        by_strategy.setdefault(run.strategy, []).append(stats)
    summary = {
        strategy: {
            metric: list(
                mean_std(
                    [_stats_metric(stats, metric) for stats in stats_list]
                )
            )
            for metric in _SUMMARY_METRICS
        }
        for strategy, stats_list in sorted(by_strategy.items())
    }
    return {
        "schema": AGGREGATE_SCHEMA,
        "name": manifest.spec.name,
        "runs": runs,
        "summary": summary,
    }


def write_aggregate(manifest: CampaignManifest) -> str:
    """Write the aggregate document; returns its path."""
    path = manifest.aggregate_path()
    atomic_write_text(
        path,
        json.dumps(aggregate_campaign(manifest), sort_keys=True, indent=2)
        + "\n",
    )
    return path


def load_aggregate(path: str) -> dict:
    """Load and schema-check an aggregate document."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != (
        AGGREGATE_SCHEMA
    ):
        raise SerializationError(
            f"{path} is not a {AGGREGATE_SCHEMA} document"
        )
    return payload


def compare_campaigns(
    base: dict,
    other: dict,
    thresholds: Optional[CompareThresholds] = None,
) -> Tuple[List, bool]:
    """Compare two aggregates run by run (matched on run id).

    Returns ``(comparisons, regressed)`` where ``comparisons`` are the
    per-run :class:`~repro.obs.analysis.RunComparison` objects for
    runs present in both documents, and ``regressed`` is True when any
    shared run regressed past the thresholds or either side has runs
    the other lacks.
    """
    base_runs = {entry["run_id"]: entry for entry in base.get("runs", [])}
    other_runs = {entry["run_id"]: entry for entry in other.get("runs", [])}
    comparisons = []
    regressed = set(base_runs) != set(other_runs)
    for run_id in base_runs:
        if run_id not in other_runs:
            continue
        comparison = compare_stats(
            RunStats.from_dict(base_runs[run_id]["stats"]),
            RunStats.from_dict(other_runs[run_id]["stats"]),
            thresholds=thresholds,
        )
        comparisons.append(comparison)
        if not comparison.ok:
            regressed = True
    return comparisons, bool(regressed)
