"""Declarative campaign specifications.

A :class:`CampaignSpec` is pure data (like
:class:`~repro.faults.FaultPlan`): seeds × strategies × config
overrides × fault plans, JSON round-trippable, expanding into a
deterministic :class:`RunSpec` matrix. Two processes loading the same
spec file always agree on the run ids, their order, and every run's
exact configuration — the property the resumable manifest
(:mod:`repro.campaign.manifest`) is built on.

Spec JSON shape::

    {"name": "smoke",
     "profile": "quick",            # quick | default | paper
     "iid": true,
     "seeds": [0, 1],
     "strategies": ["helcfl", "classic"],
     "overrides": [{"settings": {"num_users": 10}, "trainer": {}}],
     "fault_plans": [null],
     "backend": "serial",           # per-run execution backend
     "workers": null,               # backend pool size
     "checkpoint_every": 1,
     "pool_workers": 2,             # campaign worker processes
     "max_retries": 2}

Every list is a matrix axis; the expansion is their ordered product
(seeds outermost, fault plans innermost).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.settings import ExperimentSettings
from repro.faults import FaultPlan
from repro.fl.execution import BACKEND_NAMES
from repro.fl.trainer import TrainerConfig

__all__ = ["CampaignSpec", "RunSpec", "settings_to_overrides"]

_PROFILES = ("quick", "default", "paper")
_SETTINGS_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ExperimentSettings)
)
_TRAINER_FIELDS = frozenset(f.name for f in dataclasses.fields(TrainerConfig))


def _base_settings(profile: str) -> ExperimentSettings:
    if profile == "quick":
        return ExperimentSettings.quick()
    if profile == "paper":
        return ExperimentSettings.paper_scale()
    return ExperimentSettings()


def settings_to_overrides(
    settings: ExperimentSettings, profile: str = "default"
) -> dict:
    """Express ``settings`` as a JSON-safe diff against a profile base.

    The inverse of :meth:`RunSpec.build_settings` (minus the seed,
    which is a campaign matrix axis, not an override): applying the
    returned dict to the profile's baseline reproduces ``settings``.
    Tuples become lists so the diff round-trips through spec JSON
    unchanged — the byte-identity contract needs the in-process and
    reloaded-from-disk spec to expand identically.
    """
    if profile not in _PROFILES:
        raise ConfigurationError(
            f"profile must be one of {_PROFILES}, got {profile!r}"
        )
    base = _base_settings(profile)
    overrides: Dict[str, object] = {}
    for spec_field in dataclasses.fields(ExperimentSettings):
        if spec_field.name == "seed":
            continue
        value = getattr(settings, spec_field.name)
        if value != getattr(base, spec_field.name):
            overrides[spec_field.name] = (
                list(value) if isinstance(value, tuple) else value
            )
    return overrides


def _check_override(override: dict, position: int) -> Dict[str, dict]:
    if not isinstance(override, dict):
        raise ConfigurationError(
            f"overrides[{position}] must be an object, got "
            f"{type(override).__name__}"
        )
    unknown = set(override) - {"settings", "trainer"}
    if unknown:
        raise ConfigurationError(
            f"overrides[{position}] has unknown sections {sorted(unknown)}; "
            "expected 'settings' and/or 'trainer'"
        )
    settings = dict(override.get("settings", {}))
    trainer = dict(override.get("trainer", {}))
    bad_settings = set(settings) - _SETTINGS_FIELDS
    if bad_settings:
        raise ConfigurationError(
            f"overrides[{position}].settings has unknown fields "
            f"{sorted(bad_settings)}"
        )
    bad_trainer = set(trainer) - _TRAINER_FIELDS
    if bad_trainer:
        raise ConfigurationError(
            f"overrides[{position}].trainer has unknown fields "
            f"{sorted(bad_trainer)}"
        )
    return {"settings": settings, "trainer": trainer}


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved run of a campaign's matrix.

    Attributes:
        run_id: deterministic id, unique within the campaign —
            ``s<seed>-<strategy>-c<override index>-f<fault index>``.
        seed: the run's experiment seed.
        strategy: trainer strategy name.
        iid: partition regime.
        profile: settings baseline (``quick``/``default``/``paper``).
        settings_overrides: field overrides applied to the baseline.
        trainer_overrides: keyword overrides for the trainer config.
        fault_plan: the run's fault plan payload (``FaultPlan.to_dict``
            shape) or None.
        backend: per-run execution backend name.
        workers: backend pool size (None = backend default).
        checkpoint_every: rounds between checkpoint writes.
    """

    run_id: str
    seed: int
    strategy: str
    iid: bool
    profile: str
    settings_overrides: dict = field(default_factory=dict)
    trainer_overrides: dict = field(default_factory=dict)
    fault_plan: Optional[dict] = None
    backend: str = "serial"
    workers: Optional[int] = None
    checkpoint_every: int = 1

    def build_settings(self) -> ExperimentSettings:
        """The run's :class:`ExperimentSettings` (seed applied last)."""
        overrides = dict(self.settings_overrides)
        if "image_shape" in overrides:
            overrides["image_shape"] = tuple(overrides["image_shape"])
        overrides["seed"] = self.seed
        return replace(_base_settings(self.profile), **overrides)

    def build_fault_plan(self) -> Optional[FaultPlan]:
        """The run's :class:`FaultPlan`, or None when faults are off."""
        if self.fault_plan is None:
            return None
        return FaultPlan.from_dict(self.fault_plan)

    def to_dict(self) -> dict:
        """JSON-ready form (used to ship runs to worker processes)."""
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "strategy": self.strategy,
            "iid": self.iid,
            "profile": self.profile,
            "settings_overrides": dict(self.settings_overrides),
            "trainer_overrides": dict(self.trainer_overrides),
            "fault_plan": self.fault_plan,
            "backend": self.backend,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RunSpec:
        """Rebuild a run spec from :meth:`to_dict` output."""
        return cls(
            run_id=str(payload["run_id"]),
            seed=int(payload["seed"]),
            strategy=str(payload["strategy"]),
            iid=bool(payload["iid"]),
            profile=str(payload["profile"]),
            settings_overrides=dict(payload.get("settings_overrides", {})),
            trainer_overrides=dict(payload.get("trainer_overrides", {})),
            fault_plan=payload.get("fault_plan"),
            backend=str(payload.get("backend", "serial")),
            workers=payload.get("workers"),
            checkpoint_every=int(payload.get("checkpoint_every", 1)),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative multi-run experiment campaign.

    Attributes:
        name: campaign label (also the aggregate's label).
        profile: settings baseline every run starts from.
        iid: partition regime for every run.
        seeds: experiment seeds (matrix axis).
        strategies: trainer strategy names (matrix axis; ``sl`` is not
            campaignable — its loop has no checkpoint support).
        overrides: config-override variants (matrix axis), each an
            object with optional ``settings`` and ``trainer`` sections.
        fault_plans: fault-plan payloads or None entries (matrix axis).
        backend: per-run execution backend name.
        workers: backend pool size (None = backend default).
        checkpoint_every: rounds between checkpoint writes in each run.
        pool_workers: campaign worker processes running runs in
            parallel.
        max_retries: times a dead/failed run is requeued before the
            campaign marks it permanently failed.
    """

    name: str
    profile: str = "quick"
    iid: bool = True
    seeds: Tuple[int, ...] = (0,)
    strategies: Tuple[str, ...] = ("helcfl",)
    overrides: Tuple[dict, ...] = ({},)
    fault_plans: Tuple[Optional[dict], ...] = (None,)
    backend: str = "serial"
    workers: Optional[int] = None
    checkpoint_every: int = 1
    pool_workers: int = 2
    max_retries: int = 2

    def __post_init__(self) -> None:
        from repro.experiments.runner import STRATEGY_NAMES

        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if self.profile not in _PROFILES:
            raise ConfigurationError(
                f"profile must be one of {_PROFILES}, got {self.profile!r}"
            )
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if not self.strategies:
            raise ConfigurationError("campaign needs at least one strategy")
        trainable = tuple(n for n in STRATEGY_NAMES if n != "sl")
        for strategy in self.strategies:
            if strategy not in trainable:
                raise ConfigurationError(
                    f"strategy {strategy!r} is not campaignable; expected "
                    f"one of {trainable}"
                )
        if not self.overrides:
            raise ConfigurationError(
                "campaign needs at least one override variant (use [{}] "
                "for none)"
            )
        if not self.fault_plans:
            raise ConfigurationError(
                "campaign needs at least one fault-plan entry (use [null] "
                "for none)"
            )
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"backend must be one of {BACKEND_NAMES}, got "
                f"{self.backend!r}"
            )
        if self.checkpoint_every <= 0:
            raise ConfigurationError(
                "checkpoint_every must be positive, got "
                f"{self.checkpoint_every}"
            )
        if self.pool_workers <= 0:
            raise ConfigurationError(
                f"pool_workers must be positive, got {self.pool_workers}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        for position, override in enumerate(self.overrides):
            _check_override(override, position)
        for position, payload in enumerate(self.fault_plans):
            if payload is not None:
                FaultPlan.from_dict(payload)

    def expand(self) -> Tuple[RunSpec, ...]:
        """The deterministic run matrix, seeds outermost.

        Expansion order (and hence manifest/aggregate order) is the
        ordered product seeds × strategies × overrides × fault_plans.
        """
        runs: List[RunSpec] = []
        for seed in self.seeds:
            for strategy in self.strategies:
                for override_index, override in enumerate(self.overrides):
                    checked = _check_override(override, override_index)
                    for fault_index, fault_plan in enumerate(
                        self.fault_plans
                    ):
                        runs.append(
                            RunSpec(
                                run_id=(
                                    f"s{seed}-{strategy}"
                                    f"-c{override_index}-f{fault_index}"
                                ),
                                seed=int(seed),
                                strategy=strategy,
                                iid=self.iid,
                                profile=self.profile,
                                settings_overrides=checked["settings"],
                                trainer_overrides=checked["trainer"],
                                fault_plan=fault_plan,
                                backend=self.backend,
                                workers=self.workers,
                                checkpoint_every=self.checkpoint_every,
                            )
                        )
        return tuple(runs)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "profile": self.profile,
            "iid": self.iid,
            "seeds": list(self.seeds),
            "strategies": list(self.strategies),
            "overrides": [dict(o) for o in self.overrides],
            "fault_plans": list(self.fault_plans),
            "backend": self.backend,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
            "pool_workers": self.pool_workers,
            "max_retries": self.max_retries,
        }

    def to_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> CampaignSpec:
        """Build a validated spec from parsed JSON."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"campaign spec must be an object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "name",
            "profile",
            "iid",
            "seeds",
            "strategies",
            "overrides",
            "fault_plans",
            "backend",
            "workers",
            "checkpoint_every",
            "pool_workers",
            "max_retries",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"campaign spec has unknown fields {sorted(unknown)}"
            )
        if "name" not in payload:
            raise ConfigurationError("campaign spec needs a 'name'")
        return cls(
            name=str(payload["name"]),
            profile=str(payload.get("profile", "quick")),
            iid=bool(payload.get("iid", True)),
            seeds=tuple(int(s) for s in payload.get("seeds", (0,))),
            strategies=tuple(payload.get("strategies", ("helcfl",))),
            overrides=tuple(payload.get("overrides", ({},))),
            fault_plans=tuple(payload.get("fault_plans", (None,))),
            backend=str(payload.get("backend", "serial")),
            workers=payload.get("workers"),
            checkpoint_every=int(payload.get("checkpoint_every", 1)),
            pool_workers=int(payload.get("pool_workers", 2)),
            max_retries=int(payload.get("max_retries", 2)),
        )

    @classmethod
    def load(cls, path: str) -> CampaignSpec:
        """Load and validate a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        """Write the spec as JSON (the manifest keeps a copy)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
