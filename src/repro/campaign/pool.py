"""The fault-tolerant local worker pool driving a campaign.

One ``multiprocessing.Process`` per run — deliberately *not* a
``ProcessPoolExecutor``, whose whole pool breaks permanently when a
single worker dies (``BrokenProcessPool``). Here a SIGKILLed, crashed,
or hung worker costs exactly one run one attempt: the parent observes
the exit code (or the liveness timeout), requeues the run with
``resume=True`` — so the retry continues from the dead worker's last
checkpoint instead of re-training from round one — and gives up only
after the spec's ``max_retries`` requeues, marking the run ``failed``
in the manifest while the rest of the campaign proceeds.

All scheduling state lives in the manifest's atomic status files, so
the pool itself is crash-safe too: kill the whole campaign process and
``--resume`` reconstructs the frontier from disk.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
import time
from collections import deque
from typing import Callable, Dict, Optional

from repro.campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RUNNING,
    CampaignManifest,
)
from repro.campaign.runner import execute_run
from repro.campaign.spec import RunSpec
from repro.errors import ConfigurationError

__all__ = ["CAMPAIGN_TRACE_FILE", "CampaignPool", "worker_main"]

_LOGGER = logging.getLogger("repro.campaign.pool")

CAMPAIGN_TRACE_FILE = "campaign-trace.jsonl"
"""Pool-side span trace, next to ``spec.json`` in the campaign dir."""


def worker_main(
    run_payload: dict,
    run_dir: str,
    resume: bool,
    log_level: Optional[str] = None,
    spans: bool = True,
    parent_span_id: str = "",
) -> None:
    """Process entry point: execute one run, exit 0 on success.

    Any exception prints its traceback to stderr and exits 1; the
    parent turns non-zero (and signal) exits into a retry or a
    ``failed`` manifest entry. The ``done`` status is written by the
    parent only after observing a clean exit, so a worker killed at
    the very last instant still counts as dead and is re-verified by
    a resumed attempt.

    ``log_level``, ``spans``, and ``parent_span_id`` are the parent's
    observability settings, carried across the process boundary so the
    worker logs at the requested level and its run span links back to
    the pool's attempt span.
    """
    try:
        execute_run(
            RunSpec.from_dict(run_payload),
            run_dir,
            resume=resume,
            log_level=log_level,
            spans=spans,
            parent_span_id=parent_span_id,
        )
    except Exception:  # pragma: no cover - exercised via subprocess
        import traceback

        traceback.print_exc()
        sys.exit(1)


class CampaignPool:
    """Farms a manifest's pending runs out across worker processes.

    Args:
        manifest: the campaign to drive.
        pool_workers: concurrent worker processes (default: the
            spec's ``pool_workers``).
        max_retries: requeues per run before giving up (default: the
            spec's ``max_retries``).
        run_timeout_s: optional wall-clock liveness bound per attempt;
            a worker alive past it is presumed hung, killed, and the
            run requeued. ``None`` (the default) trusts workers to
            finish or die.
        poll_interval_s: parent poll cadence, seconds.
        spawn_hook: optional callback ``(run, process, attempt)``
            invoked after each worker launch — the chaos-drill /
            test hook used to SIGKILL workers mid-run.
        log_level: when given, forwarded into every worker process so
            worker-side warnings reach stderr at the same level the
            parent logs at.
        spans: emit pool-side span events (the ``campaign`` span plus
            one span per launch attempt) into ``campaign-trace.jsonl``
            in the campaign directory, and enable span tracing inside
            workers; ``False`` disables both.
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        pool_workers: Optional[int] = None,
        max_retries: Optional[int] = None,
        run_timeout_s: Optional[float] = None,
        poll_interval_s: float = 0.05,
        spawn_hook: Optional[Callable] = None,
        log_level: Optional[str] = None,
        spans: bool = True,
    ) -> None:
        spec = manifest.spec
        self.manifest = manifest
        self.pool_workers = (
            spec.pool_workers if pool_workers is None else int(pool_workers)
        )
        self.max_retries = (
            spec.max_retries if max_retries is None else int(max_retries)
        )
        if self.pool_workers <= 0:
            raise ConfigurationError(
                f"pool_workers must be positive, got {self.pool_workers}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if run_timeout_s is not None and run_timeout_s <= 0:
            raise ConfigurationError(
                f"run_timeout_s must be positive when set, got {run_timeout_s}"
            )
        self.run_timeout_s = run_timeout_s
        self.poll_interval_s = float(poll_interval_s)
        self.spawn_hook = spawn_hook
        self.log_level = log_level
        self.spans = bool(spans)

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> Dict[str, str]:
        """Drive every pending run to ``done`` or ``failed``.

        Args:
            resume: skip ``done`` runs and continue interrupted ones
                from their checkpoints (the ``--resume`` semantics).

        Returns:
            Final status name per run id, in expansion order.
        """
        manifest = self.manifest
        queue = deque(manifest.pending_runs(resume=resume))
        attempts: Dict[str, int] = {
            run.run_id: manifest.read_status(run.run_id).attempts
            for run in queue
        }
        # A previously attempted run (stranded 'running'/'failed' or a
        # requeue) must resume from its own checkpoint even when the
        # campaign-level flag started the run fresh.
        resume_next: Dict[str, bool] = {
            run.run_id: resume for run in queue
        }
        # Last-failure notes, carried into the next attempt's status so
        # `campaign status` and `campaign watch` can show why a run is
        # on its Nth attempt while it is still retrying.
        failures: Dict[str, str] = {}
        active: Dict[str, dict] = {}
        context = multiprocessing.get_context()
        observer, trace_handle = self._campaign_observer()
        campaign_span = observer.span("campaign", resources=True)

        def launch(run: RunSpec) -> None:
            attempts[run.run_id] += 1
            started_at = time.time()  # repro: allow[REP004] status timestamps are operational metadata; simulation time untouched
            manifest.write_status(
                run.run_id,
                STATUS_RUNNING,
                attempts[run.run_id],
                detail=failures.get(run.run_id, ""),
                started_at=started_at,
            )
            process = context.Process(
                target=worker_main,
                args=(
                    run.to_dict(),
                    manifest.run_dir(run.run_id),
                    resume_next[run.run_id],
                    self.log_level,
                    self.spans,
                    f"{run.run_id}/attempt-{attempts[run.run_id]}",
                ),
                name=f"campaign-{run.run_id}",
            )
            process.daemon = True
            process.start()
            active[run.run_id] = {
                "process": process,
                "run": run,
                "started": time.monotonic(),  # repro: allow[REP004] worker liveness is wall-clock; simulation time untouched
                "started_at": started_at,
                "span": observer.span(
                    "attempt",
                    span_id=f"{run.run_id}/attempt-{attempts[run.run_id]}",
                    parent_id="campaign",
                ),
            }
            _LOGGER.info(
                "launched %s (attempt %d, pid %d)",
                run.run_id,
                attempts[run.run_id],
                process.pid,
            )
            if self.spawn_hook is not None:
                self.spawn_hook(run, process, attempts[run.run_id])

        def reap() -> None:
            for run_id in list(active):
                entry = active[run_id]
                process = entry["process"]
                if process.exitcode is None:
                    if self.run_timeout_s is not None:
                        elapsed = (
                            time.monotonic()  # repro: allow[REP004] worker liveness is inherently wall-clock
                            - entry["started"]
                        )
                        if elapsed > self.run_timeout_s:
                            _LOGGER.warning(
                                "%s exceeded %.1fs; presuming hung",
                                run_id,
                                self.run_timeout_s,
                            )
                            process.kill()
                            process.join()
                            entry["span"].end()
                            self._handle_death(
                                entry,
                                attempts,
                                resume_next,
                                failures,
                                queue,
                                "hung",
                            )
                            del active[run_id]
                    continue
                process.join()
                entry["span"].end()
                if process.exitcode == 0:
                    manifest.write_status(
                        run_id,
                        STATUS_DONE,
                        attempts[run_id],
                        started_at=entry["started_at"],
                        finished_at=time.time(),  # repro: allow[REP004] status timestamps are operational metadata
                    )
                    _LOGGER.info("%s done", run_id)
                else:
                    self._handle_death(
                        entry,
                        attempts,
                        resume_next,
                        failures,
                        queue,
                        f"exit code {process.exitcode}",
                    )
                del active[run_id]

        try:
            while queue or active:
                while queue and len(active) < self.pool_workers:
                    launch(queue.popleft())
                reap()
                if active:
                    time.sleep(self.poll_interval_s)
        finally:
            # Close attempt spans a crashing pool would strand, then
            # the campaign span, so the trace tail stays parseable.
            for entry in active.values():
                entry["span"].end()
            campaign_span.end()
            observer.close()
            if trace_handle is not None:
                trace_handle.close()
        return {
            run.run_id: manifest.read_status(run.run_id).status
            for run in manifest.runs
        }

    def _campaign_observer(self):
        """The pool-side observer (and owned trace handle, if any).

        Spans off (or tracing unavailable) yields a null observer whose
        spans compile to no-ops — the pool's control flow is identical
        either way. The trace opens in append mode so a resumed
        campaign extends the same file instead of erasing the earlier
        pool's spans.
        """
        from repro.obs import JsonlTraceSink, RunObserver

        if not self.spans:
            return RunObserver(), None
        path = os.path.join(self.manifest.root, CAMPAIGN_TRACE_FILE)
        handle = open(path, "a", encoding="utf-8")
        return RunObserver(sink=JsonlTraceSink(handle)), handle

    def _handle_death(
        self,
        entry: dict,
        attempts: Dict[str, int],
        resume_next: Dict[str, bool],
        failures: Dict[str, str],
        queue: deque,
        cause: str,
    ) -> None:
        """Requeue a dead worker's run, or mark it permanently failed."""
        run = entry["run"]
        run_id = run.run_id
        if attempts[run_id] <= self.max_retries:
            resume_next[run_id] = True
            failures[run_id] = (
                f"attempt {attempts[run_id]} died ({cause}); retrying"
            )
            queue.append(run)
            _LOGGER.warning(
                "%s died (%s); requeued with resume (attempt %d of %d)",
                run_id,
                cause,
                attempts[run_id] + 1,
                self.max_retries + 1,
            )
        else:
            self.manifest.write_status(
                run_id,
                STATUS_FAILED,
                attempts[run_id],
                detail=f"gave up after {attempts[run_id]} attempts ({cause})",
                started_at=entry["started_at"],
                finished_at=time.time(),  # repro: allow[REP004] status timestamps are operational metadata
            )
            _LOGGER.error(
                "%s failed permanently after %d attempts (%s)",
                run_id,
                attempts[run_id],
                cause,
            )
