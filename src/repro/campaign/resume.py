"""Resume-from-trace: rebuild trainer state out of a partial trace.

This closes the loop on the analysis loader's torn-tail tolerance
(:mod:`repro.obs.analysis.loader`): a run killed mid-round leaves a
``.jsonl`` trace whose final line may be torn, but everything before
it is whole — and because training is bitwise deterministic, a fresh
trainer replayed to the trace's last *certain* round carries exactly
the state the killed run had there.

Which round is certain? Events are emitted strictly in round order,
so the presence of *any* round-``m`` event proves every round up to
``m - 1`` completed — including its stop checks (a run that stopped at
``r`` never emits round ``r + 1``). Round ``m`` itself may have been
cut anywhere, so it is always re-executed:
:func:`resumable_round` = ``m - 1``.

The same bound guards checkpoints: an on-disk checkpoint at a round
*later* than the resumable bound was written before that round's stop
checks ran, and resuming from it could overrun an early stop — the
campaign runner discards it and reconstructs from the trace instead.

Replay is verified, not trusted: the replayed rounds must reproduce
the trace's selection and timeline values exactly, otherwise the trace
belongs to a different configuration and resuming would silently mix
runs — a :class:`~repro.errors.SerializationError` is raised.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Optional

from repro.campaign.manifest import atomic_write_text
from repro.errors import SerializationError
from repro.fl.checkpoint import TrainerCheckpoint
from repro.fl.trainer import FederatedTrainer
from repro.obs.analysis.loader import LoadedTrace

__all__ = ["resumable_round", "truncate_trace", "reconstruct_checkpoint"]


def resumable_round(trace: LoadedTrace) -> int:
    """The last round of ``trace`` that is certainly complete.

    ``max(round_index) - 1``: the newest round may have been cut
    mid-flight (and even a finished round's stop checks may not have
    run), so it is never trusted. Returns 0 when nothing is resumable
    (resume then means start fresh).
    """
    rounds = [
        event.round_index for event in trace.events if event.round_index >= 1
    ]
    if not rounds:
        return 0
    return max(rounds) - 1


def truncate_trace(path: str, keep_round: int) -> int:
    """Cut ``path`` back to rounds ``<= keep_round``, atomically.

    Keeps the original lines byte-for-byte (so the resumed trace stays
    bitwise identical to an uninterrupted run's), dropping partial
    newest-round events, any ``run_stop`` marker, and a torn final
    line. Returns the number of lines kept.

    Raises:
        SerializationError: a line *before* the last is malformed —
            torn tails are expected, mid-stream corruption is not.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    kept = []
    for position, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            if position == len(lines) - 1:
                break  # the torn tail the loader also tolerates
            raise SerializationError(
                f"trace {path} line {position + 1} is malformed "
                "mid-stream"
            ) from exc
        kind = payload.get("event")
        if kind == "run_stop":
            continue
        round_index = int(payload.get("round_index", 0))
        if round_index > keep_round:
            continue
        if round_index == 0 and kind in ("span_end", "worker_resource"):
            # Run-level span *closures* are re-emitted when the resumed
            # attempt finishes; only the opening span_start is kept so
            # the final trace carries exactly one start/end pair.
            continue
        kept.append(text + "\n")
    atomic_write_text(path, "".join(kept))
    return len(kept)


def _trace_round_facts(trace: LoadedTrace, up_to: int) -> dict:
    """Per-round (selection, timeline) facts for rounds ``<= up_to``."""
    facts: dict = {}
    for event in trace.events:
        if not 1 <= event.round_index <= up_to:
            continue
        entry = facts.setdefault(event.round_index, {})
        if event.kind == "selection":
            entry["selected_ids"] = tuple(event.selected_ids)
        elif event.kind == "timeline":
            entry["round_delay"] = event.round_delay
            entry["round_energy"] = event.round_energy
            entry["cumulative_time"] = event.cumulative_time
            entry["cumulative_energy"] = event.cumulative_energy
    return facts


def reconstruct_checkpoint(
    trace: LoadedTrace,
    make_trainer: Callable[[], FederatedTrainer],
) -> Optional[TrainerCheckpoint]:
    """Rebuild the killed run's state by deterministic replay.

    A fresh trainer (tracing off, identical configuration) replays up
    to :func:`resumable_round` and its ``last_checkpoint`` is the
    reconstruction. Every replayed round is cross-checked against the
    trace's selection and timeline events — exact equality, because
    the simulation is bitwise deterministic.

    Args:
        trace: the loaded partial trace.
        make_trainer: zero-argument factory building the run's trainer
            exactly as the original was built (same settings, seeds,
            strategy, faults, backend semantics).

    Returns:
        The reconstructed checkpoint, or ``None`` when the trace holds
        no certainly-complete round (caller starts fresh).

    Raises:
        SerializationError: the replay diverged from the trace.
    """
    up_to = resumable_round(trace)
    if up_to < 1:
        return None
    trainer = make_trainer()
    history = trainer.run(stop_after=up_to)
    checkpoint = trainer.last_checkpoint
    if checkpoint is None or checkpoint.round_index != up_to:
        reached = None if checkpoint is None else checkpoint.round_index
        raise SerializationError(
            f"replay stopped at round {reached}, expected {up_to}: the "
            "trace belongs to a different configuration"
        )
    facts = _trace_round_facts(trace, up_to)
    for record in history.records:
        expected = facts.get(record.round_index, {})
        observed = {
            "selected_ids": record.selected_ids,
            "round_delay": record.round_delay,
            "round_energy": record.round_energy,
            "cumulative_time": record.cumulative_time,
            "cumulative_energy": record.cumulative_energy,
        }
        for key, value in expected.items():
            if observed.get(key) != value:
                raise SerializationError(
                    f"replay diverged from trace at round "
                    f"{record.round_index} ({key}: replay "
                    f"{observed.get(key)!r} vs trace {value!r})"
                )
    return checkpoint


def load_trace_for_resume(path: str) -> Optional[LoadedTrace]:
    """Load ``path`` for resumption; ``None`` when it is unusable.

    Missing or empty traces mean "start fresh"; a mid-stream-corrupt
    trace raises (the artifact is damaged beyond the torn-tail
    contract and should not silently vanish).
    """
    from repro.obs.analysis.loader import load_trace

    if not os.path.exists(path):
        return None
    trace = load_trace(path)
    if not trace.events:
        return None
    return trace
