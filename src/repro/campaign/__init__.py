"""Campaign orchestration: declarative multi-run experiments that
survive crashes.

A campaign is a declarative spec (:class:`CampaignSpec` — seeds ×
strategies × config overrides × fault plans) expanded into a
deterministic run matrix, executed by a fault-tolerant local worker
pool (:class:`CampaignPool`) against an on-disk manifest
(:class:`CampaignManifest`) of atomic per-run status files. Each run
trains with tracing and checkpointing on; a killed worker — or a
killed campaign — resumes from its last checkpoint (falling back to
deterministic trace replay when the checkpoint is torn) and finishes
bitwise identical to an uninterrupted run. Results aggregate into a
byte-comparable campaign document
(:func:`~repro.campaign.aggregate.write_aggregate`) wired into the
:mod:`repro.obs.analysis` compare machinery.

Typical usage::

    python -m repro campaign run spec.json --dir out/         # fresh
    python -m repro campaign run spec.json --dir out/ --resume # after a crash
    python -m repro campaign status out/
    python -m repro campaign compare ref/aggregate.json out/aggregate.json
"""

from repro.campaign.aggregate import (
    AGGREGATE_SCHEMA,
    aggregate_campaign,
    compare_campaigns,
    load_aggregate,
    write_aggregate,
)
from repro.campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_RUNNING,
    CampaignManifest,
    RunStatus,
)
from repro.campaign.pool import CampaignPool
from repro.campaign.resume import (
    reconstruct_checkpoint,
    resumable_round,
    truncate_trace,
)
from repro.campaign.runner import execute_run
from repro.campaign.spec import CampaignSpec, RunSpec, settings_to_overrides
from repro.campaign.watch import (
    CampaignSnapshot,
    RunProgress,
    render_snapshot,
    snapshot_campaign,
    watch,
)

__all__ = [
    "AGGREGATE_SCHEMA",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_PENDING",
    "STATUS_RUNNING",
    "CampaignManifest",
    "CampaignPool",
    "CampaignSnapshot",
    "CampaignSpec",
    "RunProgress",
    "RunSpec",
    "RunStatus",
    "aggregate_campaign",
    "compare_campaigns",
    "execute_run",
    "load_aggregate",
    "reconstruct_checkpoint",
    "render_snapshot",
    "resumable_round",
    "settings_to_overrides",
    "snapshot_campaign",
    "truncate_trace",
    "watch",
    "write_aggregate",
]
