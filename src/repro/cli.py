"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — train one scheme and print its trajectory summary;
* ``fig2`` — regenerate a Fig. 2 panel (accuracy comparison);
* ``table1`` — regenerate a Table I half (delay to accuracy);
* ``fig3`` — regenerate a Fig. 3 panel (DVFS energy reduction);
* ``trace-report`` — analyze a recorded JSONL trace;
* ``trace-compare`` — diff two traces, non-zero exit on regression;
* ``campaign`` — run/inspect/compare declarative multi-run campaigns
  with checkpointed crash recovery (``campaign run spec.json --dir
  out/ --resume`` continues a killed campaign bitwise identically);
* ``info`` — print the resolved experiment settings.

Every command accepts ``--quick`` (20 users, fast) or ``--full``
(paper scale, default), ``--seed``, ``--rounds``, and ``--noniid``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.baselines.registry import strategy_labels
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.reporting import (
    format_fig2_table,
    format_fig3_table,
    format_table1,
)
from repro.experiments.runner import STRATEGY_NAMES, run_strategy
from repro.experiments.settings import ExperimentSettings
from repro.experiments.table1 import run_table1
from repro.fl.execution import BACKEND_NAMES
from repro.version import PAPER_TITLE, PAPER_VENUE, __version__

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small fast profile (20 users) instead of the paper scale",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--rounds", type=int, default=None, help="override FL round count"
    )
    parser.add_argument(
        "--noniid",
        action="store_true",
        help="use the paper's label-shard non-IID partition",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="also save the artifact as a JSON document at this path",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="serial",
        help="client-execution backend fanning local updates across "
        "workers (results are identical for every backend at a fixed "
        "seed)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends "
        "(default: CPU count)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="stream per-round trace events (selection, frequencies, "
        "timeline, battery drops, aggregation, eval, stop reason) as "
        "JSON lines to PATH; tracing never changes results",
    )
    parser.add_argument(
        "--no-spans",
        action="store_true",
        help="omit span/resource telemetry events from the trace "
        "(simulation events only); results are identical either way",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable library logging on stderr at this level",
    )
    parser.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="PLAN",
        help="JSON fault-plan file injecting seeded chaos (device "
        "dropouts, stragglers, channel outages, battery deaths) into "
        "every FL run; see examples/fault_plan.json. An empty plan is "
        "bitwise identical to running without one",
    )
    parser.add_argument(
        "--round-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard per-round deadline in simulated seconds: clients "
        "that cannot finish by it are cut off and excluded from "
        "aggregation",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=f"{PAPER_TITLE} ({PAPER_VENUE}) - reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="train one scheme")
    run_parser.add_argument(
        "strategy",
        choices=STRATEGY_NAMES,
        help="scheme to train",
    )
    _add_common(run_parser)
    run_parser.add_argument(
        "--report",
        action="store_true",
        help="after the run, analyze the recorded trace and print the "
        "per-round/per-device report (requires --trace)",
    )
    run_parser.add_argument(
        "--scheduler",
        choices=("vector", "object"),
        default="vector",
        help="scheduler implementation: 'vector' runs selection and "
        "DVFS over the struct-of-arrays DevicePopulation (the "
        "default), 'object' loops over UserDevice objects — results "
        "are bitwise identical; 'object' exists as the parity oracle "
        "and benchmarking baseline",
    )

    for name, help_text in (
        ("fig2", "accuracy comparison of all schemes (paper Fig. 2)"),
        ("table1", "training delay to desired accuracy (paper Table I)"),
        ("fig3", "DVFS energy reduction (paper Fig. 3)"),
    ):
        artifact_parser = sub.add_parser(name, help=help_text)
        _add_common(artifact_parser)

    report_parser = sub.add_parser(
        "report", help="run the full evaluation (both regimes) and print it"
    )
    _add_common(report_parser)

    trace_report = sub.add_parser(
        "trace-report",
        help="analyze a recorded JSONL trace (per-round energy, DVFS "
        "savings, fairness, faults)",
    )
    trace_report.add_argument(
        "path", help="trace file (.jsonl, .jsonl.gz, or snapshot JSON)"
    )
    trace_report.add_argument(
        "--format",
        choices=("table", "markdown", "json", "chrome-trace"),
        default="table",
        help=(
            "output format (default: table); chrome-trace exports the "
            "span tree as Chrome/Perfetto trace-event JSON"
        ),
    )
    trace_report.add_argument(
        "--output", default=None, help="write the report to this file"
    )
    trace_report.add_argument(
        "--top-devices", type=int, default=10, metavar="N",
        help="device-table size (default: 10)",
    )
    trace_report.add_argument(
        "--run", type=int, default=None, metavar="N",
        help="0-based run index for multi-run traces",
    )

    trace_compare = sub.add_parser(
        "trace-compare",
        help="diff two recorded traces; exits 1 when the second "
        "regresses past the thresholds",
    )
    trace_compare.add_argument("base", help="baseline trace/snapshot")
    trace_compare.add_argument("other", help="candidate trace/snapshot")
    trace_compare.add_argument(
        "--strict",
        action="store_true",
        help="any metric difference is a regression (backend parity)",
    )
    trace_compare.add_argument(
        "--energy-threshold", type=float, default=0.02, metavar="REL",
        help="allowed relative total-energy increase (default: 0.02)",
    )
    trace_compare.add_argument(
        "--time-threshold", type=float, default=0.02, metavar="REL",
        help="allowed relative total-time increase (default: 0.02)",
    )
    trace_compare.add_argument(
        "--accuracy-threshold", type=float, default=0.02, metavar="ABS",
        help="allowed absolute final-accuracy drop (default: 0.02)",
    )
    trace_compare.add_argument(
        "--output", default=None, help="write the comparison to this file"
    )
    trace_compare.add_argument(
        "--run", type=int, default=None, metavar="N",
        help="0-based run index for multi-run traces",
    )

    campaign = sub.add_parser(
        "campaign",
        help="declarative multi-run campaigns with crash recovery",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_sub.add_parser(
        "run",
        help="execute a campaign spec with the fault-tolerant pool",
    )
    campaign_run.add_argument("spec", help="campaign spec JSON file")
    campaign_run.add_argument(
        "--dir",
        dest="campaign_dir",
        required=True,
        metavar="DIR",
        help="campaign directory (manifest, per-run artifacts, "
        "aggregate)",
    )
    campaign_run.add_argument(
        "--resume",
        action="store_true",
        help="skip completed runs and continue interrupted ones from "
        "their checkpoints; the finished aggregate is bitwise "
        "identical to an uninterrupted campaign's",
    )
    campaign_run.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="concurrent worker processes (default: the spec's)",
    )
    campaign_run.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="requeues per run before giving up (default: the spec's)",
    )
    campaign_run.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and requeue a worker alive past this wall-clock "
        "bound (default: no bound)",
    )
    campaign_run.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable library logging on stderr at this level; also "
        "forwarded into every worker process",
    )
    campaign_run.add_argument(
        "--no-spans",
        action="store_true",
        help="disable span/resource telemetry (no campaign-trace.jsonl, "
        "simulation-only run traces); results are identical either way",
    )

    campaign_status = campaign_sub.add_parser(
        "status", help="print a campaign manifest's per-run statuses"
    )
    campaign_status.add_argument(
        "campaign_dir", metavar="DIR", help="campaign directory"
    )

    campaign_watch = campaign_sub.add_parser(
        "watch",
        help="live-monitor a running campaign (read-only: progress "
        "bars, retries, throughput, ETA)",
    )
    campaign_watch.add_argument(
        "campaign_dir", metavar="DIR", help="campaign directory"
    )
    campaign_watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (CI smoke mode)",
    )
    campaign_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh cadence (default: 2.0)",
    )

    campaign_compare = campaign_sub.add_parser(
        "compare",
        help="diff two campaign aggregates; exits 1 on regression",
    )
    campaign_compare.add_argument("base", help="baseline aggregate.json")
    campaign_compare.add_argument("other", help="candidate aggregate.json")
    campaign_compare.add_argument(
        "--strict",
        action="store_true",
        help="any metric difference is a regression (crash-recovery "
        "parity)",
    )
    campaign_compare.add_argument(
        "--energy-threshold", type=float, default=0.02, metavar="REL",
        help="allowed relative total-energy increase (default: 0.02)",
    )
    campaign_compare.add_argument(
        "--time-threshold", type=float, default=0.02, metavar="REL",
        help="allowed relative total-time increase (default: 0.02)",
    )
    campaign_compare.add_argument(
        "--accuracy-threshold", type=float, default=0.02, metavar="ABS",
        help="allowed absolute final-accuracy drop (default: 0.02)",
    )

    info_parser = sub.add_parser("info", help="print resolved settings")
    _add_common(info_parser)
    return parser


def _settings_from(args: argparse.Namespace) -> ExperimentSettings:
    overrides = {"seed": args.seed}
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.quick:
        return ExperimentSettings.quick(**overrides)
    return ExperimentSettings(**overrides)


def _backend_kwargs(args: argparse.Namespace) -> dict:
    return {"backend": args.backend, "workers": args.workers}


def _faults_from(args: argparse.Namespace):
    """Load the fault plan the flags ask for (None when chaos is off)."""
    if not args.faults:
        return None
    from repro.faults import FaultPlan

    plan = FaultPlan.load(args.faults)
    print(
        f"loaded fault plan {args.faults} "
        f"(seed={plan.seed}, {len(plan.faults)} fault spec(s))"
    )
    return plan


def _chaos_kwargs(args: argparse.Namespace) -> dict:
    """Fault/deadline keyword arguments for the experiment runners."""
    overrides = {}
    if args.round_deadline is not None:
        overrides["round_deadline_s"] = args.round_deadline
    return {
        "faults": _faults_from(args),
        "config_overrides": overrides or None,
    }


def _observer_from(args: argparse.Namespace):
    """Build the run observer the flags ask for (None when untraced)."""
    from repro.obs import RunObserver, configure_logging

    if args.log_level:
        configure_logging(args.log_level.upper())
    if args.trace:
        return RunObserver.to_path(
            args.trace, spans_enabled=not args.no_spans
        )
    return None


def _finish_trace(observer, args: argparse.Namespace) -> None:
    """Close the trace sink and report where the events went."""
    if observer is None:
        return
    observer.close()
    print(f"saved trace to {args.trace} "
          f"({observer.metrics.counter('events_emitted'):.0f} events)")
    print("timer breakdown:")
    for line in observer.metrics.format_timers().splitlines():
        print(f"  {line}")


def _cmd_run(args: argparse.Namespace) -> int:
    settings = _settings_from(args)
    if args.report and not args.trace:
        print("error: --report requires --trace PATH", file=sys.stderr)
        return 2
    label = strategy_labels().get(args.strategy, args.strategy)
    print(
        f"Training {label} ({'non-IID' if args.noniid else 'IID'}) "
        f"[backend={args.backend}] ..."
    )
    observer = _observer_from(args)
    try:
        history = run_strategy(
            args.strategy,
            settings,
            iid=not args.noniid,
            observer=observer,
            vectorized=args.scheduler != "object",
            **_backend_kwargs(args),
            **_chaos_kwargs(args),
        )
    finally:
        _finish_trace(observer, args)
    print(f"  rounds executed      {len(history)}")
    print(f"  stop reason          {history.stop_reason}")
    print(f"  best accuracy        {100 * history.best_accuracy:.2f}%")
    print(f"  final accuracy       {100 * history.final_accuracy:.2f}%")
    print(f"  simulated time       {history.total_time / 60:.2f} min")
    print(f"  training energy      {history.total_energy:.3f} J")
    print(
        f"  population coverage  "
        f"{100 * history.coverage(settings.num_users):.0f}%"
    )
    if args.output:
        from repro.experiments.export import save_history

        save_history(history, args.output)
        print(f"saved history to {args.output}")
    if args.report:
        from repro.obs.report import main as trace_report_main

        print()
        return trace_report_main([args.trace])
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import main as trace_report_main

    argv = [args.path, "--format", args.format,
            "--top-devices", str(args.top_devices)]
    if args.output:
        argv += ["--output", args.output]
    if args.run is not None:
        argv += ["--run", str(args.run)]
    return trace_report_main(argv)


def _cmd_trace_compare(args: argparse.Namespace) -> int:
    from repro.obs.report import main as trace_report_main

    argv = [
        args.base,
        args.other,
        "--compare",
        "--energy-threshold", str(args.energy_threshold),
        "--time-threshold", str(args.time_threshold),
        "--accuracy-threshold", str(args.accuracy_threshold),
    ]
    if args.strict:
        argv.append("--strict")
    if args.output:
        argv += ["--output", args.output]
    if args.run is not None:
        argv += ["--run", str(args.run)]
    return trace_report_main(argv)


def _cmd_fig2(args: argparse.Namespace) -> int:
    settings = _settings_from(args)
    observer = _observer_from(args)
    try:
        result = run_fig2(
            settings,
            iid=not args.noniid,
            observer=observer,
            **_backend_kwargs(args),
            **_chaos_kwargs(args),
        )
    finally:
        _finish_trace(observer, args)
    print(format_fig2_table(result))
    if args.output:
        from repro.experiments.export import save_fig2

        save_fig2(result, args.output)
        print(f"saved artifact to {args.output}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    settings = _settings_from(args)
    observer = _observer_from(args)
    try:
        table = run_table1(
            settings,
            iid=not args.noniid,
            observer=observer,
            **_backend_kwargs(args),
            **_chaos_kwargs(args),
        )
    finally:
        _finish_trace(observer, args)
    print(format_table1(table))
    if args.output:
        from repro.experiments.export import save_table1

        save_table1(table, args.output)
        print(f"saved artifact to {args.output}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    settings = _settings_from(args)
    observer = _observer_from(args)
    try:
        result = run_fig3(
            settings,
            iid=not args.noniid,
            observer=observer,
            **_backend_kwargs(args),
            **_chaos_kwargs(args),
        )
    finally:
        _finish_trace(observer, args)
    print(format_fig3_table(result))
    if args.output:
        from repro.experiments.export import save_fig3

        save_fig3(result, args.output)
        print(f"saved artifact to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    settings = _settings_from(args)
    print(f"repro {__version__} - {PAPER_TITLE} ({PAPER_VENUE})")
    print(f"partition: {'non-IID' if args.noniid else 'IID'}")
    for field in dataclasses.fields(settings):
        print(f"  {field.name:24s} {getattr(settings, field.name)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level.upper())
    if args.trace:
        print(
            "note: --trace is not supported by 'report'; ignoring",
            file=sys.stderr,
        )
    if args.faults or args.round_deadline is not None:
        print(
            "note: --faults/--round-deadline are not supported by "
            "'report'; ignoring",
            file=sys.stderr,
        )
    settings = _settings_from(args)
    text = generate_report(settings)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"saved report to {args.output}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        STATUS_DONE,
        CampaignManifest,
        CampaignPool,
        CampaignSpec,
        write_aggregate,
    )

    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level.upper())
    spec = CampaignSpec.load(args.spec)
    manifest = CampaignManifest.create(args.campaign_dir, spec)
    print(
        f"campaign {spec.name}: {len(manifest.runs)} run(s) "
        f"({'resume' if args.resume else 'fresh'})"
    )
    pool = CampaignPool(
        manifest,
        pool_workers=args.pool_workers,
        max_retries=args.max_retries,
        run_timeout_s=args.run_timeout,
        log_level=args.log_level.upper() if args.log_level else None,
        spans=not args.no_spans,
    )
    statuses = pool.run(resume=args.resume)
    failed = sorted(
        run_id
        for run_id, status in statuses.items()
        if status != STATUS_DONE
    )
    for run_id in statuses:
        print(f"  {run_id:32s} {statuses[run_id]}")
    if failed:
        print(
            f"error: {len(failed)} run(s) did not finish: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    path = write_aggregate(manifest)
    print(f"saved aggregate to {path}")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import time

    from repro.campaign import (
        STATUS_DONE,
        STATUS_FAILED,
        CampaignManifest,
    )

    manifest = CampaignManifest.open(args.campaign_dir)
    statuses = manifest.statuses()
    done = sum(1 for s in statuses.values() if s.status == STATUS_DONE)
    now = time.time()  # repro: allow[REP004] elapsed-time display for operators; simulation untouched
    print(
        f"campaign {manifest.spec.name}: {done}/{len(statuses)} run(s) done"
    )
    for run_id, status in statuses.items():
        elapsed = status.elapsed(
            now=None
            if status.status in (STATUS_DONE, STATUS_FAILED)
            else now
        )
        elapsed_text = "—" if elapsed is None else f"{elapsed:.1f}s"
        detail = f"  [{status.detail}]" if status.detail else ""
        print(
            f"  {run_id:32s} {status.status:8s} "
            f"attempts={status.attempts} elapsed={elapsed_text}{detail}"
        )
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.campaign import watch

    return watch(
        args.campaign_dir,
        interval_s=args.interval,
        once=args.once,
    )


def _cmd_campaign_compare(args: argparse.Namespace) -> int:
    from repro.campaign import compare_campaigns, load_aggregate
    from repro.obs.analysis import CompareThresholds, render_comparison

    thresholds = CompareThresholds(
        energy_rel=args.energy_threshold,
        time_rel=args.time_threshold,
        accuracy_abs=args.accuracy_threshold,
        strict=args.strict,
    )
    comparisons, regressed = compare_campaigns(
        load_aggregate(args.base),
        load_aggregate(args.other),
        thresholds=thresholds,
    )
    for comparison in comparisons:
        print(render_comparison(comparison))
        print()
    print(
        f"campaign comparison: {len(comparisons)} run(s) compared, "
        f"{'REGRESSED' if regressed else 'ok'}"
    )
    return 1 if regressed else 0


_CAMPAIGN_COMMANDS = {
    "run": _cmd_campaign_run,
    "status": _cmd_campaign_status,
    "watch": _cmd_campaign_watch,
    "compare": _cmd_campaign_compare,
}


def _cmd_campaign(args: argparse.Namespace) -> int:
    return _CAMPAIGN_COMMANDS[args.campaign_command](args)


_COMMANDS = {
    "run": _cmd_run,
    "fig2": _cmd_fig2,
    "table1": _cmd_table1,
    "fig3": _cmd_fig3,
    "report": _cmd_report,
    "trace-report": _cmd_trace_report,
    "trace-compare": _cmd_trace_compare,
    "campaign": _cmd_campaign,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
