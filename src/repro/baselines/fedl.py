"""FEDL [12]: closed-form energy/delay-balancing frequency policy.

Tran et al. formulate FL training cost as a weighted sum of energy and
delay and derive closed-form per-device operating points. For the
paper's cost model the per-device subproblem is::

    min_f  E_cal(f) + kappa * T_cal(f)
         = (alpha/2) * pi * |D| * f^2 + kappa * pi * |D| / f

whose stationary point is ``f* = (kappa / alpha)^(1/3)``, clamped into
the device's frequency range. ``kappa`` (joules per second) prices
delay against energy: large ``kappa`` pushes devices toward ``f_max``
(delay-dominated), small ``kappa`` toward ``f_min`` (energy-dominated).

FEDL keeps Classic FL's random user selection, which is why the paper
reports identical accuracy curves for the two — only delay and energy
differ.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.devices.cpu import DvfsCpu
from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import ConfigurationError
from repro.fl.strategy import FrequencyPolicy

__all__ = ["fedl_optimal_frequency", "FedlClosedFormPolicy"]


def fedl_optimal_frequency(cpu: DvfsCpu, kappa: float) -> float:
    """The closed-form frequency ``(kappa/alpha)^(1/3)``, clamped.

    Args:
        cpu: the device CPU (provides ``alpha`` and the clamp range).
        kappa: delay price in joules/second, must be positive.

    Returns:
        The optimal operating frequency within ``[f_min, f_max]``.

    Note:
        The unclamped optimum is independent of ``|D|``: dataset size
        scales both cost terms identically, so it cancels.
    """
    if kappa <= 0:
        raise ConfigurationError(f"kappa must be positive, got {kappa}")
    unclamped = (kappa / cpu.switched_capacitance) ** (1.0 / 3.0)
    return cpu.clamp(unclamped)


class FedlClosedFormPolicy(FrequencyPolicy):
    """Assign every selected device its FEDL closed-form frequency.

    Args:
        kappa: delay price in joules/second. The default 0.2 places the
            unclamped optimum at 1 GHz for the paper's
            ``alpha = 2e-28`` — mid-range for the (0.3, 2.0) GHz fleet.
    """

    def __init__(self, kappa: float = 0.2) -> None:
        if kappa <= 0:
            raise ConfigurationError(f"kappa must be positive, got {kappa}")
        self.kappa = float(kappa)

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
        population: Optional[DevicePopulation] = None,
    ) -> Dict[int, float]:
        del payload_bits, bandwidth_hz, round_index
        if population is not None:
            # Fleets share a handful of capacitance values, so evaluate
            # the cube root once per distinct one with Python's scalar
            # ``**`` (the object path's exact op) and broadcast —
            # bitwise parity by construction.
            cap = population.switched_capacitance
            unique, inverse = np.unique(cap, return_inverse=True)
            table = np.fromiter(
                (
                    (self.kappa / value) ** (1.0 / 3.0)
                    for value in unique.tolist()
                ),
                dtype=np.float64,
                count=unique.shape[0],
            )
            clamped = population.clamp(table[inverse])
            return dict(
                zip(population.device_ids.tolist(), clamped.tolist())
            )
        return {
            device.device_id: fedl_optimal_frequency(device.cpu, self.kappa)
            for device in selected
        }

    def __repr__(self) -> str:
        return f"FedlClosedFormPolicy(kappa={self.kappa})"
