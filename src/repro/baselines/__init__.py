"""Baseline schemes the paper compares against (Section VII-A).

* :class:`~repro.baselines.classic.RandomSelection` — **Classic FL**
  [9]: uniform-random selection of ``Q*C`` users per round.
* :class:`~repro.baselines.fedcs.FedCsSelection` — **FedCS** [10]:
  greedy deadline-constrained selection of short-delay users.
* :class:`~repro.baselines.fedl.FedlClosedFormPolicy` — **FEDL** [12]:
  random selection with a closed-form frequency balancing energy
  against delay.
* :class:`~repro.baselines.sl.SeparatedLearningRunner` — **SL** [4]:
  every user trains alone; no aggregation.
"""

from repro.baselines.classic import RandomSelection
from repro.baselines.fedcs import FedCsSelection, fedcs_deadline_for_count
from repro.baselines.fedl import FedlClosedFormPolicy, fedl_optimal_frequency
from repro.baselines.registry import available_strategies, build_strategy
from repro.baselines.sl import SeparatedLearningRunner

__all__ = [
    "RandomSelection",
    "FedCsSelection",
    "fedcs_deadline_for_count",
    "FedlClosedFormPolicy",
    "fedl_optimal_frequency",
    "SeparatedLearningRunner",
    "available_strategies",
    "build_strategy",
]
