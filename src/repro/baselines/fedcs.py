"""FedCS [10]: greedy deadline-constrained client selection.

Nishio & Yonetani's FedCS fixes a per-round deadline and greedily packs
in as many users as possible, always preferring users with short
training delays. Under the TDMA uplink this is a sequential packing
problem: each added user contributes its upload time to the shared
channel, so FedCS adds users in ascending total-delay order while the
simulated round still finishes within the deadline.

The paper's observation (Section V-A) is that this strategy never
selects users whose delay alone exceeds what the deadline can fit —
their data is permanently excluded, capping achievable accuracy. The
reproduction preserves exactly this behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, SelectionError
from repro.fl.strategy import SelectionStrategy
from repro.network.tdma import simulate_tdma_round
from repro.rng import (
    SeedLike,
    ensure_generator,
    generator_state,
    restore_generator,
)

__all__ = ["FedCsSelection", "fedcs_deadline_for_count"]


def fedcs_deadline_for_count(
    devices: Sequence[UserDevice],
    payload_bits: float,
    bandwidth_hz: float,
    count: int,
) -> float:
    """A per-round deadline that fits the ``count`` fastest users.

    Used to configure FedCS comparably to fraction-based baselines: the
    returned deadline is the simulated TDMA round delay of the
    ``count`` lowest-total-delay users at max frequency, so FedCS
    selects roughly ``count`` users per round.

    Args:
        devices: the full population.
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.
        count: number of fast users the deadline should accommodate.
    """
    if count <= 0:
        raise SelectionError(f"count must be positive, got {count}")
    if not devices:
        raise SelectionError("cannot derive a deadline from no devices")
    count = min(count, len(devices))
    fastest = sorted(
        devices,
        key=lambda d: d.total_delay(payload_bits, bandwidth_hz),
    )[:count]
    return simulate_tdma_round(fastest, payload_bits, bandwidth_hz).round_delay


class FedCsSelection(SelectionStrategy):
    """Greedy deadline-constrained selection (FedCS).

    Following Nishio & Yonetani's protocol, each round the server first
    polls a *random candidate subset* of the population for resource
    information (the "resource request" step) and then greedily packs
    short-delay candidates under the deadline. Candidate sampling is
    what lets FedCS's coverage extend beyond a fixed fastest set while
    still never admitting users too slow for the deadline.

    Args:
        round_deadline_s: the per-round completion deadline.
        payload_bits: model payload ``C_model`` (needed to simulate
            candidate rounds).
        bandwidth_hz: uplink resource blocks ``Z``.
        max_users: optional hard cap on selected users per round.
        candidate_fraction: fraction of the population polled as
            candidates each round (FedCS's resource-request step);
            ``None`` considers everyone every round (a deterministic
            degenerate variant).
        seed: candidate-sampling seed.
    """

    def __init__(
        self,
        round_deadline_s: float,
        payload_bits: float,
        bandwidth_hz: float,
        max_users: Optional[int] = None,
        candidate_fraction: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        if round_deadline_s <= 0:
            raise ConfigurationError(
                f"round_deadline_s must be positive, got {round_deadline_s}"
            )
        if payload_bits <= 0 or bandwidth_hz <= 0:
            raise ConfigurationError(
                "payload_bits and bandwidth_hz must be positive, got "
                f"{payload_bits} and {bandwidth_hz}"
            )
        if max_users is not None and max_users <= 0:
            raise ConfigurationError(
                f"max_users must be positive when set, got {max_users}"
            )
        if candidate_fraction is not None and not 0.0 < candidate_fraction <= 1.0:
            raise ConfigurationError(
                f"candidate_fraction must be in (0, 1] when set, got "
                f"{candidate_fraction}"
            )
        self.round_deadline_s = float(round_deadline_s)
        self.payload_bits = float(payload_bits)
        self.bandwidth_hz = float(bandwidth_hz)
        self.max_users = max_users
        self.candidate_fraction = candidate_fraction
        self._seed = seed
        self._rng = ensure_generator(seed)

    def reset(self) -> None:
        """Re-seed the candidate-sampling stream for a fresh run."""
        self._rng = ensure_generator(self._seed)

    def state_dict(self) -> Dict:
        """Checkpoint snapshot: the candidate-sampling RNG mid-stream."""
        return {"rng": generator_state(self._rng)}

    def load_state_dict(self, state: Dict) -> None:
        """Resume the candidate-sampling stream where it froze."""
        self._rng = restore_generator(state["rng"])

    def _candidates(
        self, devices: Sequence[UserDevice]
    ) -> Sequence[UserDevice]:
        """The round's polled candidate subset (resource-request step)."""
        if self.candidate_fraction is None:
            return devices
        count = max(1, int(round(self.candidate_fraction * len(devices))))
        chosen = self._rng.choice(len(devices), size=count, replace=False)
        return [devices[int(i)] for i in sorted(chosen)]

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        """Greedily pack short-delay users under the round deadline.

        Candidates are considered in ascending total-delay order; a
        candidate is kept if the TDMA round over the tentative set
        still meets the deadline. At least one user (the single fastest
        whose own round fits, or failing that the globally fastest) is
        always selected so training can proceed.
        """
        del round_index
        self._check_population(devices)
        candidates = self._candidates(devices)
        ranked = sorted(
            candidates,
            key=lambda d: (
                d.total_delay(self.payload_bits, self.bandwidth_hz),
                d.device_id,
            ),
        )
        selected: List[UserDevice] = []
        for candidate in ranked:
            if self.max_users is not None and len(selected) >= self.max_users:
                break
            tentative = selected + [candidate]
            timeline = simulate_tdma_round(
                tentative, self.payload_bits, self.bandwidth_hz
            )
            if timeline.round_delay <= self.round_deadline_s:
                selected = tentative
            else:
                # Candidates are sorted by individual delay, but a
                # later candidate with shorter T_com could still fit;
                # FedCS's greedy heuristic stops at the first miss.
                break
        if not selected:
            selected = [ranked[0]]
        return selected

    def __repr__(self) -> str:
        return f"FedCsSelection(deadline={self.round_deadline_s:.3g}s)"
