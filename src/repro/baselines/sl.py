"""SL [4]: separated learning — every user trains alone.

In separated learning there is no server and no aggregation: each user
fits a private model to its own local dataset. Devices never see other
users' data, so in the non-IID setting a user can at best master the
few labels it owns — which is why the paper reports SL trailing every
federated scheme by tens of accuracy points (its "X" rows in Table I).

Reported accuracy is the mean test accuracy across (a sample of) user
models, the natural population-level analogue of the global model's
accuracy. There is no communication, so round delay is the slowest
user's compute delay and round energy is pure compute.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, TrainingError
from repro.fl.client import LocalTrainer
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import FederatedServer
from repro.nn.metrics import accuracy
from repro.rng import SeedLike, ensure_generator

__all__ = ["SeparatedLearningRunner"]


class SeparatedLearningRunner:
    """Trains one private model per user, no aggregation.

    Args:
        server: supplies the model architecture template and the test
            set (no aggregation happens; the server's global model is
            never updated).
        devices: the user population.
        config: reuses :class:`~repro.fl.trainer.TrainerConfig` for
            rounds / learning rate / local steps / eval cadence.
        eval_users: number of user models evaluated each evaluation
            round (evaluating all ``Q`` models every round is wasteful;
            a fixed random sample tracks the population mean). ``None``
            evaluates every user.
        seed: seed for choosing the evaluation sample.
        label: history label.
    """

    def __init__(
        self,
        server: FederatedServer,
        devices: Sequence[UserDevice],
        config=None,
        eval_users: Optional[int] = 10,
        seed: SeedLike = None,
        label: str = "SL",
    ) -> None:
        from repro.fl.trainer import TrainerConfig

        if not devices:
            raise TrainingError("cannot train with an empty device population")
        if eval_users is not None and eval_users <= 0:
            raise ConfigurationError(
                f"eval_users must be positive when set, got {eval_users}"
            )
        self.server = server
        self.devices = list(devices)
        self.config = config or TrainerConfig()
        self.label = label
        rng = ensure_generator(seed)
        if eval_users is None or eval_users >= len(self.devices):
            self._eval_indices = list(range(len(self.devices)))
        else:
            self._eval_indices = sorted(
                int(i)
                for i in rng.choice(len(self.devices), size=eval_users, replace=False)
            )
        self.local_trainer = LocalTrainer(
            learning_rate=self.config.learning_rate,
            local_steps=self.config.local_steps,
            batch_size=self.config.batch_size,
        )

    def _mean_accuracy(self, models: List) -> float:
        test = self.server.test_dataset
        if test is None:
            return 0.0
        scores = []
        for idx in self._eval_indices:
            preds = models[idx].predict_classes(test.inputs)
            scores.append(accuracy(preds, test.labels))
        return float(sum(scores) / len(scores)) if scores else 0.0

    def run(self) -> TrainingHistory:
        """Train every user's model for ``config.rounds`` rounds."""
        config = self.config
        history = TrainingHistory(label=self.label)
        initial = self.server.broadcast()
        models = []
        for _ in self.devices:
            model = self.server.model.clone()
            model.set_flat_params(initial)
            models.append(model)

        cumulative_time = 0.0
        cumulative_energy = 0.0
        for round_index in range(1, config.rounds + 1):
            losses = []
            for model, device in zip(models, self.devices):
                losses.append(self.local_trainer.train(model, device.dataset))

            # All users compute in parallel at max frequency; no uplink.
            round_delay = max(d.compute_delay() for d in self.devices)
            round_energy = sum(d.compute_energy() for d in self.devices)
            cumulative_time += round_delay
            cumulative_energy += round_energy

            should_eval = (
                round_index % config.eval_every == 0
                or round_index == config.rounds
            )
            test_accuracy = (
                self._mean_accuracy(models) if should_eval else None
            )

            total_samples = sum(d.num_samples for d in self.devices)
            train_loss = (
                sum(l * d.num_samples for l, d in zip(losses, self.devices))
                / total_samples
            )
            history.append(
                RoundRecord(
                    round_index=round_index,
                    selected_ids=tuple(d.device_id for d in self.devices),
                    frequencies={
                        d.device_id: d.cpu.f_max for d in self.devices
                    },
                    round_delay=round_delay,
                    round_energy=round_energy,
                    compute_energy=round_energy,
                    upload_energy=0.0,
                    slack=0.0,
                    cumulative_time=cumulative_time,
                    cumulative_energy=cumulative_energy,
                    train_loss=train_loss,
                    test_accuracy=test_accuracy,
                )
            )
            if config.deadline_s is not None and cumulative_time >= config.deadline_s:
                break
        return history
