"""Classic FL [9]: uniform-random user selection.

The standard FedAvg prototype "randomly selects ``100 x C`` users in
each iteration". FEDL [12] uses the same selection (the paper notes
their accuracy curves coincide for this reason) but pairs it with a
different frequency policy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError
from repro.fl.strategy import SelectionStrategy, selection_count
from repro.rng import (
    SeedLike,
    ensure_generator,
    generator_state,
    restore_generator,
)

__all__ = ["RandomSelection"]


class RandomSelection(SelectionStrategy):
    """Uniformly random selection of ``max(Q*C, 1)`` users per round.

    Args:
        fraction: selection fraction ``C`` in ``(0, 1]`` (paper: 0.1).
        seed: selection seed; runs are reproducible given the seed.
    """

    def __init__(self, fraction: float, seed: SeedLike = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self._seed = seed
        self._rng = ensure_generator(seed)

    def reset(self) -> None:
        """Re-seed the selection stream for a fresh run."""
        self._rng = ensure_generator(self._seed)

    def state_dict(self) -> Dict:
        """Checkpoint snapshot: the selection RNG mid-stream."""
        return {"rng": generator_state(self._rng)}

    def load_state_dict(self, state: Dict) -> None:
        """Resume the selection stream exactly where it froze."""
        self._rng = restore_generator(state["rng"])

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        del round_index
        self._check_population(devices)
        count = selection_count(len(devices), self.fraction)
        chosen = self._rng.choice(len(devices), size=count, replace=False)
        return [devices[int(i)] for i in sorted(chosen)]

    def __repr__(self) -> str:
        return f"RandomSelection(C={self.fraction})"
