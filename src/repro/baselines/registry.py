"""Strategy registry: build any evaluated scheme by name.

Names (case-insensitive):

* ``"helcfl"`` — greedy-decay selection + Algorithm 3 DVFS.
* ``"helcfl-nodvfs"`` — greedy-decay selection at max frequency
  (the ablation pair of Fig. 3).
* ``"classic"`` — random selection at max frequency (Classic FL [9]).
* ``"fedcs"`` — deadline-greedy selection at max frequency [10].
* ``"fedl"`` — random selection + closed-form frequency [12].
* ``"full"`` — every user every round at max frequency: the
  communication-unconstrained upper bound the paper's Section I setup
  rules out (an idealized reference, not one of the paper's schemes).

``"sl"`` (separated learning) is not a selection strategy — it has no
server round — and is handled by
:class:`repro.baselines.sl.SeparatedLearningRunner` /
:func:`repro.experiments.runner.run_strategy`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.classic import RandomSelection
from repro.baselines.fedcs import FedCsSelection, fedcs_deadline_for_count
from repro.baselines.fedl import FedlClosedFormPolicy
from repro.core.frequency import HelcflDvfsPolicy
from repro.core.selection import GreedyDecaySelection
from repro.devices.device import UserDevice
from repro.errors import ConfigurationError
from repro.fl.strategy import (
    FrequencyPolicy,
    MaxFrequencyPolicy,
    SelectionStrategy,
    selection_count,
)
from repro.rng import SeedLike

__all__ = ["available_strategies", "build_strategy"]

_STRATEGIES = ("helcfl", "helcfl-nodvfs", "classic", "fedcs", "fedl", "full")


def available_strategies() -> Tuple[str, ...]:
    """Names accepted by :func:`build_strategy` (excludes ``"sl"``)."""
    return _STRATEGIES


def build_strategy(
    name: str,
    devices: Sequence[UserDevice],
    fraction: float,
    payload_bits: float,
    bandwidth_hz: float,
    decay: float = 0.7,
    seed: SeedLike = None,
    fedcs_target_count: Optional[int] = None,
    fedcs_candidate_fraction: Optional[float] = None,
    fedl_kappa: float = 0.2,
) -> Tuple[SelectionStrategy, Optional[FrequencyPolicy]]:
    """Build the selection strategy and frequency policy for ``name``.

    Args:
        name: one of :func:`available_strategies`.
        devices: the population (FedCS derives its deadline from it).
        fraction: selection fraction ``C``.
        payload_bits: model payload ``C_model``.
        bandwidth_hz: uplink resource blocks ``Z``.
        decay: HELCFL's ``eta``.
        seed: randomness for random selection.
        fedcs_target_count: users the FedCS deadline should fit;
            defaults to ``max(Q * C, 1)`` for a fair comparison.
        fedcs_candidate_fraction: fraction of users FedCS polls each
            round before packing; ``None`` polls everyone.
        fedl_kappa: FEDL's delay price.

    Returns:
        ``(selection, frequency_policy)``; a ``None`` policy means max
        frequency.

    Raises:
        ConfigurationError: for an unknown name.
    """
    key = name.strip().lower()
    if key == "helcfl":
        return (
            GreedyDecaySelection(fraction, decay, payload_bits, bandwidth_hz),
            HelcflDvfsPolicy(),
        )
    if key == "helcfl-nodvfs":
        return (
            GreedyDecaySelection(fraction, decay, payload_bits, bandwidth_hz),
            MaxFrequencyPolicy(),
        )
    if key == "classic":
        return RandomSelection(fraction, seed=seed), MaxFrequencyPolicy()
    if key == "fedcs":
        count = fedcs_target_count
        if count is None:
            count = selection_count(len(devices), fraction)
        deadline = fedcs_deadline_for_count(
            devices, payload_bits, bandwidth_hz, count
        )
        return (
            FedCsSelection(
                deadline,
                payload_bits,
                bandwidth_hz,
                candidate_fraction=fedcs_candidate_fraction,
                seed=seed,
            ),
            MaxFrequencyPolicy(),
        )
    if key == "fedl":
        return (
            RandomSelection(fraction, seed=seed),
            FedlClosedFormPolicy(kappa=fedl_kappa),
        )
    if key == "full":
        from repro.fl.strategy import FullParticipation

        return FullParticipation(), MaxFrequencyPolicy()
    raise ConfigurationError(
        f"unknown strategy {name!r}; expected one of {_STRATEGIES} (or 'sl' "
        "via repro.experiments.runner)"
    )


def strategy_labels() -> Dict[str, str]:
    """Human-readable labels used in reports."""
    return {
        "helcfl": "HELCFL",
        "helcfl-nodvfs": "HELCFL (no DVFS)",
        "classic": "Classic FL",
        "fedcs": "FedCS",
        "fedl": "FEDL",
        "full": "Full participation",
        "sl": "SL",
    }
