"""Seeded random-number-generation helpers.

All stochastic components of the library (synthetic data generation,
dataset partitioning, device-fleet heterogeneity, random user
selection, channel fading, model initialization) draw from
:class:`numpy.random.Generator` instances produced here, so an
experiment seeded once is reproducible bit-for-bit.

The helpers accept either an integer seed, an existing ``Generator``
(returned unchanged), or ``None`` (fresh OS entropy), which lets public
APIs expose a single ``seed`` argument with natural semantics.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "ensure_generator", "spawn_generators", "derive_seed"]

SeedLike = Union[int, np.random.Generator, None]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Args:
        seed: an ``int`` seed, an existing generator (returned as-is),
            or ``None`` for a generator seeded from OS entropy.

    Returns:
        A numpy random generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list:
    """Split ``seed`` into ``count`` statistically independent generators.

    Uses numpy's ``SeedSequence.spawn`` machinery (via ``Generator.spawn``
    when available) so the children do not overlap even for adjacent
    integer seeds.

    Args:
        seed: parent seed or generator.
        count: number of child generators, must be non-negative.

    Returns:
        A list of ``count`` independent generators.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_generator(seed)
    try:
        return list(parent.spawn(count))
    except AttributeError:  # numpy < 1.25 fallback
        seeds = parent.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: SeedLike, *tags: str) -> int:
    """Derive a deterministic integer sub-seed from ``seed`` and tags.

    Useful when a component needs a stable seed for a named purpose
    (e.g. ``derive_seed(base, "partition", "noniid")``) without
    consuming draws from a shared generator.

    Args:
        seed: base seed; generators contribute one 63-bit draw.
        *tags: string labels mixed into the derived seed.

    Returns:
        A non-negative integer seed.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        base = int(seed)
    mixed = base & 0x7FFFFFFFFFFFFFFF
    for tag in tags:
        for ch in tag:
            mixed = (mixed * 1099511628211 + ord(ch)) & 0x7FFFFFFFFFFFFFFF
    return mixed
