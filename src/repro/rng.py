"""Seeded random-number-generation helpers.

All stochastic components of the library (synthetic data generation,
dataset partitioning, device-fleet heterogeneity, random user
selection, channel fading, model initialization) draw from
:class:`numpy.random.Generator` instances produced here, so an
experiment seeded once is reproducible bit-for-bit.

The helpers accept either an integer seed, an existing ``Generator``
(returned unchanged), or ``None`` (fresh OS entropy), which lets public
APIs expose a single ``seed`` argument with natural semantics.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "SeedLike",
    "ensure_generator",
    "spawn_generators",
    "derive_seed",
    "generator_state",
    "restore_generator",
]

SeedLike = Union[int, np.random.Generator, None]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Args:
        seed: an ``int`` seed, an existing generator (returned as-is),
            or ``None`` for a generator seeded from OS entropy.

    Returns:
        A numpy random generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list:
    """Split ``seed`` into ``count`` statistically independent generators.

    Uses numpy's ``SeedSequence.spawn`` machinery (via ``Generator.spawn``
    when available) so the children do not overlap even for adjacent
    integer seeds.

    Args:
        seed: parent seed or generator.
        count: number of child generators, must be non-negative.

    Returns:
        A list of ``count`` independent generators.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_generator(seed)
    try:
        return list(parent.spawn(count))
    except AttributeError:  # numpy < 1.25 fallback
        seeds = parent.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: SeedLike, *tags: str) -> int:
    """Derive a deterministic integer sub-seed from ``seed`` and tags.

    Useful when a component needs a stable seed for a named purpose
    (e.g. ``derive_seed(base, "partition", "noniid")``) without
    consuming draws from a shared generator.

    Args:
        seed: base seed; generators contribute one 63-bit draw.
        *tags: string labels mixed into the derived seed.

    Returns:
        A non-negative integer seed.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        base = int(seed)
    mixed = base & 0x7FFFFFFFFFFFFFFF
    for tag in tags:
        for ch in tag:
            mixed = (mixed * 1099511628211 + ord(ch)) & 0x7FFFFFFFFFFFFFFF
    return mixed


def generator_state(generator: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as plain data.

    The returned dict is exactly ``generator.bit_generator.state`` —
    JSON-serializable (bit-generator name, arbitrary-precision Python
    ints) and restorable without loss via :func:`restore_generator`, so
    checkpoints can freeze and resume a stream mid-sequence.
    """
    return generator.bit_generator.state


def restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` snapshot.

    The restored generator continues the stream from exactly where the
    snapshot was taken: the next draw matches what the original
    generator would have produced.
    """
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in state snapshot")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
