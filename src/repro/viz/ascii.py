"""ASCII renderers for curves, bars, and TDMA timelines."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.tdma import RoundTimeline

__all__ = ["ascii_curves", "ascii_bars", "ascii_timeline"]

_DEFAULT_SYMBOLS = "HCFESABDGIJKLMNOPQRTUVWXYZ"


def ascii_curves(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    y_max: float = 1.0,
    symbols: Optional[Dict[str, str]] = None,
    y_label: str = "",
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Later-listed series are drawn on top where cells collide; the
    y-axis spans ``[0, y_max]``.

    Args:
        series: mapping from series name to its points.
        width: chart width in characters.
        height: chart height in rows.
        y_max: top of the y-axis.
        symbols: plotting character per series; defaults to the first
            letter of each name (disambiguated in listing order).
        y_label: optional axis label printed above the chart.

    Returns:
        The chart as a multi-line string (includes a legend).
    """
    if width <= 0 or height <= 1:
        raise ConfigurationError(
            f"width must be positive and height >= 2, got {width}x{height}"
        )
    if y_max <= 0:
        raise ConfigurationError(f"y_max must be positive, got {y_max}")
    if not series:
        raise ConfigurationError("need at least one series")

    x_max = max(
        (point[0] for points in series.values() for point in points),
        default=1.0,
    )
    x_max = max(x_max, 1e-12)

    if symbols is None:
        symbols = {}
        used = set()
        for index, name in enumerate(series):
            candidate = name[:1].upper() or "?"
            if candidate in used:
                candidate = _DEFAULT_SYMBOLS[index % len(_DEFAULT_SYMBOLS)]
            symbols[name] = candidate
            used.add(candidate)

    grid = [[" "] * width for _ in range(height)]
    for name, points in series.items():
        symbol = symbols.get(name, "?")
        for x, y in points:
            col = min(width - 1, max(0, int(x / x_max * (width - 1))))
            clamped = min(max(y, 0.0), y_max)
            row = min(
                height - 1, max(0, int((1.0 - clamped / y_max) * (height - 1)))
            )
            grid[row][col] = symbol

    lines: List[str] = []
    if y_label:
        lines.append(f"  {y_label}")
    for row in range(height):
        value = y_max * (1.0 - row / (height - 1))
        lines.append(f"  {value:7.2f} |" + "".join(grid[row]))
    lines.append("          +" + "-" * width)
    lines.append(f"           x: 0 .. {x_max:g}")
    legend = "  ".join(f"{symbols[name]}={name}" for name in series)
    lines.append(f"           {legend}")
    return "\n".join(lines)


def ascii_bars(
    entries: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars scaled to the maximum.

    Args:
        entries: ``(label, value)`` pairs; values must be non-negative.
        width: bar width of the largest value.
        unit: unit suffix printed after each value.

    Returns:
        The chart as a multi-line string.
    """
    if not entries:
        raise ConfigurationError("need at least one bar")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if any(value < 0 for _, value in entries):
        raise ConfigurationError("bar values must be non-negative")
    peak = max(value for _, value in entries)
    label_width = max(len(label) for label, _ in entries)
    lines = []
    for label, value in entries:
        length = 0 if peak == 0 else int(round(value / peak * width))
        bar = "#" * length
        lines.append(f"  {label:<{label_width}} |{bar:<{width}}| {value:g}{unit}")
    return "\n".join(lines)


def ascii_timeline(timeline: RoundTimeline, width: int = 72) -> str:
    """Render a TDMA round as per-user compute/slack/upload bars.

    ``#`` marks compute, ``.`` slack (waiting for the channel), ``U``
    upload; one row per user in channel-grant order.
    """
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if timeline.round_delay <= 0:
        raise ConfigurationError("timeline has non-positive round delay")
    scale = width / timeline.round_delay
    lines = []
    for entry in timeline.users:
        compute = int(round(entry.compute_end * scale))
        slack = int(round(entry.slack * scale))
        upload = max(1, int(round(entry.upload_delay * scale)))
        bar = ("#" * compute + "." * slack + "U" * upload)[:width]
        lines.append(
            f"  user {entry.device_id:3d} |{bar:<{width}}| "
            f"f={entry.frequency / 1e9:.2f}GHz slack={entry.slack:.2f}s"
        )
    lines.append(f"  {'':10}('#' compute, '.' slack/wait, 'U' upload)")
    return "\n".join(lines)
