"""Terminal (ASCII) visualization of experiment artifacts.

The offline counterpart of the paper's figures: multi-series accuracy
curves (Fig. 2), horizontal bar charts (Fig. 3), and TDMA round
timelines (Fig. 1), all rendered as plain text for terminals and logs.
"""

from repro.viz.ascii import ascii_bars, ascii_curves, ascii_timeline

__all__ = ["ascii_curves", "ascii_bars", "ascii_timeline"]
