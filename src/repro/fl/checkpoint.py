"""Atomic, checksummed trainer checkpoints.

A checkpoint freezes everything the training loop mutates across
rounds — global model parameters, the energy ledger, battery charges,
channel gains, the selection strategy's counters/RNG streams, the
plateau detector, and the history so far — so a killed run resumes
from its last checkpoint bitwise-identical to an uninterrupted one.

File format (version :data:`CHECKPOINT_VERSION`)::

    {"schema": "repro.trainer-checkpoint", "version": 1,
     "sha256": "<hex digest of the canonical state JSON>",
     "state": {...}}

Design rules:

* **Exactness.** Floats round-trip through JSON exactly (``repr``
  shortest round-trip); numpy arrays are stored as base64 of their
  little-endian bytes plus dtype/shape, so restored parameters are
  bitwise equal to the captured ones.
* **Atomicity.** :func:`save_checkpoint` writes to a temporary file in
  the target directory, fsyncs, then ``os.replace``\\ s into place — a
  ``SIGKILL`` mid-write leaves either the previous checkpoint or none,
  never a torn one.
* **Self-verification.** The sha256 over the canonical state JSON lets
  :func:`load_checkpoint` reject truncated or bit-rotted files with a
  :class:`~repro.errors.SerializationError`; callers then fall back to
  trace reconstruction (see :mod:`repro.campaign.resume`).
* **Versioning.** Any change to the state layout must bump
  :data:`CHECKPOINT_VERSION` (see CONTRIBUTING); loaders reject
  versions they do not know instead of guessing.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import SerializationError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "TrainerCheckpoint",
    "encode_array",
    "decode_array",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.trainer-checkpoint"
CHECKPOINT_VERSION = 1


def encode_array(array: np.ndarray) -> dict:
    """Lossless JSON encoding of a numpy array (little-endian bytes)."""
    contiguous = np.ascontiguousarray(array)
    little = contiguous.astype(contiguous.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": base64.b64encode(little.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild an array from :func:`encode_array` output, bitwise."""
    try:
        dtype = np.dtype(payload["dtype"])
        raw = base64.b64decode(payload["data"])
        array = np.frombuffer(raw, dtype=dtype.newbyteorder("<"))
        return array.astype(dtype, copy=True).reshape(payload["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed array payload: {exc}") from exc


@dataclass(eq=False)
class TrainerCheckpoint:
    """Frozen mid-run trainer state, captured at a round boundary.

    Attributes:
        round_index: last fully completed round (1-based); resuming
            continues with ``round_index + 1``.
        label: the run's history label.
        strategy_class: class name of the selection strategy the
            snapshot belongs to — resuming under a different strategy
            is refused rather than silently wrong.
        model_params: flat global model parameters after aggregation.
        history: ``TrainingHistory.to_dict()`` of the rounds so far.
        cumulative_time: simulated clock, seconds.
        cumulative_energy: total energy, joules.
        ledger: per-device energy totals plus ``rounds_recorded``.
        batteries: remaining charge (J) per battery-backed device id.
        channel_gains: current channel gain per device id.
        selection_state: the strategy's ``state_dict()``.
        plateau: plateau-detector state (best/stale_count/converged),
            None when convergence checking is off.
        best_model_params: best-accuracy model snapshot (None unless
            ``keep_best_model`` captured one).
        best_model_accuracy: accuracy of ``best_model_params``.
    """

    round_index: int
    label: str
    strategy_class: str
    model_params: np.ndarray
    history: dict
    cumulative_time: float
    cumulative_energy: float
    ledger: dict
    batteries: Dict[int, float]
    channel_gains: Dict[int, float]
    selection_state: dict = field(default_factory=dict)
    plateau: Optional[dict] = None
    best_model_params: Optional[np.ndarray] = None
    best_model_accuracy: float = 0.0

    def to_state(self) -> dict:
        """The JSON-ready ``state`` payload (arrays encoded)."""
        return {
            "round_index": self.round_index,
            "label": self.label,
            "strategy_class": self.strategy_class,
            "model_params": encode_array(self.model_params),
            "history": self.history,
            "cumulative_time": self.cumulative_time,
            "cumulative_energy": self.cumulative_energy,
            "ledger": self.ledger,
            "batteries": {
                str(device_id): charge
                for device_id, charge in sorted(self.batteries.items())
            },
            "channel_gains": {
                str(device_id): gain
                for device_id, gain in sorted(self.channel_gains.items())
            },
            "selection_state": self.selection_state,
            "plateau": self.plateau,
            "best_model_params": (
                encode_array(self.best_model_params)
                if self.best_model_params is not None
                else None
            ),
            "best_model_accuracy": self.best_model_accuracy,
        }

    @classmethod
    def from_state(cls, state: dict) -> TrainerCheckpoint:
        """Rebuild a checkpoint from :meth:`to_state` output."""
        try:
            best = state.get("best_model_params")
            return cls(
                round_index=int(state["round_index"]),
                label=str(state["label"]),
                strategy_class=str(state["strategy_class"]),
                model_params=decode_array(state["model_params"]),
                history=dict(state["history"]),
                cumulative_time=float(state["cumulative_time"]),
                cumulative_energy=float(state["cumulative_energy"]),
                ledger=dict(state["ledger"]),
                batteries={
                    int(device_id): float(charge)
                    for device_id, charge in state["batteries"].items()
                },
                channel_gains={
                    int(device_id): float(gain)
                    for device_id, gain in state["channel_gains"].items()
                },
                selection_state=dict(state.get("selection_state", {})),
                plateau=state.get("plateau"),
                best_model_params=(
                    decode_array(best) if best is not None else None
                ),
                best_model_accuracy=float(
                    state.get("best_model_accuracy", 0.0)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SerializationError):
                raise
            raise SerializationError(
                f"malformed checkpoint state: {exc}"
            ) from exc


def _canonical(state: dict) -> str:
    """The canonical JSON text the checksum is computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def save_checkpoint(path: str, checkpoint: TrainerCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path``.

    The temporary file lives in the destination directory so the final
    ``os.replace`` stays within one filesystem and is atomic; a crash
    at any point leaves the previous checkpoint (or nothing) intact.
    """
    state = checkpoint.to_state()
    canonical = _canonical(state)
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "version": CHECKPOINT_VERSION,
        "sha256": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "state": state,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> TrainerCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Raises:
        SerializationError: the file is not valid JSON, carries an
            unknown schema/version, fails its checksum (torn or
            bit-rotted), or decodes into a malformed state.
        FileNotFoundError: no checkpoint exists at ``path``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict) or document.get("schema") != (
        CHECKPOINT_SCHEMA
    ):
        raise SerializationError(
            f"checkpoint {path} has schema "
            f"{document.get('schema') if isinstance(document, dict) else None!r},"
            f" expected {CHECKPOINT_SCHEMA!r}"
        )
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise SerializationError(
            f"checkpoint {path} has version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION} only"
        )
    state = document.get("state")
    if not isinstance(state, dict):
        raise SerializationError(f"checkpoint {path} carries no state")
    digest = hashlib.sha256(
        _canonical(state).encode("utf-8")
    ).hexdigest()
    if digest != document.get("sha256"):
        raise SerializationError(
            f"checkpoint {path} failed its checksum (torn write or "
            "corruption)"
        )
    return TrainerCheckpoint.from_state(state)
