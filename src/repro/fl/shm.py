"""Zero-copy shared-memory transport for the process-pool backend.

:class:`ProcessPoolBackend` pickles the broadcast flat vector into every
task and pickles every trained vector back — ``2 * Q * P * 8`` bytes of
serialization per round for ``Q`` selected clients and ``P`` parameters.
This module removes both copies:

* the trainer writes the broadcast vector once into a shared
  ``multiprocessing.shared_memory`` block; workers map it read-only;
* each worker trains and writes its result directly into a preallocated
  per-client slot of a shared result block;
* a task therefore carries only scalars — ``(round_index,
  learning_rate, device_id, slot, weight, result_block_name)`` — and a
  result only ``(device_id, slot, weight, loss)``.

Datasets stay resident in worker state across rounds exactly as in the
plain process pool.

Lifecycle: :class:`SharedArrayPool` creates the broadcast block when the
backend binds, grows the result block on demand (generation-numbered
names, old generations unlinked immediately), and unlinks everything on
``close()``. ``__del__`` and an ``atexit`` hook unlink best-effort so an
abandoned backend cannot leak ``/dev/shm`` segments past interpreter
exit.
"""

from __future__ import annotations

import atexit
import itertools
import os
from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, TrainingError
from repro.fl.execution import (
    ClientUpdate,
    ExecutionBackend,
    LocalUpdateSpec,
    _check_workers,
    _map_chunksize,
    _train_one,
)
from repro.nn.model import Sequential
from repro.obs.spans import begin_task_sample, end_task_sample

__all__ = ["SharedArrayPool", "SharedMemoryProcessPoolBackend"]

_FLOAT_BYTES = 8  # float64 throughout, matching get_flat_params

_pool_counter = itertools.count()


def _unique_base() -> str:
    """Return a per-pool unique shared-memory name stem.

    The pid keeps concurrently running trainers apart; the counter keeps
    sequential pools within one process apart.
    """
    return f"repro{os.getpid()}x{next(_pool_counter)}"


class SharedArrayPool:
    """Owns the shared blocks one backend instance rounds-trips through.

    One *broadcast block* holds the global flat vector (written by the
    parent each round, mapped read-only by workers). One *result block*
    holds ``slots`` contiguous flat vectors, one per selected client;
    it is created lazily at the first round and regrown (fresh
    generation name, old block unlinked) when a round selects more
    clients than any round before.

    Args:
        param_count: flat-vector length ``P`` (float64 entries).
    """

    def __init__(self, param_count: int) -> None:
        if param_count < 0:
            raise ConfigurationError(
                f"param_count must be non-negative, got {param_count}"
            )
        self.param_count = int(param_count)
        self._base = _unique_base()
        self._broadcast: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(
                create=True,
                size=max(self.param_count * _FLOAT_BYTES, 1),
                name=f"{self._base}bc",
            )
        )
        self._result: Optional[shared_memory.SharedMemory] = None
        self._result_slots = 0
        self._generation = 0
        self._closed = False
        atexit.register(self.close)

    # -- parent-side views ---------------------------------------------
    @property
    def broadcast_name(self) -> str:
        """Shared-memory name of the broadcast block."""
        self._check_open()
        return self._broadcast.name

    @property
    def result_name(self) -> str:
        """Name of the current result block (empty before first round)."""
        return self._result.name if self._result is not None else ""

    def broadcast_view(self) -> np.ndarray:
        """Writable 1-D float64 view of the broadcast block."""
        self._check_open()
        return np.ndarray(
            (self.param_count,), dtype=np.float64, buffer=self._broadcast.buf
        )

    def ensure_result_slots(self, slots: int) -> str:
        """Grow the result block to hold ``slots`` vectors; return its name.

        Growth allocates a fresh generation-named block and unlinks the
        previous one immediately (attached workers keep their mapping
        alive until they attach the new name).
        """
        self._check_open()
        if slots <= 0:
            return self.result_name
        if self._result is None or slots > self._result_slots:
            if self._result is not None:
                self._result.close()
                self._result.unlink()
            self._generation += 1
            self._result = shared_memory.SharedMemory(
                create=True,
                size=max(slots * self.param_count * _FLOAT_BYTES, 1),
                name=f"{self._base}r{self._generation}",
            )
            self._result_slots = slots
        return self._result.name

    def result_view(self, slots: int) -> np.ndarray:
        """Float64 view ``(slots, param_count)`` of the result block."""
        self._check_open()
        if self._result is None or slots > self._result_slots:
            raise TrainingError(
                f"result block holds {self._result_slots} slots, "
                f"requested {slots}"
            )
        return np.ndarray(
            (slots, self.param_count),
            dtype=np.float64,
            buffer=self._result.buf,
        )

    # -- lifecycle ------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise TrainingError("SharedArrayPool is closed")

    def close(self) -> None:
        """Unlink every owned block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for segment in (self._broadcast, self._result):
            if segment is not None:
                try:
                    segment.close()
                    segment.unlink()
                except (FileNotFoundError, OSError):
                    pass
        self._broadcast = None
        self._result = None
        self._result_slots = 0

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# -- worker plumbing (module level for picklability) -------------------
_SHM_WORKER_STATE: dict = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach (and cache) a parent-owned shared block by name.

    Attaching normally registers the segment with the resource tracker,
    which would make worker exits unlink (or warn about) blocks they
    merely mapped (CPython issue bpo-38119). The parent alone owns
    unlinking, so registration is suppressed for the duration of the
    attach (Python 3.13's ``track=False``, backported by monkeypatch).
    """
    cache = _SHM_WORKER_STATE["segments"]
    segment = cache.get(name)
    if segment is None:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        cache[name] = segment
    return segment


def _prune_stale_results(current_name: str) -> None:
    """Drop cached mappings of superseded result-block generations."""
    cache = _SHM_WORKER_STATE["segments"]
    stale = [
        name
        for name in cache
        if name != current_name
        and name != _SHM_WORKER_STATE["broadcast_name"]
    ]
    for name in stale:
        try:
            cache.pop(name).close()
        except Exception:
            pass


def _shm_worker_init(
    model: Sequential,
    spec: LocalUpdateSpec,
    datasets: dict,
    broadcast_name: str,
    param_count: int,
    log_level=None,
) -> None:
    """Build one worker's scratch model, dataset cache, and shm state.

    Deliberate process-pool initializer pattern: each pool *process*
    runs this exactly once, before any task, so its copy of
    ``_SHM_WORKER_STATE`` is populated single-threaded. ``log_level``
    re-applies the parent's logging configuration so worker-side
    warnings surface on stderr.
    """
    if log_level is not None:
        from repro.obs import configure_logging

        configure_logging(log_level)
    _SHM_WORKER_STATE["scratch"] = model  # repro: allow[REP005] per-process init, pre-task
    _SHM_WORKER_STATE["spec"] = spec  # repro: allow[REP005] per-process init, pre-task
    _SHM_WORKER_STATE["datasets"] = datasets  # repro: allow[REP005] per-process init, pre-task
    _SHM_WORKER_STATE["broadcast_name"] = broadcast_name  # repro: allow[REP005] per-process init, pre-task
    _SHM_WORKER_STATE["param_count"] = param_count  # repro: allow[REP005] per-process init, pre-task
    _SHM_WORKER_STATE["segments"] = {}  # repro: allow[REP005] per-process init, pre-task


def _shm_worker_run(task):
    """Train one client; parameters move only through shared memory."""
    (
        round_index,
        learning_rate,
        device_id,
        slot,
        weight,
        result_name,
        dataset,
        sample,
    ) = task
    state = _SHM_WORKER_STATE
    if dataset is None:
        dataset = state["datasets"][device_id]
    token = begin_task_sample() if sample else None
    count = state["param_count"]
    broadcast = _attach_segment(state["broadcast_name"])
    global_params = np.ndarray(
        (count,), dtype=np.float64, buffer=broadcast.buf
    )
    global_params.flags.writeable = False
    result = _attach_segment(result_name)
    _prune_stale_results(result_name)
    slot_view = np.ndarray(
        (count,),
        dtype=np.float64,
        buffer=result.buf,
        offset=slot * count * _FLOAT_BYTES,
    )
    update = _train_one(
        state["scratch"],
        state["spec"],
        round_index,
        learning_rate,
        global_params,
        device_id,
        dataset,
        weight,
        params_out=slot_view,
    )
    # The resource sample is taken in the *worker* process and returns
    # with the scalar result tuple; parameters stay in shared memory.
    taken = end_task_sample(token) if token is not None else None
    return update.device_id, slot, update.weight, update.loss, taken


class SharedMemoryProcessPoolBackend(ExecutionBackend):
    """Process pool whose parameter traffic runs through shared memory.

    Bitwise equivalent to every other backend: workers read the exact
    broadcast float64 vector the parent wrote and the parent reads back
    the exact trained vectors, so a fixed seed reproduces the identical
    history and ledger.

    Args:
        workers: pool size; ``None`` uses ``os.cpu_count()``.
        log_level: when given, each worker process re-applies this
            logging level at pool start-up.
    """

    name = "process+shm"

    def __init__(
        self, workers: Optional[int] = None, log_level=None
    ) -> None:
        super().__init__()
        self.workers = _check_workers(workers)
        self.log_level = log_level
        self._pool = None
        self._shm: Optional[SharedArrayPool] = None
        self._known_ids: set = set()

    def _bind(
        self,
        model_template: Sequential,
        spec: LocalUpdateSpec,
        devices: Sequence[UserDevice],
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        self.close()
        datasets = {d.device_id: d.dataset for d in devices}
        self._known_ids = set(datasets)
        self._shm = SharedArrayPool(model_template.parameter_count)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_shm_worker_init,
            initargs=(
                model_template.clone(),
                spec,
                datasets,
                self._shm.broadcast_name,
                self._shm.param_count,
                self.log_level,
            ),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def _run(self, round_index, global_params, selected, learning_rate):
        if self._pool is None:
            raise TrainingError(
                "SharedMemoryProcessPoolBackend is closed; re-bind it"
            )
        if not selected:
            return []
        sampling = self._sample_tasks
        shm = self._shm
        shm.broadcast_view()[...] = np.asarray(
            global_params, dtype=np.float64
        ).ravel()
        result_name = shm.ensure_result_slots(len(selected))
        tasks = [
            (
                round_index,
                learning_rate,
                device.device_id,
                slot,
                float(device.num_samples),
                result_name,
                None if device.device_id in self._known_ids else device.dataset,
                sampling,
            )
            for slot, device in enumerate(selected)
        ]
        results = list(
            self._pool.map(
                _shm_worker_run,
                tasks,
                chunksize=_map_chunksize(len(tasks), self.workers),
            )
        )
        slots = shm.result_view(len(selected))
        updates = []
        for device_id, slot, weight, loss, sample in results:
            updates.append(
                ClientUpdate(
                    device_id=device_id,
                    # Copy out of the shared slot: the block is reused
                    # next round, while the update may outlive it
                    # (history, compression, aggregation buffers).
                    params=slots[slot].copy(),
                    weight=weight,
                    loss=loss,
                )
            )
            if sampling:
                self._task_samples.append((device_id, sample))
        return updates
