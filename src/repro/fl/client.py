"""Local client training (the paper's Eq. 3).

Each selected user updates the broadcast model on its own data with
gradient descent. The paper's local update is a single full-batch GD
step per round (Eq. 3) — this is what makes the FedAvg round exactly
equivalent to a centralized step on the selected users' pooled data
(Eq. 19). The trainer also supports multiple local steps and
mini-batching as FedAvg-style extensions.
"""

from __future__ import annotations

from typing import Optional

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigurationError, TrainingError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optimizers import Sgd
from repro.rng import SeedLike, ensure_generator

__all__ = ["LocalTrainer"]


class LocalTrainer:
    """Runs a user's local model update.

    Args:
        learning_rate: GD learning rate ``tau``.
        local_steps: gradient steps per round (paper: 1).
        batch_size: mini-batch size; ``None`` (paper setting) uses the
            full local dataset every step, i.e. exact Eq. (3).
        loss: loss object exposing ``loss_and_grad``; defaults to
            softmax cross-entropy.
        max_grad_norm: optional global-norm gradient clipping applied
            before each update (stabilizes training on pathological
            non-IID shards); ``None`` (paper setting) disables it.
        seed: seed for mini-batch sampling (unused in full-batch mode).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        local_steps: int = 1,
        batch_size: Optional[int] = None,
        loss=None,
        max_grad_norm: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if local_steps <= 0:
            raise ConfigurationError(
                f"local_steps must be positive, got {local_steps}"
            )
        if batch_size is not None and batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive when given, got {batch_size}"
            )
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ConfigurationError(
                f"max_grad_norm must be positive when given, got {max_grad_norm}"
            )
        self.learning_rate = float(learning_rate)
        self.local_steps = int(local_steps)
        self.batch_size = batch_size
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.max_grad_norm = max_grad_norm
        self._rng = ensure_generator(seed)

    def _clip_gradients(self, model: Sequential) -> None:
        """Scale all gradient buffers so their global norm fits."""
        if self.max_grad_norm is None:
            return
        total = 0.0
        for layer in model.layers:
            for grad in layer.grads.values():
                total += float((grad**2).sum())
        norm = total**0.5
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for layer in model.layers:
                for grad in layer.grads.values():
                    grad *= scale

    def train(self, model: Sequential, dataset: ArrayDataset) -> float:
        """Update ``model`` in place on ``dataset``; return the last loss.

        Args:
            model: the model holding the freshly broadcast global
                parameters; mutated in place.
            dataset: the user's local dataset ``D_q``.

        Returns:
            The training loss of the final gradient step (before that
            step's update is applied).

        Raises:
            TrainingError: if the dataset is empty.
        """
        if len(dataset) == 0:
            raise TrainingError("cannot run a local update on an empty dataset")
        # Without clipping the update is plain p -= lr * g, so the fused
        # in-place Sequential.sgd_step (bitwise identical to Sgd.step
        # with zero weight decay) skips the optimizer object entirely.
        fused = self.max_grad_norm is None
        optimizer = None if fused else Sgd(self.learning_rate)
        last_loss = 0.0
        for _ in range(self.local_steps):
            if self.batch_size is None:
                inputs, labels = dataset.inputs, dataset.labels
            else:
                take = min(self.batch_size, len(dataset))
                batch = self._rng.choice(len(dataset), size=take, replace=False)
                inputs, labels = dataset.inputs[batch], dataset.labels[batch]
            outputs = model.forward(inputs, training=True)
            last_loss, grad = self.loss.loss_and_grad(outputs, labels)
            model.backward(grad)
            if fused:
                model.sgd_step(self.learning_rate)
            else:
                self._clip_gradients(model)
                optimizer.step(model)
        return float(last_loss)
