"""Pluggable client-execution backends for the round loop.

The simulated MEC devices are independent: each selected user's local
update (Eq. 3) depends only on the broadcast parameters and its own
dataset. The trainer therefore delegates the per-round fan-out to an
:class:`ExecutionBackend`:

* :class:`SerialBackend` — one shared scratch model, clients in
  selection order (the original loop);
* :class:`ThreadPoolBackend` — a thread pool with one scratch model
  per worker thread; numpy releases the GIL inside BLAS calls, so the
  matmul-heavy forward/backward passes genuinely overlap;
* :class:`ProcessPoolBackend` — a process pool whose workers each
  build their own scratch model and cache the device datasets at pool
  start-up, so a round only ships ``(device_id, learning_rate,
  global_params)`` per task;
* ``SharedMemoryProcessPoolBackend`` (:mod:`repro.fl.shm`, registry
  name ``"process+shm"``) — the process pool plus
  :class:`~repro.fl.shm.SharedArrayPool`: broadcast and trained
  parameter vectors travel through ``multiprocessing.shared_memory``
  blocks, so a round pickles only scalars per task.

All backends are *bitwise equivalent*: every client trains on its own
model clone starting from the same broadcast vector, mini-batch
sampling (when enabled) draws from a per-``(round, device)`` derived
seed rather than a shared generator, and results are returned in
selection order. A fixed seed therefore produces the identical
:class:`~repro.fl.history.TrainingHistory` under any backend.

The round exchange is typed: a backend returns one
:class:`ClientUpdate` per client, and the trainer wraps them into a
:class:`RoundResult` consumed by compression, battery enforcement, the
energy ledger, and history recording.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.device import UserDevice
from repro.errors import ConfigurationError, TrainingError
from repro.fl.client import LocalTrainer
from repro.nn.model import Sequential
from repro.obs.spans import (
    TaskSpanContext,
    begin_task_sample,
    emit_task_span,
    end_task_sample,
)
from repro.rng import derive_seed

__all__ = [
    "STATUS_OK",
    "STATUS_DROPPED",
    "STATUS_TIMEOUT",
    "ClientUpdate",
    "RoundResult",
    "LocalUpdateSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "create_backend",
]


# ----------------------------------------------------------------------
# Round data containers
# ----------------------------------------------------------------------
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"
STATUS_TIMEOUT = "timeout"
"""Client round outcomes (shared vocabulary with the TDMA timeline)."""


@dataclass(frozen=True)
class ClientUpdate:
    """One client's contribution to a round.

    Attributes:
        device_id: the uploading user ``q``.
        params: the flat parameter vector the server aggregates — the
            raw trained vector, or the lossy reconstruction when a
            compression pipeline processed the upload.
        weight: the FedAvg weight ``|D_q|``.
        loss: the client's observed training loss (fed back to
            statistical-utility selection strategies).
        payload_bits: actual transmitted bits when compression ran;
            ``None`` means the nominal ``C_model`` payload applies.
        status: the round outcome — ``"ok"`` reached the server,
            ``"dropped"`` lost to a fault or battery, ``"timeout"``
            cut off by the round deadline. Only ``"ok"`` updates are
            aggregated.
    """

    device_id: int
    params: np.ndarray
    weight: float
    loss: float
    payload_bits: Optional[float] = None
    status: str = STATUS_OK

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_DROPPED, STATUS_TIMEOUT):
            raise ConfigurationError(
                f"status must be one of ('{STATUS_OK}', '{STATUS_DROPPED}', "
                f"'{STATUS_TIMEOUT}'), got {self.status!r}"
            )


@dataclass(frozen=True)
class RoundResult:
    """All client updates of one round, in selection order.

    The container is what battery enforcement filters, the aggregation
    step consumes, and history recording reads — replacing the five
    parallel lists the old ``_run_clients`` returned.
    """

    round_index: int
    updates: Tuple[ClientUpdate, ...]

    def __post_init__(self) -> None:
        if self.round_index <= 0:
            raise ConfigurationError(
                f"round_index must be positive, got {self.round_index}"
            )

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[ClientUpdate]:
        return iter(self.updates)

    def __bool__(self) -> bool:
        return bool(self.updates)

    @property
    def device_ids(self) -> Tuple[int, ...]:
        """Uploading device ids, in selection order."""
        return tuple(u.device_id for u in self.updates)

    @property
    def params(self) -> List[np.ndarray]:
        """The flat parameter vectors, in selection order."""
        return [u.params for u in self.updates]

    @property
    def weights(self) -> List[float]:
        """The matching FedAvg weights."""
        return [u.weight for u in self.updates]

    @property
    def losses(self) -> Dict[int, float]:
        """Mapping from device id to observed training loss."""
        return {u.device_id: u.loss for u in self.updates}

    @property
    def payloads(self) -> Dict[int, float]:
        """Actual transmitted bits per device (compressed uploads only)."""
        return {
            u.device_id: u.payload_bits
            for u in self.updates
            if u.payload_bits is not None
        }

    def drop(self, device_ids) -> RoundResult:
        """Return a copy without the given devices' updates."""
        dropped = set(device_ids)
        return replace(
            self,
            updates=tuple(
                u for u in self.updates if u.device_id not in dropped
            ),
        )

    # -- degraded-round helpers ----------------------------------------
    def with_statuses(self, statuses: Dict[int, str]) -> RoundResult:
        """Return a copy with per-device statuses applied.

        Devices absent from ``statuses`` keep their current status;
        when nothing changes the result is ``self`` (so the faults-off
        path shares the exact same object).
        """
        if all(
            statuses.get(u.device_id, u.status) == u.status
            for u in self.updates
        ):
            return self
        return replace(
            self,
            updates=tuple(
                replace(u, status=statuses[u.device_id])
                if statuses.get(u.device_id, u.status) != u.status
                else u
                for u in self.updates
            ),
        )

    def survivors(self) -> RoundResult:
        """The updates that reached the server (``status == "ok"``).

        Returns ``self`` when every update survived, so an undegraded
        round pays nothing for the filter.
        """
        if all(u.status == STATUS_OK for u in self.updates):
            return self
        return replace(
            self,
            updates=tuple(
                u for u in self.updates if u.status == STATUS_OK
            ),
        )

    def first(self, count: int) -> RoundResult:
        """The first ``count`` updates in selection order.

        The FedCS-style over-selection fallback aggregates the first
        ``N`` survivors of an ``N + margin`` selection; ``self`` is
        returned unchanged when nothing needs trimming.
        """
        if count < 0:
            raise ConfigurationError(
                f"count must be non-negative, got {count}"
            )
        if len(self.updates) <= count:
            return self
        return replace(self, updates=self.updates[:count])

    def ids_with_status(self, status: str) -> Tuple[int, ...]:
        """Device ids carrying ``status``, in selection order."""
        return tuple(
            u.device_id for u in self.updates if u.status == status
        )


@dataclass(frozen=True)
class LocalUpdateSpec:
    """The local-update hyperparameters a backend trains with.

    Attributes mirror :class:`~repro.fl.client.LocalTrainer`; ``seed``
    roots the per-``(round, device)`` mini-batch sampling seeds that
    keep stochastic local updates backend-independent.
    """

    learning_rate: float = 0.1
    local_steps: int = 1
    batch_size: Optional[int] = None
    max_grad_norm: Optional[float] = None
    seed: int = 0

    def make_trainer(
        self, learning_rate: float, round_index: int, device_id: int
    ) -> LocalTrainer:
        """Build the :class:`LocalTrainer` for one client task."""
        return LocalTrainer(
            learning_rate=learning_rate,
            local_steps=self.local_steps,
            batch_size=self.batch_size,
            max_grad_norm=self.max_grad_norm,
            seed=derive_seed(
                self.seed, "minibatch", str(round_index), str(device_id)
            ),
        )


def _train_one(
    scratch: Sequential,
    spec: LocalUpdateSpec,
    round_index: int,
    learning_rate: float,
    global_params: np.ndarray,
    device_id: int,
    dataset,
    weight: float,
    params_out: Optional[np.ndarray] = None,
) -> ClientUpdate:
    """Run one client's local update on a prepared scratch model.

    Args:
        params_out: optional preallocated destination for the trained
            flat vector (a shared-memory slot on the zero-copy path);
            when ``None`` a fresh array is returned.
    """
    scratch.set_flat_params(global_params)
    trainer = spec.make_trainer(learning_rate, round_index, device_id)
    loss_value = trainer.train(scratch, dataset)
    return ClientUpdate(
        device_id=device_id,
        params=scratch.get_flat_params(out=params_out),
        weight=weight,
        loss=loss_value,
    )


# ----------------------------------------------------------------------
# Backend interface
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Fans one round's local updates out across workers.

    Lifecycle: the trainer calls :meth:`bind` once per training run
    (handing over the model template, the local-update spec, and the
    device population), then :meth:`run_round` once per round, and
    :meth:`close` when the backend should release its workers. Backends
    are context managers; ``close`` is idempotent and a closed backend
    can be re-bound.

    Attributes:
        observer: optional :class:`repro.obs.RunObserver`; when set
            (the trainer binds its own), :meth:`run_round` records its
            wall-clock duration under the ``"run_round"`` timer and
            counts trained clients, making backend overhead
            measurable. Purely observational — results are unaffected.
    """

    name = "base"

    def __init__(self) -> None:
        self._spec: Optional[LocalUpdateSpec] = None
        self.observer = None
        # Per-round task-sampling scratch: when the bound observer has
        # spans active, ``_run`` implementations record one
        # ``(device_id, TaskSample)`` pair per client in selection
        # order; ``run_round`` turns them into per-task span events.
        self._sample_tasks = False
        self._task_samples: List[tuple] = []

    # -- lifecycle ------------------------------------------------------
    def bind(
        self,
        model_template: Sequential,
        spec: LocalUpdateSpec,
        devices: Sequence[UserDevice] = (),
    ) -> None:
        """Prepare workers for a training run.

        Args:
            model_template: the global model; workers clone it for
                their scratch copies.
            spec: local-update hyperparameters.
            devices: the full device population (lets pool backends
                pre-ship datasets to workers).
        """
        self._spec = spec
        self._bind(model_template, spec, devices)

    def _bind(
        self,
        model_template: Sequential,
        spec: LocalUpdateSpec,
        devices: Sequence[UserDevice],
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> ExecutionBackend:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        global_params: np.ndarray,
        selected: Sequence[UserDevice],
        learning_rate: float,
    ) -> List[ClientUpdate]:
        """Train every selected client; return updates in selection order.

        Args:
            round_index: 1-based FL round index ``j``.
            global_params: the broadcast flat parameter vector.
            selected: the round's selected user set ``Gamma_j``.
            learning_rate: the round's (possibly decayed) local rate.
        """
        if self._spec is None:
            raise TrainingError(
                f"{type(self).__name__} must be bound before run_round"
            )
        observer = self.observer
        self._sample_tasks = observer is not None and observer.spans_active
        self._task_samples = []
        try:
            if observer is None:
                return self._run(
                    round_index, global_params, selected, learning_rate
                )
            with observer.timer("run_round"):
                updates = self._run(
                    round_index, global_params, selected, learning_rate
                )
            observer.metrics.inc("clients_trained", float(len(updates)))
            if self._task_samples:
                context = TaskSpanContext(
                    parent_id=f"round-{round_index}/local_updates",
                    round_index=round_index,
                )
                for device_id, sample in self._task_samples:
                    emit_task_span(observer, context, device_id, sample)
            return updates
        finally:
            self._sample_tasks = False
            self._task_samples = []

    def _run(
        self,
        round_index: int,
        global_params: np.ndarray,
        selected: Sequence[UserDevice],
        learning_rate: float,
    ) -> List[ClientUpdate]:
        raise NotImplementedError


def _map_chunksize(task_count: int, workers: Optional[int]) -> int:
    """Batch ``Executor.map`` submissions for large fan-outs.

    The default ``chunksize=1`` pays one queue round trip per task,
    which dominates a 10^4-client round. Chunking preserves result
    order, so backend parity is unaffected; small rounds keep
    ``chunksize=1`` so no worker sits idle behind a batch.
    """
    pool_size = workers or os.cpu_count() or 1
    return max(1, min(64, task_count // (pool_size * 4)))


def _check_workers(workers: Optional[int]) -> Optional[int]:
    if workers is not None and workers <= 0:
        raise ConfigurationError(
            f"workers must be positive when given, got {workers}"
        )
    return workers


class SerialBackend(ExecutionBackend):
    """Clients in selection order on one shared scratch model.

    This is the original trainer loop: reusing a single scratch model
    avoids reallocating layer buffers ``Q*C`` times per round.
    """

    name = "serial"

    def __init__(self) -> None:
        super().__init__()
        self._scratch: Optional[Sequential] = None

    def _bind(self, model_template, spec, devices) -> None:
        del devices
        self._scratch = model_template.clone()

    def _run(self, round_index, global_params, selected, learning_rate):
        if not self._sample_tasks:
            return [
                _train_one(
                    self._scratch,
                    self._spec,
                    round_index,
                    learning_rate,
                    global_params,
                    device.device_id,
                    device.dataset,
                    float(device.num_samples),
                )
                for device in selected
            ]
        updates = []
        for device in selected:
            token = begin_task_sample()
            updates.append(
                _train_one(
                    self._scratch,
                    self._spec,
                    round_index,
                    learning_rate,
                    global_params,
                    device.device_id,
                    device.dataset,
                    float(device.num_samples),
                )
            )
            self._task_samples.append(
                (device.device_id, end_task_sample(token))
            )
        return updates


class ThreadPoolBackend(ExecutionBackend):
    """Clients fan out across a thread pool.

    Each worker thread lazily clones its own scratch model
    (thread-local), so concurrent clients never share layer buffers.
    numpy's BLAS kernels drop the GIL, which is where the overlap
    comes from.

    Args:
        workers: pool size; ``None`` uses ``os.cpu_count()``.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        self.workers = _check_workers(workers)
        self._template: Optional[Sequential] = None
        self._pool = None
        self._local = None

    def _bind(self, model_template, spec, devices) -> None:
        del devices
        import threading
        from concurrent.futures import ThreadPoolExecutor

        self.close()
        self._template = model_template.clone()
        self._local = threading.local()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-client"
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._local = None

    def _scratch(self) -> Sequential:
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = self._template.clone()
            self._local.scratch = scratch
        return scratch

    def _run(self, round_index, global_params, selected, learning_rate):
        if self._pool is None:
            raise TrainingError("ThreadPoolBackend is closed; re-bind it")
        sampling = self._sample_tasks

        def task(device: UserDevice):
            token = begin_task_sample() if sampling else None
            update = _train_one(
                self._scratch(),
                self._spec,
                round_index,
                learning_rate,
                global_params,
                device.device_id,
                device.dataset,
                float(device.num_samples),
            )
            return update, (
                end_task_sample(token) if token is not None else None
            )

        results = list(self._pool.map(task, selected))
        if sampling:
            # Collected in map (= selection) order, not completion
            # order, so the emitted span sequence is deterministic.
            self._task_samples.extend(
                (device.device_id, sample)
                for device, (_, sample) in zip(selected, results)
            )
        return [update for update, _ in results]


# -- process-pool worker plumbing (module level for picklability) ------
_WORKER_STATE: dict = {}


def _process_worker_init(
    model: Sequential,
    spec: LocalUpdateSpec,
    datasets,
    log_level=None,
):
    """Build one worker's scratch model and dataset cache.

    The writes below are the deliberate process-pool initializer
    pattern: each pool *process* runs this exactly once, before any
    task, so its copy of ``_WORKER_STATE`` is populated single-threaded
    and never mutated again. ``log_level`` re-applies the parent's
    logging configuration inside the worker process, so warnings
    raised during local updates reach stderr instead of vanishing.
    """
    if log_level is not None:
        from repro.obs import configure_logging

        configure_logging(log_level)
    _WORKER_STATE["scratch"] = model  # repro: allow[REP005] per-process init, pre-task
    _WORKER_STATE["spec"] = spec  # repro: allow[REP005] per-process init, pre-task
    _WORKER_STATE["datasets"] = datasets  # repro: allow[REP005] per-process init, pre-task


def _process_worker_run(task):
    round_index, learning_rate, global_params, device_id, weight, dataset, sample = task
    if dataset is None:
        dataset = _WORKER_STATE["datasets"][device_id]
    token = begin_task_sample() if sample else None
    update = _train_one(
        _WORKER_STATE["scratch"],
        _WORKER_STATE["spec"],
        round_index,
        learning_rate,
        global_params,
        device_id,
        dataset,
        weight,
    )
    # The resource sample is taken in the *worker* process, then rides
    # home with the result (scalars only) for the parent to emit.
    taken = end_task_sample(token) if token is not None else None
    # Pickle-transport fallback path; the zero-copy route is repro.fl.shm.
    return update.device_id, update.params, update.weight, update.loss, taken  # repro: allow[REP007] pickle fallback backend


class ProcessPoolBackend(ExecutionBackend):
    """Clients fan out across a process pool.

    The pool initializer ships the model template, the local-update
    spec, and every bound device's dataset to each worker exactly once;
    a round's tasks then carry only ``(device_id, learning_rate,
    global_params)``. Devices that appear at run time without having
    been bound fall back to shipping their dataset with the task.

    Args:
        workers: pool size; ``None`` uses ``os.cpu_count()``.
        log_level: when given, each worker process re-applies this
            logging level at pool start-up so worker-side warnings
            surface on stderr.
    """

    name = "process"

    def __init__(
        self, workers: Optional[int] = None, log_level=None
    ) -> None:
        super().__init__()
        self.workers = _check_workers(workers)
        self.log_level = log_level
        self._pool = None
        self._known_ids: set = set()

    def _bind(self, model_template, spec, devices) -> None:
        from concurrent.futures import ProcessPoolExecutor

        self.close()
        datasets = {d.device_id: d.dataset for d in devices}
        self._known_ids = set(datasets)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_process_worker_init,
            initargs=(model_template.clone(), spec, datasets, self.log_level),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _run(self, round_index, global_params, selected, learning_rate):
        if self._pool is None:
            raise TrainingError("ProcessPoolBackend is closed; re-bind it")
        sampling = self._sample_tasks
        tasks = [
            (
                round_index,
                learning_rate,
                global_params,  # repro: allow[REP007] pickle fallback backend
                device.device_id,
                float(device.num_samples),
                None if device.device_id in self._known_ids else device.dataset,
                sampling,
            )
            for device in selected
        ]
        updates = []
        for device_id, params, weight, loss, sample in self._pool.map(
            _process_worker_run,
            tasks,
            chunksize=_map_chunksize(len(tasks), self.workers),
        ):
            updates.append(
                ClientUpdate(
                    device_id=device_id,
                    params=params,
                    weight=weight,
                    loss=loss,
                )
            )
            if sampling:
                self._task_samples.append((device_id, sample))
        return updates


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}

# The shm-backed process pool lives in repro.fl.shm (which imports this
# module), so the registry holds its name and create_backend imports it
# lazily to avoid a circular import.
BACKEND_NAMES: Tuple[str, ...] = tuple(_BACKENDS) + ("process+shm",)


def create_backend(
    name: str, workers: Optional[int] = None, log_level=None
) -> ExecutionBackend:
    """Construct a backend by name.

    Args:
        name: one of :data:`BACKEND_NAMES`.
        workers: pool size for the pooled backends; ignored by
            ``serial``.
        log_level: logging level re-applied inside pool *worker
            processes* (``process`` / ``process+shm``); in-process
            backends inherit the parent's logger and ignore it.
    """
    key = str(name).strip().lower()
    if key not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; expected one of "
            f"{BACKEND_NAMES}"
        )
    if key == "serial":
        return SerialBackend()
    if key == "thread":
        return ThreadPoolBackend(workers=workers)
    if key == "process+shm":
        from repro.fl.shm import SharedMemoryProcessPoolBackend

        return SharedMemoryProcessPoolBackend(
            workers=workers, log_level=log_level
        )
    return ProcessPoolBackend(workers=workers, log_level=log_level)
