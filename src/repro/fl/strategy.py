"""Strategy interfaces: user selection and frequency assignment.

Every scheme the paper evaluates decomposes into two pluggable pieces:

* a :class:`SelectionStrategy` choosing the user set ``Gamma_j`` for
  round ``j`` (Algorithm 1, line 4 — first half);
* a :class:`FrequencyPolicy` assigning each selected device a CPU
  operating frequency (line 4 — second half).

HELCFL pairs greedy-decay selection with the DVFS policy; Classic FL
pairs random selection with max frequency; FEDL pairs random selection
with its closed-form frequency; FedCS pairs deadline-greedy selection
with max frequency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices.device import UserDevice
from repro.errors import SelectionError

__all__ = [
    "SelectionStrategy",
    "FrequencyPolicy",
    "FullParticipation",
    "MaxFrequencyPolicy",
    "selection_count",
    "over_selection_extras",
]


def selection_count(num_users: int, fraction: float) -> int:
    """The paper's ``N = max(Q * C, 1)`` (Algorithm 2, line 11).

    Args:
        num_users: population size ``Q``.
        fraction: selection fraction ``C`` in ``(0, 1]``.

    Returns:
        Number of users to select, at least 1 and at most ``Q``.
    """
    if num_users <= 0:
        raise SelectionError(f"num_users must be positive, got {num_users}")
    if not 0.0 < fraction <= 1.0:
        raise SelectionError(f"fraction must be in (0, 1], got {fraction}")
    return min(num_users, max(int(num_users * fraction), 1))


def over_selection_extras(
    devices: Sequence[UserDevice],
    selected: Sequence[UserDevice],
    margin: int,
    payload_bits: float,
    bandwidth_hz: float,
) -> List[UserDevice]:
    """FedCS-style over-selection padding for dropout resilience.

    When the trainer expects dropouts it selects ``N + margin`` devices
    and aggregates the first ``N`` survivors. The padding devices are
    the *fastest* not-yet-selected ones by the Eq. (9) round delay at
    ``f_max`` (ties by id) — the FedCS heuristic: devices most likely
    to finish inside the round.

    Args:
        devices: the full population ``V``.
        selected: the strategy's own pick ``Gamma_j``.
        margin: extra devices to add (capped by the remaining pool).
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: uplink resource blocks ``Z`` in Hz.

    Returns:
        Up to ``margin`` padding devices, deterministic for a fixed
        population.
    """
    if margin < 0:
        raise SelectionError(f"margin must be non-negative, got {margin}")
    chosen = {device.device_id for device in selected}
    pool = [device for device in devices if device.device_id not in chosen]
    pool.sort(
        key=lambda d: (
            d.total_delay(payload_bits, bandwidth_hz),
            d.device_id,
        )
    )
    return pool[:margin]


class SelectionStrategy:
    """Base class for per-round user selection.

    Subclasses implement :meth:`select`; stateful strategies (HELCFL's
    appearance counters) should also override :meth:`reset`.
    """

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        """Return the selected user set ``Gamma_j`` for this round.

        Args:
            round_index: 1-based FL round index ``j``.
            devices: the full population ``V``.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cross-round state before a fresh training run."""

    def observe_losses(self, losses: Dict[int, float]) -> None:
        """Feedback hook: the trainer reports each round's client losses.

        Called once per round with a mapping from device id to the
        loss observed in that device's local update. The base
        implementation ignores the feedback; statistical-utility
        strategies (e.g. the Oort extension) override it.
        """

    def _check_population(self, devices: Sequence[UserDevice]) -> None:
        if not devices:
            raise SelectionError("cannot select from an empty population")


class FrequencyPolicy:
    """Base class for assigning CPU frequencies to selected devices."""

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
    ) -> Dict[int, float]:
        """Return a mapping from device id to operating frequency.

        Args:
            selected: the round's selected user set.
            payload_bits: model payload ``C_model`` in bits.
            bandwidth_hz: the uplink resource blocks ``Z`` in Hz.
            round_index: 1-based FL round index ``j`` (0 when called
                outside a training loop). Stateless policies ignore it;
                adaptive DVFS policies can schedule on it without
                another signature break.
        """
        raise NotImplementedError


class FullParticipation(SelectionStrategy):
    """Select every user every round (ideal unconstrained FL)."""

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        del round_index
        self._check_population(devices)
        return list(devices)


class MaxFrequencyPolicy(FrequencyPolicy):
    """Run every selected device at its maximum CPU frequency.

    This is the traditional TDMA FL behaviour whose energy waste
    Section VI-A illustrates (Fig. 1); it is the "without DVFS"
    baseline of Fig. 3.
    """

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
    ) -> Dict[int, float]:
        del payload_bits, bandwidth_hz, round_index
        return {device.device_id: device.cpu.f_max for device in selected}
