"""Strategy interfaces: user selection and frequency assignment.

Every scheme the paper evaluates decomposes into two pluggable pieces:

* a :class:`SelectionStrategy` choosing the user set ``Gamma_j`` for
  round ``j`` (Algorithm 1, line 4 — first half);
* a :class:`FrequencyPolicy` assigning each selected device a CPU
  operating frequency (line 4 — second half).

HELCFL pairs greedy-decay selection with the DVFS policy; Classic FL
pairs random selection with max frequency; FEDL pairs random selection
with its closed-form frequency; FedCS pairs deadline-greedy selection
with max frequency.

Both interfaces carry population-based signatures for fleet-scale
runs: :meth:`SelectionStrategy.select_population` lets a strategy rank
a :class:`~repro.devices.DevicePopulation` directly and return ranked
array positions (the base returns ``None``, meaning "object path
only", so existing strategies keep working unchanged), and
:meth:`FrequencyPolicy.assign` accepts the selected set as a
population slice via the kw-only ``population=`` parameter. Array
results are always indexed by population position; dict-of-id forms
are adapters around them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import SelectionError

__all__ = [
    "SelectionStrategy",
    "FrequencyPolicy",
    "FullParticipation",
    "MaxFrequencyPolicy",
    "selection_count",
    "over_selection_extras",
    "over_selection_extras_population",
]


def selection_count(num_users: int, fraction: float) -> int:
    """The paper's ``N = max(Q * C, 1)`` (Algorithm 2, line 11).

    Args:
        num_users: population size ``Q``.
        fraction: selection fraction ``C`` in ``(0, 1]``.

    Returns:
        Number of users to select, at least 1 and at most ``Q``.
    """
    if num_users <= 0:
        raise SelectionError(f"num_users must be positive, got {num_users}")
    if not 0.0 < fraction <= 1.0:
        raise SelectionError(f"fraction must be in (0, 1], got {fraction}")
    return min(num_users, max(int(num_users * fraction), 1))


def over_selection_extras(
    devices: Sequence[UserDevice],
    selected: Sequence[UserDevice],
    margin: int,
    payload_bits: float,
    bandwidth_hz: float,
) -> List[UserDevice]:
    """FedCS-style over-selection padding for dropout resilience.

    When the trainer expects dropouts it selects ``N + margin`` devices
    and aggregates the first ``N`` survivors. The padding devices are
    the *fastest* not-yet-selected ones by the Eq. (9) round delay at
    ``f_max`` (ties by id) — the FedCS heuristic: devices most likely
    to finish inside the round.

    This is the object path, kept as the parity oracle for
    :func:`over_selection_extras_population`.

    Args:
        devices: the full population ``V``.
        selected: the strategy's own pick ``Gamma_j``.
        margin: extra devices to add (capped by the remaining pool).
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: uplink resource blocks ``Z`` in Hz.

    Returns:
        Up to ``margin`` padding devices, deterministic for a fixed
        population.
    """
    if margin < 0:
        raise SelectionError(f"margin must be non-negative, got {margin}")
    chosen = {device.device_id for device in selected}
    pool = [device for device in devices if device.device_id not in chosen]
    pool.sort(
        key=lambda d: (
            d.total_delay(payload_bits, bandwidth_hz),
            d.device_id,
        )
    )
    return pool[:margin]


def over_selection_extras_population(
    population: DevicePopulation,
    selected_positions: np.ndarray,
    margin: int,
    payload_bits: float,
    bandwidth_hz: float,
) -> np.ndarray:
    """Vector form of :func:`over_selection_extras`.

    Args:
        population: the full fleet population.
        selected_positions: array positions already selected.
        margin: extra devices to add (capped by the remaining pool).
        payload_bits: model payload ``C_model`` in bits.
        bandwidth_hz: uplink resource blocks ``Z`` in Hz.

    Returns:
        Up to ``margin`` padding positions, ordered by ascending
        (Eq. 9 delay at ``f_max``, device id) — bitwise the object
        path's pick.
    """
    if margin < 0:
        raise SelectionError(f"margin must be non-negative, got {margin}")
    mask = np.ones(len(population), dtype=bool)
    mask[np.asarray(selected_positions, dtype=np.int64)] = False
    pool = np.flatnonzero(mask)
    if pool.size == 0 or margin == 0:
        return pool[:0]
    delays = population.total_delay(payload_bits, bandwidth_hz)
    order = np.lexsort((population.device_ids[pool], delays[pool]))
    return pool[order[:margin]]


class SelectionStrategy:
    """Base class for per-round user selection.

    Subclasses implement :meth:`select`; stateful strategies (HELCFL's
    appearance counters) should also override :meth:`reset`. Strategies
    with a vectorized ranking additionally override
    :meth:`select_population`.
    """

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        """Return the selected user set ``Gamma_j`` for this round.

        Args:
            round_index: 1-based FL round index ``j``.
            devices: the full population ``V``.
        """
        raise NotImplementedError

    def select_population(
        self, round_index: int, population: DevicePopulation
    ) -> Optional[np.ndarray]:
        """Vector path: select directly from a population view.

        Returns ranked array positions into ``population`` (the same
        order :meth:`select` lists devices in), or ``None`` when the
        strategy has no vectorized path — the trainer then falls back
        to :meth:`select`. The base class returns ``None``.
        """
        del round_index, population
        return None

    def reset(self) -> None:
        """Clear any cross-round state before a fresh training run."""

    def state_dict(self) -> Dict:
        """JSON-serializable snapshot of the cross-round mutable state.

        Checkpoint/resume support: the trainer captures this at every
        checkpoint and feeds it back through :meth:`load_state_dict`
        when resuming, so a resumed run selects exactly the users an
        uninterrupted one would have. Stateless strategies (the base)
        return ``{}``; every strategy with cross-round state (counters,
        RNG streams, loss tables) must override *both* methods or
        resumed runs silently diverge.
        """
        return {}

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (after :meth:`reset`).

        The base accepts only the empty snapshot; a non-empty one
        means the checkpoint was written by a stateful strategy this
        class cannot restore.
        """
        if state:
            raise SelectionError(
                f"{type(self).__name__} cannot restore selection state "
                f"with keys {sorted(state)}"
            )

    def observe_losses(self, losses: Dict[int, float]) -> None:
        """Feedback hook: the trainer reports each round's client losses.

        Called once per round with a mapping from device id to the
        loss observed in that device's local update. The base
        implementation ignores the feedback; statistical-utility
        strategies (e.g. the Oort extension) override it.
        """

    def _check_population(self, devices: Sequence[UserDevice]) -> None:
        if not devices:
            raise SelectionError("cannot select from an empty population")


class FrequencyPolicy:
    """Base class for assigning CPU frequencies to selected devices."""

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
        population: Optional[DevicePopulation] = None,
    ) -> Dict[int, float]:
        """Return a mapping from device id to operating frequency.

        Args:
            selected: the round's selected user set.
            payload_bits: model payload ``C_model`` in bits.
            bandwidth_hz: the uplink resource blocks ``Z`` in Hz.
            round_index: 1-based FL round index ``j`` (0 when called
                outside a training loop). Stateless policies ignore it;
                adaptive DVFS policies can schedule on it without
                another signature break.
            population: the selected set as a
                :class:`~repro.devices.DevicePopulation` slice, aligned
                with ``selected``. Policies with a vectorized path use
                it instead of looping over the objects; the trainer
                always provides it. ``None`` forces the object path.
        """
        raise NotImplementedError


class FullParticipation(SelectionStrategy):
    """Select every user every round (ideal unconstrained FL)."""

    def select(
        self, round_index: int, devices: Sequence[UserDevice]
    ) -> List[UserDevice]:
        del round_index
        self._check_population(devices)
        return list(devices)

    def select_population(
        self, round_index: int, population: DevicePopulation
    ) -> np.ndarray:
        del round_index
        return np.arange(len(population), dtype=np.int64)


class MaxFrequencyPolicy(FrequencyPolicy):
    """Run every selected device at its maximum CPU frequency.

    This is the traditional TDMA FL behaviour whose energy waste
    Section VI-A illustrates (Fig. 1); it is the "without DVFS"
    baseline of Fig. 3.
    """

    def assign(
        self,
        selected: Sequence[UserDevice],
        payload_bits: float,
        bandwidth_hz: float,
        *,
        round_index: int = 0,
        population: Optional[DevicePopulation] = None,
    ) -> Dict[int, float]:
        del payload_bits, bandwidth_hz, round_index
        if population is not None:
            return dict(
                zip(
                    population.device_ids.tolist(),
                    population.f_max.tolist(),
                )
            )
        return {device.device_id: device.cpu.f_max for device in selected}
