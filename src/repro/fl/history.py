"""Training history: the measurement record behind every experiment.

Each FL round appends a :class:`RoundRecord` carrying the selection,
frequencies, simulated delay/energy (from the TDMA timeline), and the
evaluation results. :class:`TrainingHistory` then answers the questions
the paper's evaluation asks:

* Fig. 2 — the accuracy-versus-round curve (:meth:`accuracy_series`);
* Table I — simulated training delay to reach a desired accuracy
  (:meth:`time_to_accuracy`);
* Fig. 3 — training energy spent to reach a desired accuracy
  (:meth:`energy_to_accuracy`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TrainingError

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured in one FL round.

    Attributes:
        round_index: 1-based round number ``j``.
        selected_ids: device ids of ``Gamma_j`` (selection order).
        frequencies: assigned CPU frequency per selected device id.
        round_delay: Eq. (10) for this round, seconds.
        round_energy: Eq. (11) for this round, joules.
        compute_energy: compute share of ``round_energy``.
        upload_energy: upload share of ``round_energy``.
        slack: total idle wait across selected users, seconds.
        cumulative_time: simulated clock after this round, seconds.
        cumulative_energy: total energy after this round, joules.
        train_loss: dataset-size-weighted mean of client losses.
        test_accuracy: global-model test accuracy (None on rounds
            without evaluation).
        test_loss: global-model test loss (None without evaluation).
        dropped_ids: devices whose update was lost this round (battery
            depletion, injected dropout/outage/battery-death faults),
            empty otherwise.
        timeout_ids: devices cut off by the per-round deadline this
            round (their partial work was spent but never aggregated),
            empty otherwise. Disjoint from ``dropped_ids``.
    """

    round_index: int
    selected_ids: Tuple[int, ...]
    frequencies: Dict[int, float]
    round_delay: float
    round_energy: float
    compute_energy: float
    upload_energy: float
    slack: float
    cumulative_time: float
    cumulative_energy: float
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None
    dropped_ids: Tuple[int, ...] = ()
    timeout_ids: Tuple[int, ...] = ()


@dataclass
class TrainingHistory:
    """The ordered round records of one training run.

    Attributes:
        records: per-round measurements, in round order.
        label: free-form run label (e.g. the strategy name).
        stop_reason: why the run ended — a
            :class:`repro.obs.StopReason` value
            (``"rounds_exhausted"``, ``"deadline"``,
            ``"target_accuracy"``, or ``"plateau"``); ``None`` for
            histories produced outside the trainer loop (e.g. the SL
            baseline) or loaded from pre-stop-reason artifacts.
    """

    records: List[RoundRecord] = field(default_factory=list)
    label: str = ""
    stop_reason: Optional[str] = None

    def append(self, record: RoundRecord) -> None:
        """Append the next round's record (indices must increase)."""
        if self.records and record.round_index <= self.records[-1].round_index:
            raise TrainingError(
                f"round {record.round_index} does not follow "
                f"{self.records[-1].round_index}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def truncated(self, max_round: int) -> TrainingHistory:
        """A copy keeping only rounds up to ``max_round`` (inclusive).

        The truncated copy has no ``stop_reason`` — it represents a
        run cut mid-flight (the checkpoint/resume machinery compares
        resumed prefixes against it), not a finished one.
        """
        if max_round < 0:
            raise TrainingError(
                f"max_round must be non-negative, got {max_round}"
            )
        history = TrainingHistory(label=self.label)
        history.records = [
            record
            for record in self.records
            if record.round_index <= max_round
        ]
        return history

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Simulated seconds of the whole run."""
        return self.records[-1].cumulative_time if self.records else 0.0

    @property
    def total_energy(self) -> float:
        """Total joules of the whole run."""
        return self.records[-1].cumulative_energy if self.records else 0.0

    # ------------------------------------------------------------------
    # Accuracy queries (Fig. 2 / Table I / Fig. 3)
    # ------------------------------------------------------------------
    def accuracy_series(self) -> List[Tuple[int, float, float]]:
        """Evaluated rounds as ``(round, cumulative_time, accuracy)``."""
        return [
            (r.round_index, r.cumulative_time, r.test_accuracy)
            for r in self.records
            if r.test_accuracy is not None
        ]

    @property
    def best_accuracy(self) -> float:
        """Highest test accuracy observed (0.0 if never evaluated)."""
        values = [
            r.test_accuracy for r in self.records if r.test_accuracy is not None
        ]
        return max(values) if values else 0.0

    @property
    def final_accuracy(self) -> float:
        """Last evaluated test accuracy (0.0 if never evaluated)."""
        for record in reversed(self.records):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return 0.0

    def _first_record_reaching(self, target: float) -> Optional[RoundRecord]:
        for record in self.records:
            if record.test_accuracy is not None and record.test_accuracy >= target:
                return record
        return None

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until accuracy first reached ``target``.

        Returns ``None`` when the run never reached the target — the
        paper's "✗" entries in Table I.
        """
        record = self._first_record_reaching(target)
        return record.cumulative_time if record else None

    def energy_to_accuracy(self, target: float) -> Optional[float]:
        """Joules spent until accuracy first reached ``target`` (or None)."""
        record = self._first_record_reaching(target)
        return record.cumulative_energy if record else None

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """Rounds until accuracy first reached ``target`` (or None)."""
        record = self._first_record_reaching(target)
        return record.round_index if record else None

    # ------------------------------------------------------------------
    # Participation statistics
    # ------------------------------------------------------------------
    def participation_counts(self) -> Dict[int, int]:
        """How many rounds each device id participated in."""
        counts: Dict[int, int] = {}
        for record in self.records:
            for device_id in record.selected_ids:
                counts[device_id] = counts.get(device_id, 0) + 1
        return counts

    def coverage(self, num_users: int) -> float:
        """Fraction of the population selected at least once."""
        if num_users <= 0:
            raise TrainingError(f"num_users must be positive, got {num_users}")
        return len(self.participation_counts()) / num_users

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form suitable for ``json.dump``."""
        return {
            "label": self.label,
            "stop_reason": self.stop_reason,
            "records": [
                {
                    "round_index": r.round_index,
                    "selected_ids": list(r.selected_ids),
                    "frequencies": {str(k): v for k, v in r.frequencies.items()},
                    "round_delay": r.round_delay,
                    "round_energy": r.round_energy,
                    "compute_energy": r.compute_energy,
                    "upload_energy": r.upload_energy,
                    "slack": r.slack,
                    "cumulative_time": r.cumulative_time,
                    "cumulative_energy": r.cumulative_energy,
                    "train_loss": r.train_loss,
                    "test_accuracy": r.test_accuracy,
                    "test_loss": r.test_loss,
                    "dropped_ids": list(r.dropped_ids),
                    "timeout_ids": list(r.timeout_ids),
                }
                for r in self.records
            ],
        }

    def to_json(self) -> str:
        """JSON text form of :meth:`to_dict`."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict) -> TrainingHistory:
        """Rebuild a history from :meth:`to_dict` output."""
        history = cls(
            label=payload.get("label", ""),
            stop_reason=payload.get("stop_reason"),
        )
        for raw in payload.get("records", []):
            history.append(
                RoundRecord(
                    round_index=int(raw["round_index"]),
                    selected_ids=tuple(raw["selected_ids"]),
                    frequencies={
                        int(k): float(v) for k, v in raw["frequencies"].items()
                    },
                    round_delay=float(raw["round_delay"]),
                    round_energy=float(raw["round_energy"]),
                    compute_energy=float(raw["compute_energy"]),
                    upload_energy=float(raw["upload_energy"]),
                    slack=float(raw["slack"]),
                    cumulative_time=float(raw["cumulative_time"]),
                    cumulative_energy=float(raw["cumulative_energy"]),
                    train_loss=float(raw["train_loss"]),
                    test_accuracy=raw.get("test_accuracy"),
                    test_loss=raw.get("test_loss"),
                    dropped_ids=tuple(raw.get("dropped_ids", ())),
                    timeout_ids=tuple(raw.get("timeout_ids", ())),
                )
            )
        return history

    @classmethod
    def from_json(cls, text: str) -> TrainingHistory:
        """Rebuild a history from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
