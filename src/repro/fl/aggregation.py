"""FedAvg aggregation (the paper's Eq. 18).

The FLCC integrates the uploaded models with data-size weights::

    M_G^{j+1} = sum_q |D_q| * M_q^{j+1} / sum_q |D_q|

operating on flat parameter vectors (see
:meth:`repro.nn.model.Sequential.get_flat_params`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError, TrainingError

__all__ = ["fedavg_aggregate"]


def fedavg_aggregate(
    parameter_vectors: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Weighted average of flat parameter vectors.

    Args:
        parameter_vectors: one flat vector per participating user.
        weights: non-negative aggregation weights (the paper uses local
            dataset sizes ``|D_q|``); at least one must be positive.

    Returns:
        The aggregated flat vector (float64).

    Raises:
        TrainingError: for empty input or all-zero weights.
        ShapeError: for mismatched vector lengths.
    """
    if len(parameter_vectors) == 0:
        raise TrainingError("cannot aggregate zero model updates")
    if len(parameter_vectors) != len(weights):
        raise TrainingError(
            f"{len(parameter_vectors)} updates but {len(weights)} weights"
        )
    weights_arr = np.asarray(weights, dtype=np.float64)
    if np.any(weights_arr < 0):
        raise TrainingError(f"weights must be non-negative, got {weights}")
    total = weights_arr.sum()
    if total <= 0:
        raise TrainingError("at least one aggregation weight must be positive")

    first = np.asarray(parameter_vectors[0], dtype=np.float64).ravel()
    accumulator = np.zeros_like(first)
    for vector, weight in zip(parameter_vectors, weights_arr):
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape != first.shape:
            raise ShapeError(
                f"parameter vector of length {vector.size} does not match "
                f"first vector of length {first.size}"
            )
        accumulator += (weight / total) * vector
    return accumulator
