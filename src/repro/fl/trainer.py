"""The synchronous FL training loop (the paper's Algorithm 1).

Each round: a :class:`~repro.fl.strategy.SelectionStrategy` picks
``Gamma_j``, a :class:`~repro.fl.strategy.FrequencyPolicy` assigns CPU
frequencies, the TDMA simulator produces the round's delay/energy
timeline (Eqs. 4–11), selected clients run their local updates
(Eq. 3) through a pluggable :class:`~repro.fl.execution.ExecutionBackend`,
and the server FedAvg-integrates the results (Eq. 18). The loop
honours the total-training deadline (constraint 14) and optional
convergence exits, and records everything into a
:class:`~repro.fl.history.TrainingHistory`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.devices.device import UserDevice
from repro.devices.population import DevicePopulation
from repro.errors import ConfigurationError, TrainingError
from repro.faults import FaultInjector, FaultPlan, RoundFaults
from repro.fl.client import LocalTrainer
from repro.fl.execution import (
    STATUS_DROPPED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExecutionBackend,
    LocalUpdateSpec,
    RoundResult,
    SerialBackend,
)
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import FederatedServer
from repro.fl.strategy import (
    FrequencyPolicy,
    MaxFrequencyPolicy,
    SelectionStrategy,
    over_selection_extras,
    over_selection_extras_population,
)
from repro.network.tdma import RoundTimeline, simulate_tdma_round
from repro.obs import (
    NOOP_SPAN,
    AggregationEvent,
    BatteryDropEvent,
    ClientDroppedEvent,
    DeviceRoundEvent,
    EvalEvent,
    FaultInjectedEvent,
    FrequencyAssignmentEvent,
    RoundDegradedEvent,
    RunObserver,
    RunStopEvent,
    SelectionEvent,
    StopReason,
    TimelineEvent,
)

__all__ = ["TrainerConfig", "FederatedTrainer"]

_LOGGER = logging.getLogger("repro.fl.trainer")


@dataclass
class TrainerConfig:
    """Knobs of one federated training run.

    Attributes:
        rounds: maximum number of FL iterations ``J``.
        bandwidth_hz: the MEC uplink resource blocks ``Z`` (paper:
            2 MHz).
        learning_rate: local GD learning rate ``tau``.
        local_steps: local gradient steps per round (paper: 1).
        batch_size: local mini-batch size; ``None`` = full batch
            (exact Eq. 3).
        eval_every: evaluate the global model every this many rounds
            (always also on the final round).
        deadline_s: total-training deadline (constraint 14); the run
            stops once the simulated clock passes it. ``None`` = no
            deadline.
        target_accuracy: optional convergence exit — stop once test
            accuracy reaches this value.
        convergence_patience: optional plateau exit (Algorithm 1's
            "checks whether this newly created global ML model
            converges") — stop after this many consecutive evaluations
            without the test loss improving by at least
            ``convergence_min_delta``. ``None`` disables the check.
        convergence_min_delta: minimum test-loss improvement that
            resets the plateau counter.
        lr_decay: multiplicative learning-rate decay applied every
            ``lr_decay_period`` rounds (server-controlled, broadcast
            with the model); 1.0 (the paper's setting) disables decay.
        lr_decay_period: rounds between decay applications.
        keep_best_model: snapshot the global parameters at every new
            best test accuracy; the run's best model is then available
            as ``trainer.best_model_params`` (the final global model
            can sit below the best with noisy evaluation).
        enforce_battery: when True, devices with batteries drain them
            each round; a device that cannot afford its round energy
            shuts down and its update is dropped from aggregation.
        minibatch_seed: roots the per-``(round, device)`` mini-batch
            sampling seeds when ``batch_size`` is set, so stochastic
            local updates reproduce identically under every execution
            backend.
        round_deadline_s: hard per-round deadline (seconds of simulated
            time). Clients whose upload cannot complete by it are cut
            off (``"timeout"``), charged only the energy they actually
            spent, and excluded from aggregation; the round then lasts
            exactly this long. ``None`` (the default) disables the
            cut-off.
        over_select_margin: FedCS-style dropout insurance — select this
            many extra users beyond the strategy's pick and aggregate
            only the first ``N`` survivors (selection order), where
            ``N`` is the strategy's own count. 0 (the default) disables
            over-selection.
        checkpoint_every: write an atomic
            :class:`~repro.fl.checkpoint.TrainerCheckpoint` to the
            trainer's ``checkpoint_path`` every this many completed
            rounds (a killed run then resumes from its last snapshot,
            bitwise identical to an uninterrupted one). ``None`` (the
            default) disables mid-run checkpointing; the trainer still
            captures ``trainer.last_checkpoint`` in memory at run end.
    """

    rounds: int = 300
    bandwidth_hz: float = 2e6
    learning_rate: float = 0.1
    local_steps: int = 1
    batch_size: Optional[int] = None
    eval_every: int = 1
    deadline_s: Optional[float] = None
    target_accuracy: Optional[float] = None
    convergence_patience: Optional[int] = None
    convergence_min_delta: float = 1e-4
    lr_decay: float = 1.0
    lr_decay_period: int = 100
    keep_best_model: bool = False
    enforce_battery: bool = False
    minibatch_seed: int = 0
    round_deadline_s: Optional[float] = None
    over_select_margin: int = 0
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(
                f"bandwidth_hz must be positive, got {self.bandwidth_hz}"
            )
        if self.eval_every <= 0:
            raise ConfigurationError(
                f"eval_every must be positive, got {self.eval_every}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive when set, got {self.deadline_s}"
            )
        if self.target_accuracy is not None and not 0.0 < self.target_accuracy <= 1.0:
            raise ConfigurationError(
                f"target_accuracy must be in (0, 1], got {self.target_accuracy}"
            )
        if self.convergence_patience is not None and self.convergence_patience <= 0:
            raise ConfigurationError(
                "convergence_patience must be positive when set, got "
                f"{self.convergence_patience}"
            )
        if self.convergence_min_delta < 0:
            raise ConfigurationError(
                "convergence_min_delta must be non-negative, got "
                f"{self.convergence_min_delta}"
            )
        if not 0.0 < self.lr_decay <= 1.0:
            raise ConfigurationError(
                f"lr_decay must be in (0, 1], got {self.lr_decay}"
            )
        if self.lr_decay_period <= 0:
            raise ConfigurationError(
                f"lr_decay_period must be positive, got {self.lr_decay_period}"
            )
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ConfigurationError(
                "round_deadline_s must be positive when set, got "
                f"{self.round_deadline_s}"
            )
        if self.over_select_margin < 0:
            raise ConfigurationError(
                "over_select_margin must be non-negative, got "
                f"{self.over_select_margin}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ConfigurationError(
                "checkpoint_every must be positive when set, got "
                f"{self.checkpoint_every}"
            )

    def learning_rate_at(self, round_index: int) -> float:
        """The broadcast learning rate for 1-based round ``round_index``."""
        if round_index <= 0:
            raise ConfigurationError(
                f"round_index must be positive, got {round_index}"
            )
        applications = (round_index - 1) // self.lr_decay_period
        return self.learning_rate * self.lr_decay**applications

    def local_update_spec(self) -> LocalUpdateSpec:
        """The :class:`LocalUpdateSpec` execution backends train with."""
        return LocalUpdateSpec(
            learning_rate=self.learning_rate,
            local_steps=self.local_steps,
            batch_size=self.batch_size,
            seed=self.minibatch_seed,
        )


class FederatedTrainer:
    """Runs Algorithm 1 for a given selection strategy and policy.

    Args:
        server: the FLCC holding the global model and test set.
        devices: the full user population ``V``.
        selection: per-round user selection strategy.
        frequency_policy: per-round CPU frequency assignment; defaults
            to max frequency (traditional TDMA FL).
        config: run configuration.
        label: history label (e.g. ``"HELCFL"``).
        compression: optional
            :class:`repro.compression.CompressionPipeline`; when set,
            each client's update delta is compressed, the *actual*
            compressed payload drives that client's upload delay and
            energy, and the server aggregates the lossy reconstruction.
            The frequency policy still plans with the nominal
            ``server.payload_bits`` (the FLCC cannot know compressed
            sizes before training happens). Compression state is
            per-device and updated in selection order in the main
            process, so it is backend-independent.
        channel_models: optional mapping from device id to a channel
            model exposing ``sample_gain()`` (e.g.
            :class:`repro.network.RayleighFadingChannel`); when set,
            every mapped device's channel gain is re-drawn at the start
            of each round, modelling per-round fading. Selection and
            frequency policies see the fresh gains (the FLCC polls
            resource information each round, Algorithm 1 line 1).
        backend: the :class:`~repro.fl.execution.ExecutionBackend` that
            fans local updates out across workers; defaults to
            :class:`~repro.fl.execution.SerialBackend`. The trainer
            binds the backend at the start of every :meth:`run` but
            never closes it — the caller owns pooled backends' worker
            lifetimes (use them as context managers).
        observer: a :class:`repro.obs.RunObserver` receiving the run's
            typed events (selection, frequency assignment, timeline,
            battery drops, aggregation, evaluation, run stop) and
            aggregating stage timers. ``None`` (the default) observes
            into a private registry with tracing off. Observation is
            read-only: enabling it leaves the returned history bitwise
            identical.
        faults: an optional :class:`repro.faults.FaultPlan` (or a
            pre-built :class:`repro.faults.FaultInjector`) describing
            the seeded chaos to inject into the run — device dropouts,
            stragglers, channel outages/degradations, battery deaths.
            ``None`` (the default) and an *empty* plan both take the
            exact faults-off code path, so they are bitwise identical
            to each other.
        vectorized: when True (the default), :meth:`run` snapshots the
            fleet into a :class:`~repro.devices.DevicePopulation` and
            drives selection, frequency assignment (including
            fault-triggered re-planning), over-selection, and TDMA
            staging through the array paths — bitwise identical to the
            object paths, O(Q) numpy instead of O(Q) Python per round.
            False forces the scalar object paths everywhere (the
            parity oracle and the benchmark baseline).
        checkpoint_path: where ``config.checkpoint_every`` snapshots
            are written (atomically; see
            :mod:`repro.fl.checkpoint`). ``None`` (the default)
            disables on-disk checkpointing even when
            ``checkpoint_every`` is set. Checkpointing and resuming
            are not supported together with ``compression`` or
            ``channel_models`` (their mid-run state is not captured).

    Attributes:
        ledger: an :class:`repro.energy.EnergyLedger` accumulating
            per-device energy across the run (reset by :meth:`run`).
        observer: the bound :class:`repro.obs.RunObserver`; its
            ``metrics`` carry the run's timers and counters even when
            tracing is off.
        last_checkpoint: the
            :class:`~repro.fl.checkpoint.TrainerCheckpoint` captured
            when :meth:`run` last completed (in memory, regardless of
            ``checkpoint_every``); ``None`` before the first run.
    """

    def __init__(
        self,
        server: FederatedServer,
        devices: Sequence[UserDevice],
        selection: SelectionStrategy,
        frequency_policy: Optional[FrequencyPolicy] = None,
        config: Optional[TrainerConfig] = None,
        label: str = "",
        compression=None,
        channel_models=None,
        backend: Optional[ExecutionBackend] = None,
        observer: Optional[RunObserver] = None,
        faults=None,
        vectorized: bool = True,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        if not devices:
            raise TrainingError("cannot train with an empty device population")
        if faults is None:
            self.fault_injector: Optional[FaultInjector] = None
        elif isinstance(faults, FaultInjector):
            self.fault_injector = faults
        elif isinstance(faults, FaultPlan):
            self.fault_injector = FaultInjector(faults)
        else:
            raise ConfigurationError(
                "faults must be a FaultPlan or FaultInjector, got "
                f"{type(faults).__name__}"
            )
        self.server = server
        self.devices = list(devices)
        self.selection = selection
        self.frequency_policy = frequency_policy or MaxFrequencyPolicy()
        self.config = config or TrainerConfig()
        self.label = label
        self.compression = compression
        self.channel_models = dict(channel_models or {})
        self.backend = backend or SerialBackend()
        self.observer = observer or RunObserver()
        self.vectorized = bool(vectorized)
        self.population: Optional[DevicePopulation] = None
        from repro.energy.accounting import EnergyLedger

        self.ledger = EnergyLedger(metrics=self.observer.metrics)
        # Kept for introspection (e.g. the LR schedule is observable as
        # ``trainer.local_trainer.learning_rate``); the actual per-round
        # training happens inside the execution backend.
        self.local_trainer = LocalTrainer(
            learning_rate=self.config.learning_rate,
            local_steps=self.config.local_steps,
            batch_size=self.config.batch_size,
        )
        self.best_model_params = None
        self.best_model_accuracy = 0.0
        self.checkpoint_path = checkpoint_path
        self.last_checkpoint = None

    # ------------------------------------------------------------------
    def _run_clients(
        self, round_index: int, selected: Sequence[UserDevice]
    ) -> RoundResult:
        """Fan the round's local updates out through the backend.

        Compression (when configured) is applied afterwards in
        selection order: per-device residual state must evolve
        deterministically no matter how the backend scheduled the
        training itself.
        """
        global_params = self.server.broadcast()
        updates = self.backend.run_round(
            round_index,
            global_params,
            selected,
            self.local_trainer.learning_rate,
        )
        if self.compression is not None:
            compressed = []
            for update in updates:
                received = self.compression.process(
                    update.device_id, global_params, update.params
                )
                compressed.append(
                    replace(
                        update,
                        params=received.params,
                        payload_bits=received.payload_bits,
                    )
                )
            updates = compressed
        return RoundResult(round_index=round_index, updates=tuple(updates))

    def _apply_battery(
        self, selected: Sequence[UserDevice], timeline, result: RoundResult
    ) -> Tuple[RoundResult, Tuple[int, ...]]:
        """Drain batteries; mark devices that cannot pay as dropped.

        Every device pays the energy its timeline entry says it spent —
        including fault-lost devices' partial work. Only devices whose
        update would otherwise have reached the server show up in the
        returned battery-drop tuple (a fault already claimed the rest).
        """
        if not self.config.enforce_battery:
            return result, ()
        per_device = timeline.by_device()
        device_index = {d.device_id: d for d in selected}
        dropped = []
        for update in result:
            device = device_index[update.device_id]
            battery = device.battery
            if battery is None:
                continue
            entry = per_device[update.device_id]
            paid = battery.drain(entry.total_energy)
            if not paid and update.status == STATUS_OK:
                dropped.append(update.device_id)
        statuses = {device_id: STATUS_DROPPED for device_id in dropped}
        return result.with_statuses(statuses), tuple(dropped)

    def _emit_client_drops(
        self,
        round_index: int,
        fault_round: Optional[RoundFaults],
        timeline: RoundTimeline,
        battery_dropped: Tuple[int, ...],
        dropped_ids: Tuple[int, ...],
        timeout_ids: Tuple[int, ...],
    ) -> None:
        """Emit one :class:`ClientDroppedEvent` per lost client."""
        causes = {}
        if fault_round is not None:
            for device_id in fault_round.drop_before:
                causes[device_id] = ("dropout", "before_compute")
            for device_id in fault_round.drop_during:
                causes[device_id] = ("dropout", "compute")
            for device_id in fault_round.upload_outage:
                causes[device_id] = ("channel_outage", "upload")
        for device_id in battery_dropped:
            causes.setdefault(device_id, ("battery", "round"))
        if fault_round is not None:
            for device_id in fault_round.battery_death:
                causes.setdefault(device_id, ("battery_death", "round"))
        per_device = timeline.by_device()
        for device_id in dropped_ids:
            cause, phase = causes.get(device_id, ("dropout", "round"))
            self.observer.emit(
                ClientDroppedEvent(
                    round_index=round_index,
                    device_id=device_id,
                    cause=cause,
                    phase=phase,
                )
            )
        for device_id in timeout_ids:
            entry = per_device.get(device_id)
            phase = "compute"
            if entry is not None and (
                entry.slack > 0.0 or entry.upload_delay > 0.0
            ):
                phase = "upload"
            self.observer.emit(
                ClientDroppedEvent(
                    round_index=round_index,
                    device_id=device_id,
                    cause="round_deadline",
                    phase=phase,
                )
            )

    def _capture_checkpoint(
        self,
        round_index: int,
        history: TrainingHistory,
        cumulative_time: float,
        cumulative_energy: float,
        plateau,
    ):
        """Freeze every piece of cross-round state after ``round_index``."""
        from repro.fl.checkpoint import TrainerCheckpoint

        ledger_state = {
            "rounds_recorded": self.ledger.rounds_recorded,
            "devices": {
                str(device_id): {
                    "compute_joules": entry.compute_joules,
                    "upload_joules": entry.upload_joules,
                    "slack_seconds": entry.slack_seconds,
                    "rounds": entry.rounds,
                }
                for device_id, entry in sorted(self.ledger.devices.items())
            },
        }
        return TrainerCheckpoint(
            round_index=round_index,
            label=self.label,
            strategy_class=type(self.selection).__name__,
            model_params=self.server.broadcast(),
            history=history.to_dict(),
            cumulative_time=cumulative_time,
            cumulative_energy=cumulative_energy,
            ledger=ledger_state,
            batteries={
                d.device_id: d.battery.charge_joules
                for d in self.devices
                if d.battery is not None
            },
            channel_gains={
                d.device_id: d.radio.channel_gain for d in self.devices
            },
            selection_state=self.selection.state_dict(),
            plateau=(
                {
                    "best": plateau.best,
                    "stale_count": plateau.stale_count,
                    "converged": plateau.converged,
                }
                if plateau is not None
                else None
            ),
            best_model_params=self.best_model_params,
            best_model_accuracy=self.best_model_accuracy,
        )

    def _apply_checkpoint(self, checkpoint, plateau) -> TrainingHistory:
        """Restore a checkpoint into this trainer; returns its history.

        Called by :meth:`run` after ``selection.reset()`` and the
        ledger rebuild but before the population snapshot, so the
        vectorized view is built from the restored device state.
        """
        from repro.energy.accounting import DeviceEnergy
        from repro.fl.checkpoint import TrainerCheckpoint

        if not isinstance(checkpoint, TrainerCheckpoint):
            raise ConfigurationError(
                "resume_from must be a TrainerCheckpoint, got "
                f"{type(checkpoint).__name__}"
            )
        strategy_class = type(self.selection).__name__
        if checkpoint.strategy_class != strategy_class:
            raise ConfigurationError(
                f"checkpoint was written by {checkpoint.strategy_class}; "
                f"refusing to resume under {strategy_class}"
            )
        if checkpoint.round_index > self.config.rounds:
            raise ConfigurationError(
                f"checkpoint is at round {checkpoint.round_index}, past "
                f"this run's {self.config.rounds} rounds"
            )
        self.server.model.set_flat_params(checkpoint.model_params.copy())
        self.selection.load_state_dict(checkpoint.selection_state)
        self.ledger.rounds_recorded = int(
            checkpoint.ledger.get("rounds_recorded", 0)
        )
        self.ledger.devices.clear()
        for device_id, raw in checkpoint.ledger.get("devices", {}).items():
            entry = DeviceEnergy(int(device_id))
            entry.compute_joules = float(raw["compute_joules"])
            entry.upload_joules = float(raw["upload_joules"])
            entry.slack_seconds = float(raw["slack_seconds"])
            entry.rounds = int(raw["rounds"])
            self.ledger.devices[int(device_id)] = entry
        device_index = {d.device_id: d for d in self.devices}
        for device_id, charge in checkpoint.batteries.items():
            device = device_index.get(device_id)
            if device is not None and device.battery is not None:
                device.battery.charge_joules = float(charge)
        for device_id, gain in checkpoint.channel_gains.items():
            device = device_index.get(device_id)
            if device is not None:
                device.radio.channel_gain = float(gain)
        if plateau is not None and checkpoint.plateau is not None:
            plateau.best = checkpoint.plateau.get("best")
            plateau.stale_count = int(checkpoint.plateau.get("stale_count", 0))
            plateau.converged = bool(checkpoint.plateau.get("converged"))
        self.best_model_params = (
            checkpoint.best_model_params.copy()
            if checkpoint.best_model_params is not None
            else None
        )
        self.best_model_accuracy = checkpoint.best_model_accuracy
        return TrainingHistory.from_dict(checkpoint.history)

    def run(self, resume_from=None, stop_after=None) -> TrainingHistory:
        """Execute the full training loop and return its history.

        Args:
            resume_from: an optional
                :class:`~repro.fl.checkpoint.TrainerCheckpoint` to
                restore before training; the loop then continues from
                ``resume_from.round_index + 1`` and the returned
                history (and every artifact derived from it) is
                bitwise identical to an uninterrupted run's.
            stop_after: optional replay cut-off — pause the loop after
                this round *without* the final-round semantics
                (``config.rounds`` still governs the forced last
                evaluation), leaving ``trainer.last_checkpoint``
                holding exactly the state an uninterrupted run carried
                out of that round. Used by trace reconstruction
                (:mod:`repro.campaign.resume`).
        """
        config = self.config
        observer = self.observer
        if stop_after is not None and stop_after <= 0:
            raise ConfigurationError(
                f"stop_after must be positive when set, got {stop_after}"
            )
        history = TrainingHistory(label=self.label)
        self.selection.reset()
        if self.compression is not None:
            self.compression.reset()
        plateau = None
        if config.convergence_patience is not None:
            from repro.analysis.convergence import PlateauDetector

            plateau = PlateauDetector(
                patience=config.convergence_patience,
                min_delta=config.convergence_min_delta,
                mode="min",
            )
        cumulative_time = 0.0
        cumulative_energy = 0.0

        from repro.energy.accounting import EnergyLedger

        self.ledger = EnergyLedger(metrics=observer.metrics)
        device_index = {d.device_id: d for d in self.devices}
        checkpointing = (
            config.checkpoint_every is not None
            and self.checkpoint_path is not None
        )
        if (checkpointing or resume_from is not None) and (
            self.compression is not None or self.channel_models
        ):
            raise ConfigurationError(
                "checkpoint/resume does not capture compression or "
                "channel-model state; disable checkpointing or drop "
                "those features"
            )
        start_round = 1
        if resume_from is not None:
            history = self._apply_checkpoint(resume_from, plateau)
            cumulative_time = resume_from.cumulative_time
            cumulative_energy = resume_from.cumulative_energy
            start_round = resume_from.round_index + 1
            _LOGGER.info(
                "run %r resuming from checkpointed round %d",
                self.label,
                resume_from.round_index,
            )
        # Population-scale array view of the fleet: built once, kept in
        # sync with per-round fading, and sliced per round for the
        # vectorized scheduler paths.
        population = (
            DevicePopulation.from_devices(self.devices)
            if self.vectorized
            else None
        )
        self.population = population
        position_by_id = (
            {d.device_id: position for position, d in enumerate(self.devices)}
            if population is not None
            else {}
        )
        self.backend.observer = observer
        self.backend.bind(
            self.server.model, config.local_update_spec(), self.devices
        )
        _LOGGER.info(
            "run %r starting: %d rounds max, %d devices, backend=%s",
            self.label,
            config.rounds,
            len(self.devices),
            self.backend.name,
        )

        # The run-level span. A resumed attempt continues a run whose
        # first attempt already wrote the span_start, so it only emits
        # the close — the finished trace carries exactly one pair.
        run_span = observer.span(
            "run",
            parent_id=observer.parent_span_id,
            resources=True,
            emit_start=resume_from is None,
        )
        round_span = NOOP_SPAN

        stop_reason = StopReason.ROUNDS_EXHAUSTED
        round_index = start_round - 1
        injector = self.fault_injector
        if injector is not None and injector.plan.is_empty:
            # An empty plan is contractually a no-op: take the exact
            # faults-off code path so histories and traces stay bitwise
            # identical to a run with no injector at all.
            injector = None
        chaos_active = (
            injector is not None or config.round_deadline_s is not None
        )
        try:
            for round_index in range(start_round, config.rounds + 1):
                round_span = observer.span(
                    "round",
                    span_id=f"round-{round_index}",
                    parent_id="run",
                    round_index=round_index,
                )
                # Per-round fading: refresh mapped devices' channel gains
                # before selection so the FLCC plans with current info.
                for device_id, model in self.channel_models.items():
                    device = device_index.get(device_id)
                    if device is not None:
                        gain = float(model.sample_gain())
                        device.radio.channel_gain = gain
                        if population is not None:
                            population.set_channel_gains(
                                (position_by_id[device_id],), (gain,)
                            )

                with observer.timer("selection"), observer.span(
                    "selection",
                    span_id=f"round-{round_index}/selection",
                    parent_id=f"round-{round_index}",
                    round_index=round_index,
                ):
                    positions: Optional[np.ndarray] = None
                    if population is not None:
                        positions = self.selection.select_population(
                            round_index, population
                        )
                    if positions is not None:
                        selected = [
                            self.devices[position]
                            for position in positions.tolist()
                        ]
                    else:
                        selected = self.selection.select(
                            round_index, self.devices
                        )
                if not selected:
                    raise TrainingError(
                        f"selection produced no users in round {round_index}"
                    )
                if population is not None and positions is None:
                    # Strategy without a vector path: recover positions
                    # so frequency assignment and TDMA still use arrays.
                    positions = np.fromiter(
                        (position_by_id[d.device_id] for d in selected),
                        dtype=np.int64,
                        count=len(selected),
                    )
                target_count = len(selected)
                if config.over_select_margin > 0:
                    if population is not None:
                        extra_positions = over_selection_extras_population(
                            population,
                            positions,
                            config.over_select_margin,
                            self.server.payload_bits,
                            config.bandwidth_hz,
                        )
                        selected = list(selected) + [
                            self.devices[position]
                            for position in extra_positions.tolist()
                        ]
                        positions = np.concatenate(
                            (positions, extra_positions)
                        )
                    else:
                        selected = list(selected) + over_selection_extras(
                            self.devices,
                            selected,
                            config.over_select_margin,
                            self.server.payload_bits,
                            config.bandwidth_hz,
                        )
                selected_ids = tuple(d.device_id for d in selected)
                selected_population = (
                    population.take(positions)
                    if population is not None
                    else None
                )
                observer.emit(
                    SelectionEvent(
                        round_index=round_index, selected_ids=selected_ids
                    )
                )
                self.local_trainer.learning_rate = config.learning_rate_at(
                    round_index
                )
                with observer.timer("frequency_assignment"), observer.span(
                    "frequency_assignment",
                    span_id=f"round-{round_index}/frequency_assignment",
                    parent_id=f"round-{round_index}",
                    round_index=round_index,
                ):
                    frequencies = self.frequency_policy.assign(
                        selected,
                        self.server.payload_bits,
                        config.bandwidth_hz,
                        round_index=round_index,
                        population=selected_population,
                    )
                observer.emit(
                    FrequencyAssignmentEvent(
                        round_index=round_index, frequencies=dict(frequencies)
                    )
                )

                fault_round = (
                    injector.plan_round(round_index, selected_ids)
                    if injector is not None
                    else None
                )
                if fault_round:
                    for injected in fault_round.injected:
                        observer.emit(
                            FaultInjectedEvent(
                                round_index=round_index,
                                device_id=injected.device_id,
                                fault=injected.fault,
                                detail=injected.detail,
                                magnitude=injected.magnitude,
                            )
                        )
                    observer.metrics.inc(
                        "faults_injected", float(len(fault_round.injected))
                    )

                pre_dropped = (
                    fault_round.drop_before if fault_round else frozenset()
                )
                active = [
                    d for d in selected if d.device_id not in pre_dropped
                ]
                if population is not None and pre_dropped and active:
                    keep = np.fromiter(
                        (d.device_id not in pre_dropped for d in selected),
                        dtype=bool,
                        count=len(selected),
                    )
                    active_population = population.take(positions[keep])
                else:
                    active_population = (
                        selected_population if active else None
                    )
                reassigned = False
                if pre_dropped and active:
                    # Algorithm 3's slack chain planned around the
                    # dropped devices' uploads: recompute the schedule
                    # over the survivors so successors do not idle at
                    # stale frequencies. The vector path replans off the
                    # survivors' population slice.
                    with observer.timer("frequency_assignment"), observer.span(
                        "frequency_reassignment",
                        span_id=f"round-{round_index}/frequency_reassignment",
                        parent_id=f"round-{round_index}",
                        round_index=round_index,
                    ):
                        frequencies = self.frequency_policy.assign(
                            active,
                            self.server.payload_bits,
                            config.bandwidth_hz,
                            round_index=round_index,
                            population=active_population,
                        )
                    observer.emit(
                        FrequencyAssignmentEvent(
                            round_index=round_index,
                            frequencies=dict(frequencies),
                        )
                    )
                    observer.metrics.inc("frequency_reassignments")
                    reassigned = True

                if active:
                    with observer.span(
                        "local_updates",
                        span_id=f"round-{round_index}/local_updates",
                        parent_id=f"round-{round_index}",
                        round_index=round_index,
                    ):
                        result = self._run_clients(round_index, active)
                    timeline = simulate_tdma_round(
                        active,
                        self.server.payload_bits,
                        config.bandwidth_hz,
                        frequencies,
                        payloads=result.payloads or None,
                        population=active_population,
                        compute_scale=(
                            fault_round.compute_scale if fault_round else None
                        ),
                        drop_during=(
                            fault_round.drop_during if fault_round else None
                        ),
                        upload_outage=(
                            fault_round.upload_outage if fault_round else None
                        ),
                        upload_scale=(
                            fault_round.upload_scale if fault_round else None
                        ),
                        round_deadline=config.round_deadline_s,
                    )
                    result = result.with_statuses(timeline.outcomes())
                else:
                    # Every selected device dropped before computing:
                    # the round happens but costs nothing and changes
                    # nothing.
                    result = RoundResult(round_index=round_index, updates=())
                    timeline = RoundTimeline(
                        users=(),
                        round_delay=0.0,
                        total_energy=0.0,
                        total_compute_energy=0.0,
                        total_upload_energy=0.0,
                        total_slack=0.0,
                    )
                result, battery_dropped = self._apply_battery(
                    active, timeline, result
                )
                if fault_round and fault_round.battery_death:
                    # The battery empties at the round's end, killing
                    # the device's contribution whatever else happened.
                    for device_id in fault_round.battery_death:
                        device = device_index[device_id]
                        if device.battery is not None:
                            device.battery.kill()
                    result = result.with_statuses(
                        {
                            device_id: STATUS_DROPPED
                            for device_id in fault_round.battery_death
                        }
                    )
                if battery_dropped:
                    observer.emit(
                        BatteryDropEvent(
                            round_index=round_index,
                            dropped_ids=battery_dropped,
                        )
                    )

                integrated = result.survivors()
                if config.over_select_margin > 0:
                    integrated = integrated.first(target_count)

                status_by_id = {u.device_id: u.status for u in result}
                for device_id in pre_dropped:
                    status_by_id[device_id] = STATUS_DROPPED
                dropped_ids = tuple(
                    device_id
                    for device_id in selected_ids
                    if status_by_id.get(device_id) == STATUS_DROPPED
                )
                timeout_ids = tuple(
                    device_id
                    for device_id in selected_ids
                    if status_by_id.get(device_id) == STATUS_TIMEOUT
                )
                if dropped_ids:
                    observer.metrics.inc(
                        "clients_dropped", float(len(dropped_ids))
                    )
                if timeout_ids:
                    observer.metrics.inc(
                        "clients_timeout", float(len(timeout_ids))
                    )
                if chaos_active:
                    self._emit_client_drops(
                        round_index,
                        fault_round,
                        timeline,
                        battery_dropped,
                        dropped_ids,
                        timeout_ids,
                    )
                    if (
                        dropped_ids
                        or timeout_ids
                        or reassigned
                        or len(integrated) < target_count
                    ):
                        observer.emit(
                            RoundDegradedEvent(
                                round_index=round_index,
                                planned=len(selected),
                                aggregated=len(integrated),
                                dropped_ids=dropped_ids,
                                timeout_ids=timeout_ids,
                                reassigned_frequencies=reassigned,
                            )
                        )
                        observer.metrics.inc("rounds_degraded")

                # Feedback hook for statistical-utility strategies (e.g.
                # the Oort extension): report the observed losses of the
                # clients the server actually integrated — updates it
                # never saw must not shape future selection.
                self.selection.observe_losses(integrated.losses)
                self.ledger.record_round(timeline)
                if integrated:
                    with observer.timer("aggregation"), observer.span(
                        "aggregation",
                        span_id=f"round-{round_index}/aggregation",
                        parent_id=f"round-{round_index}",
                        round_index=round_index,
                    ):
                        self.server.aggregate(
                            integrated.params, integrated.weights
                        )
                observer.emit(
                    AggregationEvent(
                        round_index=round_index,
                        num_updates=len(integrated),
                        total_weight=float(sum(integrated.weights)),
                    )
                )

                cumulative_time += timeline.round_delay
                cumulative_energy += timeline.total_energy
                for entry in timeline.users:
                    observer.emit(
                        DeviceRoundEvent(
                            round_index=round_index,
                            device_id=entry.device_id,
                            frequency=entry.frequency,
                            f_max=device_index[entry.device_id].cpu.f_max,
                            compute_delay=entry.compute_delay,
                            upload_delay=entry.upload_delay,
                            slack=entry.slack,
                            compute_energy=entry.compute_energy,
                            upload_energy=entry.upload_energy,
                            outcome=entry.outcome,
                        )
                    )
                observer.emit(
                    TimelineEvent(
                        round_index=round_index,
                        round_delay=timeline.round_delay,
                        round_energy=timeline.total_energy,
                        compute_energy=timeline.total_compute_energy,
                        upload_energy=timeline.total_upload_energy,
                        slack=timeline.total_slack,
                        cumulative_time=cumulative_time,
                        cumulative_energy=cumulative_energy,
                    )
                )
                observer.metrics.inc("rounds")
                observer.metrics.inc("clients_selected", float(len(selected)))

                # Train loss is weighted over the updates the server
                # actually integrated: dropped clients may have trained,
                # but their contribution never reached the global model.
                total_weight = sum(u.weight for u in integrated)
                train_loss = (
                    sum(u.loss * u.weight for u in integrated) / total_weight
                    if total_weight
                    else 0.0
                )

                should_eval = (
                    round_index % config.eval_every == 0
                    or round_index == config.rounds
                )
                test_loss = test_accuracy = None
                if should_eval and self.server.test_dataset is not None:
                    with observer.span(
                        "eval",
                        span_id=f"round-{round_index}/eval",
                        parent_id=f"round-{round_index}",
                        round_index=round_index,
                    ):
                        test_loss, test_accuracy = self.server.evaluate()
                    observer.emit(
                        EvalEvent(
                            round_index=round_index,
                            test_loss=test_loss,
                            test_accuracy=test_accuracy,
                        )
                    )
                    observer.metrics.inc("evaluations")
                    if config.keep_best_model and (
                        self.best_model_params is None
                        or test_accuracy > self.best_model_accuracy
                    ):
                        self.best_model_params = self.server.broadcast()
                        self.best_model_accuracy = test_accuracy

                history.append(
                    RoundRecord(
                        round_index=round_index,
                        selected_ids=selected_ids,
                        frequencies=dict(frequencies),
                        round_delay=timeline.round_delay,
                        round_energy=timeline.total_energy,
                        compute_energy=timeline.total_compute_energy,
                        upload_energy=timeline.total_upload_energy,
                        slack=timeline.total_slack,
                        cumulative_time=cumulative_time,
                        cumulative_energy=cumulative_energy,
                        train_loss=train_loss,
                        test_accuracy=test_accuracy,
                        test_loss=test_loss,
                        dropped_ids=dropped_ids,
                        timeout_ids=timeout_ids,
                    )
                )
                _LOGGER.debug(
                    "round %d: %d selected, %d dropped, %d timed out, "
                    "delay %.4fs, energy %.4fJ, train_loss %.5f",
                    round_index,
                    len(selected),
                    len(dropped_ids),
                    len(timeout_ids),
                    timeline.round_delay,
                    timeline.total_energy,
                    train_loss,
                )

                # The checkpoint span opens every round, whether or not
                # the cadence writes one: span structure must stay a
                # pure function of the simulated run, and checkpoint
                # cadence is explicitly allowed to vary between a
                # killed run and its resumed retry.
                with observer.span(
                    "checkpoint",
                    span_id=f"round-{round_index}/checkpoint",
                    parent_id=f"round-{round_index}",
                    round_index=round_index,
                ):
                    if checkpointing and (
                        round_index % config.checkpoint_every == 0
                    ):
                        from repro.fl.checkpoint import save_checkpoint

                        with observer.timer("checkpoint"):
                            save_checkpoint(
                                self.checkpoint_path,
                                self._capture_checkpoint(
                                    round_index,
                                    history,
                                    cumulative_time,
                                    cumulative_energy,
                                    plateau,
                                ),
                            )
                        observer.metrics.inc("checkpoints_written")

                round_span.end()
                if (
                    config.deadline_s is not None
                    and cumulative_time >= config.deadline_s
                ):
                    stop_reason = StopReason.DEADLINE
                    break
                if (
                    config.target_accuracy is not None
                    and test_accuracy is not None
                    and test_accuracy >= config.target_accuracy
                ):
                    stop_reason = StopReason.TARGET_ACCURACY
                    break
                if (
                    plateau is not None
                    and test_loss is not None
                    and plateau.update(test_loss)
                ):
                    stop_reason = StopReason.PLATEAU
                    break
                if stop_after is not None and round_index >= stop_after:
                    # Replay cut-off: pause (not finish) the run here.
                    break
        except Exception:
            # Close the open spans first (idempotent), then leave a
            # terminal marker in the trace before propagating, so a
            # crashed chaos run's JSONL still pairs every span and ends
            # with a typed run_stop instead of cutting off mid-round.
            round_span.end()
            run_span.end()
            observer.emit(
                RunStopEvent(
                    round_index=round_index,
                    reason=StopReason.ERROR.value,
                    cumulative_time=cumulative_time,
                    cumulative_energy=cumulative_energy,
                    label=self.label,
                )
            )
            raise

        self.last_checkpoint = self._capture_checkpoint(
            round_index, history, cumulative_time, cumulative_energy, plateau
        )
        history.stop_reason = stop_reason.value
        run_span.end()
        observer.emit(
            RunStopEvent(
                round_index=round_index,
                reason=stop_reason.value,
                cumulative_time=cumulative_time,
                cumulative_energy=cumulative_energy,
                label=self.label,
            )
        )
        _LOGGER.info(
            "run %r stopped after %d rounds: %s (%.2fs simulated, %.2fJ)",
            self.label,
            round_index,
            stop_reason.value,
            cumulative_time,
            cumulative_energy,
        )
        return history
