"""The federated-learning engine (Algorithm 1's machinery).

Contains the FLCC server, the local client trainer (Eq. 3), FedAvg
aggregation (Eq. 18), the pluggable client-execution backends
(serial / thread pool / process pool / zero-copy shared-memory process
pool), the synchronous round loop with
TDMA cost simulation, and the training history with time-to-accuracy
and energy-to-accuracy queries used by the paper's Table I and Fig. 3.
"""

from repro.fl.aggregation import fedavg_aggregate
from repro.fl.client import LocalTrainer
from repro.fl.execution import (
    BACKEND_NAMES,
    ClientUpdate,
    ExecutionBackend,
    LocalUpdateSpec,
    ProcessPoolBackend,
    RoundResult,
    SerialBackend,
    ThreadPoolBackend,
    create_backend,
)
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import FederatedServer
from repro.fl.shm import SharedArrayPool, SharedMemoryProcessPoolBackend
from repro.fl.strategy import (
    FrequencyPolicy,
    FullParticipation,
    MaxFrequencyPolicy,
    SelectionStrategy,
    selection_count,
)
from repro.fl.trainer import FederatedTrainer, TrainerConfig

__all__ = [
    "fedavg_aggregate",
    "LocalTrainer",
    "BACKEND_NAMES",
    "ClientUpdate",
    "ExecutionBackend",
    "LocalUpdateSpec",
    "ProcessPoolBackend",
    "RoundResult",
    "SerialBackend",
    "SharedArrayPool",
    "SharedMemoryProcessPoolBackend",
    "ThreadPoolBackend",
    "create_backend",
    "RoundRecord",
    "TrainingHistory",
    "FederatedServer",
    "SelectionStrategy",
    "FrequencyPolicy",
    "FullParticipation",
    "MaxFrequencyPolicy",
    "selection_count",
    "FederatedTrainer",
    "TrainerConfig",
]
