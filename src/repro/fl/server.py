"""The FL central controller (FLCC).

The paper's FLCC is a base station plus an edge server: it broadcasts
the global model, integrates uploaded models with FedAvg (Eq. 18), and
evaluates the global model. Per the paper, its own compute delay and
energy are ignored (Section II-D).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.aggregation import fedavg_aggregate
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential

__all__ = ["FederatedServer"]


class FederatedServer:
    """The FLCC: global model custody, aggregation, and evaluation.

    Args:
        model: the global model ``M_G`` (owned by the server).
        test_dataset: held-out evaluation data; optional, but required
            for :meth:`evaluate`.
        loss: evaluation loss; defaults to softmax cross-entropy.
        payload_bits: communication payload ``C_model`` per upload.
            When ``None`` it is derived from the model's parameter
            count at 32 bits per parameter.
    """

    def __init__(
        self,
        model: Sequential,
        test_dataset: Optional[ArrayDataset] = None,
        loss=None,
        payload_bits: Optional[float] = None,
    ) -> None:
        self.model = model
        self.test_dataset = test_dataset
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        if payload_bits is None:
            payload_bits = float(model.parameter_count * 32)
        self.payload_bits = float(payload_bits)

    def broadcast(self) -> np.ndarray:
        """Return a copy of the global flat parameter vector.

        Models line 5 of Algorithm 1 (the FLCC broadcasts ``M_G^j``).
        """
        return self.model.get_flat_params().copy()

    def aggregate(
        self, updates: Sequence[np.ndarray], weights: Sequence[float]
    ) -> None:
        """FedAvg-integrate client updates into the global model (Eq. 18).

        Args:
            updates: one flat parameter vector per client.
            weights: the matching ``|D_q|`` weights.
        """
        aggregated = fedavg_aggregate(updates, weights)
        self.model.set_flat_params(aggregated)

    def evaluate(
        self, dataset: Optional[ArrayDataset] = None, batch_size: int = 512
    ) -> Tuple[float, float]:
        """Evaluate the global model; returns ``(loss, accuracy)``.

        Args:
            dataset: evaluation data; defaults to the held-out test set
                bound at construction.
            batch_size: inference batch size.

        Raises:
            ValueError: when no dataset is available.
        """
        dataset = dataset if dataset is not None else self.test_dataset
        if dataset is None:
            raise ValueError("no evaluation dataset bound to this server")
        logits = self.model.predict(dataset.inputs, batch_size=batch_size)
        loss_value = self.loss.loss(logits, dataset.labels)
        return float(loss_value), accuracy(logits, dataset.labels)
