"""Version metadata for the :mod:`repro` package."""

from __future__ import annotations

__all__ = ["__version__", "PAPER_TITLE", "PAPER_VENUE"]

__version__ = "1.0.0"

PAPER_TITLE = (
    "HELCFL: High-Efficiency and Low-Cost Federated Learning in "
    "Heterogeneous Mobile-Edge Computing"
)
PAPER_VENUE = "DATE 2022"
