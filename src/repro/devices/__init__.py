"""Device models: DVFS CPUs, radios, batteries, and user devices.

Implements the paper's local-user calculation model (Eqs. 4–5), the
communication model (Eqs. 6–8), and a heterogeneous fleet generator
matching the experimental settings of Section VII-A (100 users,
``f_max ~ U(0.3, 2.0) GHz``, ``f_min = 0.3 GHz``).
"""

from repro.devices.battery import Battery
from repro.devices.cpu import DvfsCpu
from repro.devices.device import UserDevice
from repro.devices.fleet import FleetSpec, make_fleet
from repro.devices.population import DevicePopulation
from repro.devices.radio import Radio

__all__ = [
    "DvfsCpu",
    "Radio",
    "Battery",
    "UserDevice",
    "DevicePopulation",
    "FleetSpec",
    "make_fleet",
]
