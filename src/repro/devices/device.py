"""The composite user device ``v_q``.

A :class:`UserDevice` binds together everything the paper attributes to
one user: its local dataset ``D_q``, its DVFS CPU, its uplink radio,
and (optionally) a battery. It exposes the per-round cost quantities
the schedulers consume: compute delay/energy at a chosen frequency
(Eqs. 4–5), upload delay/energy (Eqs. 7–8), and the total round delay
``T_q = T_q^cal + T_q^com`` (Eq. 9).
"""

from __future__ import annotations

from typing import Optional

from repro.data.dataset import ArrayDataset
from repro.devices.battery import Battery
from repro.devices.cpu import DvfsCpu
from repro.devices.radio import Radio
from repro.errors import DeviceError

__all__ = ["UserDevice"]


class UserDevice:
    """One heterogeneous FL user: data + CPU + radio (+ battery).

    Args:
        device_id: unique integer id (the paper's subscript ``q``).
        cpu: the device's DVFS CPU model.
        radio: the device's uplink radio model.
        dataset: the local dataset ``D_q``; its length drives both the
            FedAvg weight and the compute cost.
        battery: optional finite energy budget (extension).
    """

    def __init__(
        self,
        device_id: int,
        cpu: DvfsCpu,
        radio: Radio,
        dataset: ArrayDataset,
        battery: Optional[Battery] = None,
    ) -> None:
        if device_id < 0:
            raise DeviceError(f"device_id must be non-negative, got {device_id}")
        self.device_id = int(device_id)
        self.cpu = cpu
        self.radio = radio
        self.dataset = dataset
        self.battery = battery

    @property
    def num_samples(self) -> int:
        """Local dataset size ``|D_q|``."""
        return len(self.dataset)

    # ------------------------------------------------------------------
    # Cost model (paper Eqs. 4, 5, 7, 8, 9)
    # ------------------------------------------------------------------
    def compute_delay(self, frequency: Optional[float] = None) -> float:
        """Eq. (4) at ``frequency`` (default ``f_max``)."""
        return self.cpu.compute_delay(self.num_samples, frequency)

    def compute_energy(self, frequency: Optional[float] = None) -> float:
        """Eq. (5) at ``frequency`` (default ``f_max``)."""
        return self.cpu.compute_energy(self.num_samples, frequency)

    def upload_delay(self, payload_bits: float, bandwidth_hz: float) -> float:
        """Eq. (7) for this device's radio."""
        return self.radio.upload_delay(payload_bits, bandwidth_hz)

    def upload_energy(self, payload_bits: float, bandwidth_hz: float) -> float:
        """Eq. (8) for this device's radio."""
        return self.radio.upload_energy(payload_bits, bandwidth_hz)

    def total_delay(
        self,
        payload_bits: float,
        bandwidth_hz: float,
        frequency: Optional[float] = None,
    ) -> float:
        """Eq. (9): ``T_q = T_q^cal + T_q^com``."""
        return self.compute_delay(frequency) + self.upload_delay(
            payload_bits, bandwidth_hz
        )

    def frequency_for_compute_delay(self, target_delay: float) -> float:
        """Frequency making the local update take ``target_delay`` seconds.

        Unclamped inversion of Eq. (4); see
        :meth:`repro.devices.cpu.DvfsCpu.frequency_for_delay`.
        """
        return self.cpu.frequency_for_delay(self.num_samples, target_delay)

    def __repr__(self) -> str:
        return (
            f"UserDevice(id={self.device_id}, samples={self.num_samples}, "
            f"f_max={self.cpu.f_max / 1e9:.2f}GHz)"
        )
