"""Battery model (extension).

The paper motivates energy optimization with battery-powered devices
but does not simulate charge levels. This extension tracks per-device
energy budgets so failure-injection experiments can model device
shutdown mid-training ("energy is quickly exhausted or even device
shutdown occurs", Section I).
"""

from __future__ import annotations

from repro.errors import DeviceError

__all__ = ["Battery"]


class Battery:
    """A finite energy reservoir drained by compute and communication.

    Args:
        capacity_joules: full-charge energy.
        charge_joules: initial charge; defaults to full.
    """

    def __init__(self, capacity_joules: float, charge_joules: float | None = None):
        if capacity_joules <= 0:
            raise DeviceError(
                f"capacity_joules must be positive, got {capacity_joules}"
            )
        self.capacity_joules = float(capacity_joules)
        if charge_joules is None:
            charge_joules = capacity_joules
        if not 0.0 <= charge_joules <= capacity_joules:
            raise DeviceError(
                f"charge_joules must be in [0, {capacity_joules}], got "
                f"{charge_joules}"
            )
        self.charge_joules = float(charge_joules)

    @property
    def level(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self.charge_joules / self.capacity_joules

    @property
    def is_depleted(self) -> bool:
        """True when the battery has no usable charge left."""
        return self.charge_joules <= 0.0

    def can_afford(self, energy_joules: float) -> bool:
        """Whether ``energy_joules`` can be drawn without depletion."""
        return self.charge_joules >= energy_joules

    def drain(self, energy_joules: float) -> bool:
        """Draw ``energy_joules``; returns False (and empties) if short.

        A failed draw models a device shutting down mid-round: the
        charge drops to zero and the caller should treat the round's
        contribution as lost.
        """
        if energy_joules < 0:
            raise DeviceError(f"energy must be non-negative, got {energy_joules}")
        if self.charge_joules >= energy_joules:
            self.charge_joules -= energy_joules
            return True
        self.charge_joules = 0.0
        return False

    def kill(self) -> None:
        """Empty the battery instantly (fault-injected sudden death).

        Unlike a failed :meth:`drain`, no energy demand is involved:
        the device simply shuts down. With ``enforce_battery`` the
        trainer then drops the device's future rounds until something
        calls :meth:`recharge`.
        """
        self.charge_joules = 0.0

    def recharge(self, energy_joules: float | None = None) -> None:
        """Add charge (full recharge when ``energy_joules`` is None)."""
        if energy_joules is None:
            self.charge_joules = self.capacity_joules
            return
        if energy_joules < 0:
            raise DeviceError(f"energy must be non-negative, got {energy_joules}")
        self.charge_joules = min(
            self.capacity_joules, self.charge_joules + energy_joules
        )

    def __repr__(self) -> str:
        return (
            f"Battery({self.charge_joules:.3g}/{self.capacity_joules:.3g} J, "
            f"{100 * self.level:.1f}%)"
        )
