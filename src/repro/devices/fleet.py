"""Heterogeneous device-fleet generation.

Reproduces the paper's Section VII-A population: 100 users whose
maximum CPU frequencies are uniform over (0.3, 2.0) GHz with a common
0.3 GHz floor, uniform transmit power 0.2 W, and a shared MEC uplink of
Z = 2 MHz. Channel gains may be homogeneous (the paper's implicit
setting) or drawn per-user for extra heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.data.dataset import ArrayDataset
from repro.devices.battery import Battery
from repro.devices.cpu import DvfsCpu
from repro.devices.device import UserDevice
from repro.devices.radio import Radio
from repro.errors import DeviceError
from repro.rng import SeedLike, ensure_generator

__all__ = ["FleetSpec", "make_fleet"]


@dataclass
class FleetSpec:
    """Parameters describing a heterogeneous user population.

    Defaults reproduce the paper's Section VII-A settings.

    Attributes:
        f_min_hz: common lowest CPU frequency (paper: 0.3 GHz).
        f_max_low_hz: lower bound of the per-user ``f_max`` draw.
        f_max_high_hz: upper bound of the per-user ``f_max`` draw
            (paper: 2.0 GHz).
        cycles_per_sample: the paper's ``pi`` (1e7).
        switched_capacitance: the paper's ``alpha`` (2e-28).
        transmit_power_w: uplink power ``p`` (0.2 W).
        channel_gain_range: per-user channel gain ``h`` drawn uniform
            over this range; a degenerate range gives homogeneous
            channels.
        noise_power_w: background noise ``N0``.
        frequency_levels: optional discrete DVFS ladder expressed as
            fractions of each device's ``f_max`` (e.g. ``(0.25, 0.5,
            0.75, 1.0)``); None means continuous DVFS.
        battery_capacity_j: per-device battery capacity; None disables
            batteries.
    """

    f_min_hz: float = 0.3e9
    f_max_low_hz: float = 0.3e9
    f_max_high_hz: float = 2.0e9
    cycles_per_sample: float = 1e7
    switched_capacitance: float = 2e-28
    transmit_power_w: float = 0.2
    channel_gain_range: Tuple[float, float] = (1.0, 1.0)
    noise_power_w: float = 1e-2
    frequency_levels: Optional[Tuple[float, ...]] = None
    battery_capacity_j: Optional[float] = None

    def __post_init__(self) -> None:
        if self.f_min_hz <= 0:
            raise DeviceError(f"f_min_hz must be positive, got {self.f_min_hz}")
        if self.f_max_low_hz < self.f_min_hz:
            raise DeviceError(
                f"f_max_low_hz ({self.f_max_low_hz}) below f_min_hz "
                f"({self.f_min_hz})"
            )
        if self.f_max_high_hz < self.f_max_low_hz:
            raise DeviceError(
                f"f_max_high_hz ({self.f_max_high_hz}) below f_max_low_hz "
                f"({self.f_max_low_hz})"
            )
        low, high = self.channel_gain_range
        if low <= 0 or high < low:
            raise DeviceError(
                f"channel_gain_range must be 0 < low <= high, got "
                f"{self.channel_gain_range}"
            )
        if self.frequency_levels is not None:
            fractions = tuple(self.frequency_levels)
            if not fractions or any(not 0.0 < v <= 1.0 for v in fractions):
                raise DeviceError(
                    "frequency_levels fractions must lie in (0, 1], got "
                    f"{fractions}"
                )
            if max(fractions) != 1.0:
                raise DeviceError("frequency_levels must include 1.0 (= f_max)")


def make_fleet(
    partitions: Sequence[ArrayDataset],
    spec: Optional[FleetSpec] = None,
    seed: SeedLike = None,
) -> List[UserDevice]:
    """Build one :class:`UserDevice` per dataset partition.

    Args:
        partitions: per-user local datasets (e.g. from
            :func:`repro.data.iid_partition`); their order fixes device
            ids ``0..Q-1``.
        spec: population parameters; defaults to the paper's settings.
        seed: seed for the per-user heterogeneity draws.

    Returns:
        A list of devices, one per partition.
    """
    if not partitions:
        raise DeviceError("cannot build a fleet from zero partitions")
    spec = spec or FleetSpec()
    rng = ensure_generator(seed)
    devices: List[UserDevice] = []
    for device_id, dataset in enumerate(partitions):
        f_max = float(
            rng.uniform(spec.f_max_low_hz, spec.f_max_high_hz)
        )
        levels = None
        if spec.frequency_levels is not None:
            raw = sorted(frac * f_max for frac in spec.frequency_levels)
            levels = [max(spec.f_min_hz, min(v, f_max)) for v in raw]
        cpu = DvfsCpu(
            f_min=spec.f_min_hz,
            f_max=f_max,
            cycles_per_sample=spec.cycles_per_sample,
            switched_capacitance=spec.switched_capacitance,
            frequency_levels=levels,
        )
        gain_low, gain_high = spec.channel_gain_range
        gain = (
            gain_low
            if gain_low == gain_high
            else float(rng.uniform(gain_low, gain_high))
        )
        radio = Radio(
            transmit_power=spec.transmit_power_w,
            channel_gain=gain,
            noise_power=spec.noise_power_w,
        )
        battery = (
            Battery(spec.battery_capacity_j)
            if spec.battery_capacity_j is not None
            else None
        )
        devices.append(
            UserDevice(
                device_id=device_id,
                cpu=cpu,
                radio=radio,
                dataset=dataset,
                battery=battery,
            )
        )
    return devices
