"""Radio (uplink) model — the paper's local communication model.

Implements:

* **Eq. (6)** upload rate   ``R = Z * log2(1 + p * h^2 / N0)``
* **Eq. (7)** upload delay  ``T_com = C_model / R``
* **Eq. (8)** upload energy ``E_com = p * T_com``

``Z`` is the MEC system's total resource blocks in Hz (the paper's TDMA
scheme grants the full 2 MHz to one uploader at a time), ``p`` the
transmission power, ``h`` the channel gain, and ``N0`` the background
noise power.
"""

from __future__ import annotations

from repro.errors import DeviceError

__all__ = ["Radio"]


class Radio:
    """A user device's uplink radio.

    Args:
        transmit_power: transmission power ``p`` in watts (paper: 0.2).
        channel_gain: amplitude channel gain ``h`` (unitless).
        noise_power: background noise power ``N0`` in watts.
    """

    def __init__(
        self,
        transmit_power: float = 0.2,
        channel_gain: float = 1.0,
        noise_power: float = 1e-2,
    ) -> None:
        if transmit_power <= 0:
            raise DeviceError(
                f"transmit_power must be positive, got {transmit_power}"
            )
        if channel_gain <= 0:
            raise DeviceError(f"channel_gain must be positive, got {channel_gain}")
        if noise_power <= 0:
            raise DeviceError(f"noise_power must be positive, got {noise_power}")
        self.transmit_power = float(transmit_power)
        self.channel_gain = float(channel_gain)
        self.noise_power = float(noise_power)

    @property
    def snr(self) -> float:
        """Signal-to-noise ratio ``p * h^2 / N0``."""
        return self.transmit_power * self.channel_gain**2 / self.noise_power

    def upload_rate(self, bandwidth_hz: float) -> float:
        """Eq. (6): achievable uplink rate in bits/second.

        Args:
            bandwidth_hz: the resource blocks ``Z`` granted, in Hz.
        """
        if bandwidth_hz <= 0:
            raise DeviceError(f"bandwidth must be positive, got {bandwidth_hz}")
        import math

        return bandwidth_hz * math.log2(1.0 + self.snr)

    def upload_delay(self, payload_bits: float, bandwidth_hz: float) -> float:
        """Eq. (7): seconds to upload ``payload_bits`` (``C_model``)."""
        if payload_bits < 0:
            raise DeviceError(f"payload must be non-negative, got {payload_bits}")
        rate = self.upload_rate(bandwidth_hz)
        return payload_bits / rate

    def upload_energy(self, payload_bits: float, bandwidth_hz: float) -> float:
        """Eq. (8): joules to upload ``payload_bits`` at full power."""
        return self.transmit_power * self.upload_delay(payload_bits, bandwidth_hz)

    def __repr__(self) -> str:
        return (
            f"Radio(p={self.transmit_power}W, h={self.channel_gain:.3g}, "
            f"N0={self.noise_power:.3g}W)"
        )
